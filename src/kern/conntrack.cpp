#include "kern/conntrack.h"

#include <algorithm>

#include "net/headers.h"
#include "obs/coverage.h"
#include "obs/trace.h"
#include "san/audit.h"

namespace ovsx::kern {

Conntrack::~Conntrack() { san::audit_clear(san_scope_, "ct.entry"); }

void Conntrack::flush()
{
    index_.clear();
    conns_.clear();
    zone_counts_.clear();
    san::audit_clear(san_scope_, "ct.entry");
}

void Conntrack::san_check(san::Site site) const
{
    san::audit_expect_size(san_scope_, "ct.entry", conns_.size(), site);
}

CtResult Conntrack::process(net::Packet& pkt, const net::FlowKey& key, std::uint16_t zone,
                            bool commit, sim::ExecContext& ctx, sim::Nanos now)
{
    // Hash + lookup cost, comparable to a flow-table probe.
    ctx.charge(costs_.kdp_flow_probe);
    OVSX_COVERAGE_CTX(ctx, "ct.lookup");

    CtResult res;
    res.state = net::kCtStateTracked;

    auto finish_invalid = [&] {
        res.state |= net::kCtStateInvalid;
        pkt.meta().ct_state = res.state;
        pkt.meta().ct_zone = zone;
        return res;
    };

    // Only TCP/UDP/ICMP are tracked; later fragments are untrackable.
    if (key.nw_proto != 6 && key.nw_proto != 17 && key.nw_proto != 1) return finish_invalid();
    if (key.nw_frag & net::kFragLater) return finish_invalid();

    // ICMP errors are RELATED to the connection their payload cites
    // (dest-unreachable for a tracked UDP flow, etc.); an error citing
    // nothing we track is invalid.
    if (key.nw_proto == 1 && net::icmp_type_is_error(key.icmp_type)) {
        const net::IcmpInnerTuple inner = net::parse_icmp_inner(pkt);
        if (!inner.valid) return finish_invalid();
        const CtTuple cited{inner.src, inner.dst, inner.sport, inner.dport, inner.proto, zone};
        auto rel = index_.find(cited);
        if (rel == index_.end()) return finish_invalid();
        CtEntry& e = conns_[rel->second];
        res.state |= net::kCtStateRelated;
        res.entry = &e;
        pkt.meta().ct_state = res.state;
        pkt.meta().ct_zone = zone;
        pkt.meta().ct_mark = e.mark;
        return res;
    }

    const bool is_rst = key.nw_proto == 6 && (key.tcp_flags & net::kTcpRst) != 0;
    const CtTuple tuple = CtTuple::from_key(key, zone);
    auto idx = index_.find(tuple);
    if (idx != index_.end()) {
        CtEntry& e = conns_[idx->second];
        const bool is_reply = !(tuple == e.orig);
        if (is_reply) {
            e.seen_reply = true;
            res.state |= net::kCtStateReply;
        }
        res.state |= e.confirmed ? net::kCtStateEstablished : net::kCtStateNew;
        if (commit && !e.confirmed) e.confirmed = true;
        e.packets++;
        e.last_seen = now;
        res.entry = &e;
        if (is_rst) {
            // RST tears the connection down: the next SYN on this tuple
            // starts a fresh NEW connection.
            pkt.meta().ct_mark = e.mark;
            erase_entry(idx->second);
            res.entry = nullptr;
        }
    } else if (is_rst) {
        // RST for a connection we never saw: untrackable.
        return finish_invalid();
    } else {
        // New connection.
        auto& count = zone_counts_[zone];
        const auto lim = zone_limits_.find(zone);
        if (lim != zone_limits_.end() && lim->second != 0 && count >= lim->second) {
            return finish_invalid(); // zone limit exceeded
        }
        res.state |= net::kCtStateNew;
        const std::uint64_t id = next_id_++;
        CtEntry entry;
        entry.orig = tuple;
        entry.confirmed = commit;
        entry.packets = 1;
        entry.last_seen = now;
        auto [it, ok] = conns_.emplace(id, entry);
        (void)ok;
        san::audit_add(san_scope_, "ct.entry", id, OVSX_SITE);
        index_.emplace(tuple, id);
        index_.emplace(tuple.reversed(), id);
        res.entry = &it->second;
        ++count;
        ctx.charge(costs_.kdp_flow_probe); // insert cost
    }

    pkt.meta().ct_state = res.state;
    pkt.meta().ct_zone = zone;
    if (res.entry) pkt.meta().ct_mark = res.entry->mark;
    return res;
}

void Conntrack::set_zone_limit(std::uint16_t zone, std::size_t limit)
{
    zone_limits_[zone] = limit;
}

std::size_t Conntrack::zone_count(std::uint16_t zone) const
{
    auto it = zone_counts_.find(zone);
    return it == zone_counts_.end() ? 0 : it->second;
}

std::size_t Conntrack::expire_idle(sim::Nanos cutoff)
{
    std::size_t removed = 0;
    for (auto it = conns_.begin(); it != conns_.end();) {
        if (it->second.last_seen < cutoff) {
            const CtTuple& orig = it->second.orig;
            index_.erase(orig);
            index_.erase(orig.reversed());
            auto& count = zone_counts_[orig.zone];
            if (count > 0) --count;
            san::audit_remove(san_scope_, "ct.entry", it->first, OVSX_SITE);
            it = conns_.erase(it);
            ++removed;
        } else {
            ++it;
        }
    }
    return removed;
}

const CtEntry* Conntrack::find(const CtTuple& tuple) const
{
    auto idx = index_.find(tuple);
    if (idx == index_.end()) return nullptr;
    auto it = conns_.find(idx->second);
    return it == conns_.end() ? nullptr : &it->second;
}

void Conntrack::erase_entry(std::uint64_t id)
{
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    const CtTuple& orig = it->second.orig;
    index_.erase(orig);
    index_.erase(orig.reversed());
    auto& count = zone_counts_[orig.zone];
    if (count > 0) --count;
    san::audit_remove(san_scope_, "ct.entry", id, OVSX_SITE);
    conns_.erase(it);
}

std::vector<CtSnapshotEntry> Conntrack::snapshot() const
{
    std::vector<CtSnapshotEntry> out;
    out.reserve(conns_.size());
    for (const auto& [id, e] : conns_) {
        out.push_back({e.orig, e.confirmed, e.seen_reply, e.packets});
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace ovsx::kern
