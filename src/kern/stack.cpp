#include "kern/stack.h"

#include "kern/kernel.h"
#include "net/builder.h"
#include "net/headers.h"

namespace ovsx::kern {

IpStack::IpStack(Kernel& kernel, int ns_id) : kernel_(kernel), ns_id_(ns_id) {}

void IpStack::add_address(int ifindex, std::uint32_t addr, int prefix_len)
{
    addrs_.push_back({ifindex, addr, prefix_len});
    // Connected route for the subnet.
    const std::uint32_t mask =
        prefix_len == 0 ? 0 : ~std::uint32_t{0} << (32 - prefix_len);
    routes_.push_back({addr & mask, prefix_len, 0, ifindex, 0});
    notify("address");
    notify("route");
}

void IpStack::add_route(std::uint32_t prefix, int prefix_len, std::uint32_t gateway, int ifindex,
                        int metric)
{
    routes_.push_back({prefix, prefix_len, gateway, ifindex, metric});
    notify("route");
}

void IpStack::add_neighbor(std::uint32_t addr, const net::MacAddr& mac, int ifindex,
                           bool permanent)
{
    for (auto& n : neighbors_) {
        if (n.addr == addr) {
            n.mac = mac;
            n.ifindex = ifindex;
            n.permanent = n.permanent || permanent;
            notify("neighbor");
            return;
        }
    }
    neighbors_.push_back({addr, mac, ifindex, permanent});
    notify("neighbor");
}

bool IpStack::is_local_address(std::uint32_t addr) const
{
    for (const auto& a : addrs_) {
        if (a.addr == addr) return true;
    }
    return false;
}

std::optional<RouteEntry> IpStack::route_lookup(std::uint32_t dst) const
{
    const RouteEntry* best = nullptr;
    for (const auto& r : routes_) {
        const std::uint32_t mask =
            r.prefix_len == 0 ? 0 : ~std::uint32_t{0} << (32 - r.prefix_len);
        if ((dst & mask) != r.prefix) continue;
        if (!best || r.prefix_len > best->prefix_len ||
            (r.prefix_len == best->prefix_len && r.metric < best->metric)) {
            best = &r;
        }
    }
    if (!best) return std::nullopt;
    return *best;
}

std::optional<net::MacAddr> IpStack::neighbor_lookup(std::uint32_t addr) const
{
    for (const auto& n : neighbors_) {
        if (n.addr == addr) return n.mac;
    }
    return std::nullopt;
}

std::optional<std::uint32_t> IpStack::address_on(int ifindex) const
{
    for (const auto& a : addrs_) {
        if (a.ifindex == ifindex) return a.addr;
    }
    return std::nullopt;
}

void IpStack::bind(std::uint8_t proto, std::uint16_t port, SocketHandler handler)
{
    sockets_[{proto, port}] = std::move(handler);
}

void IpStack::unbind(std::uint8_t proto, std::uint16_t port)
{
    sockets_.erase({proto, port});
}

void IpStack::notify(const char* table)
{
    for (const auto& l : listeners_) l(table);
}

void IpStack::handle_arp(Device& dev, net::Packet&& pkt, sim::ExecContext& ctx)
{
    const auto* arp = pkt.try_header_at<net::ArpHeader>(sizeof(net::EthernetHeader));
    if (!arp) return;
    // Learn the sender.
    if (arp->spa() != 0) add_neighbor(arp->spa(), arp->sha, dev.ifindex());
    if (arp->oper() == 1 && is_local_address(arp->tpa())) {
        // Reply for our own address.
        net::Packet reply = net::build_arp(false, dev.mac(), arp->tpa(), arp->sha, arp->spa());
        dev.transmit(std::move(reply), ctx);
    }
}

void IpStack::rx(Device& dev, net::Packet&& pkt, sim::ExecContext& ctx)
{
    const net::FlowKey key = net::parse_flow(pkt);

    if (key.dl_type == static_cast<std::uint16_t>(net::EtherType::Arp)) {
        handle_arp(dev, std::move(pkt), ctx);
        ++rx_delivered_;
        return;
    }
    if (key.dl_type != static_cast<std::uint16_t>(net::EtherType::Ipv4)) {
        ++rx_dropped_;
        return;
    }

    // Checksum validation on the slow path when hardware didn't.
    if (!pkt.meta().csum_verified &&
        (key.nw_proto == 6 || key.nw_proto == 17)) {
        ctx.charge(kernel_.costs().csum(static_cast<std::int64_t>(pkt.size())));
        pkt.meta().csum_verified = true;
    }

    if (is_local_address(key.nw_dst) || key.nw_dst == 0xffffffff) {
        // Local delivery: exact port first, then the wildcard port.
        auto it = sockets_.find({key.nw_proto, key.tp_dst});
        if (it == sockets_.end()) it = sockets_.find({key.nw_proto, 0});
        if (it != sockets_.end()) {
            ++rx_delivered_;
            it->second(std::move(pkt), key, ctx);
            return;
        }
        ++rx_dropped_; // no listener (kernel would send ICMP unreachable)
        return;
    }

    if (forwarding_) {
        forward(std::move(pkt), key.nw_dst, ctx);
        return;
    }
    ++rx_dropped_;
}

void IpStack::forward(net::Packet&& pkt, std::uint32_t dst, sim::ExecContext& ctx)
{
    const auto route = route_lookup(dst);
    if (!route) {
        ++rx_dropped_;
        return;
    }
    auto* ip = pkt.try_header_at<net::Ipv4Header>(sizeof(net::EthernetHeader));
    if (!ip || ip->ttl <= 1) {
        ++rx_dropped_;
        return;
    }
    ip->ttl--;
    net::refresh_ipv4_csum(pkt, sizeof(net::EthernetHeader));

    const std::uint32_t next_hop = route->gateway ? route->gateway : dst;
    const auto mac = neighbor_lookup(next_hop);
    Device* out = kernel_.device(route->ifindex);
    if (!mac || !out) {
        ++rx_dropped_;
        return;
    }
    auto* eth = pkt.header_at<net::EthernetHeader>(0);
    eth->src = out->mac();
    eth->dst = *mac;
    ++rx_forwarded_;
    out->transmit(std::move(pkt), ctx);
}

bool IpStack::send_ip(net::Packet&& pkt, sim::ExecContext& ctx)
{
    const auto* ip = pkt.try_header_at<net::Ipv4Header>(sizeof(net::EthernetHeader));
    if (!ip) return false;
    const std::uint32_t dst = ip->dst();
    const auto route = route_lookup(dst);
    if (!route) return false;
    Device* out = kernel_.device(route->ifindex);
    if (!out) return false;
    const std::uint32_t next_hop = route->gateway ? route->gateway : dst;
    const auto mac = neighbor_lookup(next_hop);
    if (!mac) {
        // Trigger ARP resolution; the packet itself is dropped (first-
        // packet ARP behaviour), callers in benches pre-populate ARP.
        const auto src = address_on(route->ifindex).value_or(0);
        net::Packet req = net::build_arp(true, out->mac(), src, net::MacAddr(), next_hop);
        out->transmit(std::move(req), ctx);
        return false;
    }
    auto* eth = pkt.header_at<net::EthernetHeader>(0);
    eth->src = out->mac();
    eth->dst = *mac;
    out->transmit(std::move(pkt), ctx);
    return true;
}

bool IpStack::send_udp(std::uint32_t dst_ip, std::uint16_t sport, std::uint16_t dport,
                       std::size_t payload_len, sim::ExecContext& ctx)
{
    const auto route = route_lookup(dst_ip);
    if (!route) return false;
    const auto src = address_on(route->ifindex);
    if (!src) return false;
    net::UdpSpec spec;
    spec.src_ip = *src;
    spec.dst_ip = dst_ip;
    spec.src_port = sport;
    spec.dst_port = dport;
    spec.payload_len = payload_len;
    return send_ip(net::build_udp(spec), ctx);
}

} // namespace ovsx::kern
