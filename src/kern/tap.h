// Tap devices: a kernel network interface whose "other end" is a file
// descriptor held by a userspace program (QEMU for VM networking, or
// OVS itself for the management path of §4).
//
// Terminology used here:
//  - fd side   : the userspace holder of /dev/net/tun (e.g. QEMU).
//  - kernel side: the tap network interface inside the host.
//  - packet socket: an AF_PACKET-style listener bound to the interface
//    (how OVS's userspace datapath attaches tap/system ports).
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "kern/device.h"

namespace ovsx::kern {

class TapDevice : public Device {
public:
    // Callback invoked when the kernel transmits out of the tap — i.e.
    // the fd holder (QEMU) reads a frame.
    using FdRx = std::function<void(net::Packet&&, sim::ExecContext&)>;

    TapDevice(Kernel& kernel, std::string name, net::MacAddr mac);

    void set_fd_rx(FdRx fn) { fd_rx_ = std::move(fn); }

    // The fd holder writes a frame (guest transmitted): it enters the
    // host kernel as ingress on the tap interface. Charges the writer's
    // context for the write syscall.
    void fd_write(net::Packet&& pkt, sim::ExecContext& writer_ctx);

    // A userspace datapath (OVS) sends a packet *out of* the tap via an
    // AF_PACKET socket — the sendto() path the paper measured at ~2 µs
    // (§3.3). The frame pops out at the fd holder.
    void packet_socket_send(net::Packet&& pkt, sim::ExecContext& user_ctx);

    // Kernel egress (stack or kernel-OVS output action): frame is read
    // by the fd holder; if nobody holds the fd, it is queued.
    void transmit(net::Packet&& pkt, sim::ExecContext& ctx) override;

    // Drain queued frames when no fd callback is registered.
    std::optional<net::Packet> fd_read();
    std::size_t fd_queue_depth() const { return fd_queue_.size(); }

private:
    FdRx fd_rx_;
    std::deque<net::Packet> fd_queue_;
};

} // namespace ovsx::kern
