#include "kern/veth.h"

#include "kern/kernel.h"

namespace ovsx::kern {

VethDevice::VethDevice(Kernel& kernel, std::string name, net::MacAddr mac)
    : Device(kernel, std::move(name), DeviceKind::Veth, mac)
{
}

std::pair<VethDevice*, VethDevice*> VethDevice::create_pair(Kernel& kernel,
                                                            const std::string& name_a,
                                                            const std::string& name_b, int ns_a,
                                                            int ns_b)
{
    auto& a = kernel.add_device<VethDevice>(name_a, net::MacAddr::from_id(
                                                        static_cast<std::uint32_t>(
                                                            std::hash<std::string>{}(name_a))));
    auto& b = kernel.add_device<VethDevice>(name_b, net::MacAddr::from_id(
                                                        static_cast<std::uint32_t>(
                                                            std::hash<std::string>{}(name_b))));
    a.peer_ = &b;
    b.peer_ = &a;
    a.set_ns(ns_a);
    b.set_ns(ns_b);
    return {&a, &b};
}

void VethDevice::transmit(net::Packet&& pkt, sim::ExecContext& ctx)
{
    note_tx(pkt);
    if (!peer_) return;
    // In-kernel hop: small fixed cost, no copy.
    const auto& costs = kernel().costs();
    ctx.charge(costs.nic_rx_desc);
    pkt.meta().latency_ns += costs.nic_rx_desc;
    peer_->receive(std::move(pkt), ctx);
}

void VethDevice::receive(net::Packet&& pkt, sim::ExecContext& ctx)
{
    if (prog_) {
        const XdpVerdict verdict =
            kernel().run_xdp(*prog_, pkt, *this, 0, ctx);
        switch (verdict) {
        case XdpVerdict::Drop:
        case XdpVerdict::Aborted:
            ++stats().rx_dropped;
            return;
        case XdpVerdict::Tx:
            if (peer_) peer_->receive(std::move(pkt), ctx);
            return;
        case XdpVerdict::RedirectedXsk:
        case XdpVerdict::RedirectedDev:
            ++stats().rx_packets;
            stats().rx_bytes += pkt.size();
            return;
        case XdpVerdict::PassToStack:
        case XdpVerdict::NoProgram:
            break;
        }
    }
    deliver_rx(std::move(pkt), ctx);
}

} // namespace ovsx::kern
