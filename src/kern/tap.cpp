#include "kern/tap.h"

#include "kern/kernel.h"

namespace ovsx::kern {

TapDevice::TapDevice(Kernel& kernel, std::string name, net::MacAddr mac)
    : Device(kernel, std::move(name), DeviceKind::Tap, mac)
{
}

void TapDevice::fd_write(net::Packet&& pkt, sim::ExecContext& writer_ctx)
{
    const auto& costs = kernel().costs();
    // write() on the tun fd + skb allocation inside the kernel.
    writer_ctx.charge(sim::CpuClass::System, costs.syscall);
    writer_ctx.charge(sim::CpuClass::System, costs.skb_alloc);
    writer_ctx.charge(sim::CpuClass::System, costs.copy(static_cast<std::int64_t>(pkt.size())));
    pkt.meta().latency_ns +=
        costs.syscall + costs.skb_alloc + costs.copy(static_cast<std::int64_t>(pkt.size()));
    deliver_rx(std::move(pkt), writer_ctx);
}

void TapDevice::packet_socket_send(net::Packet&& pkt, sim::ExecContext& user_ctx)
{
    const auto& costs = kernel().costs();
    // The measured ~2 µs tap sendto cost (§3.3): syscall + skb alloc +
    // copy + qdisc, folded into one calibrated constant.
    user_ctx.charge(sim::CpuClass::System, costs.tap_sendto);
    pkt.meta().latency_ns += costs.tap_sendto;
    note_tx(pkt);
    if (fd_rx_) {
        fd_rx_(std::move(pkt), user_ctx);
        return;
    }
    fd_queue_.push_back(std::move(pkt));
}

void TapDevice::transmit(net::Packet&& pkt, sim::ExecContext& ctx)
{
    const auto& costs = kernel().costs();
    ctx.charge(costs.nic_tx_desc);
    pkt.meta().latency_ns += costs.nic_tx_desc;
    note_tx(pkt);
    if (fd_rx_) {
        fd_rx_(std::move(pkt), ctx);
        return;
    }
    fd_queue_.push_back(std::move(pkt));
}

std::optional<net::Packet> TapDevice::fd_read()
{
    if (fd_queue_.empty()) return std::nullopt;
    net::Packet pkt = std::move(fd_queue_.front());
    fd_queue_.pop_front();
    return pkt;
}

} // namespace ovsx::kern
