// rtnetlink facade: the programmatic equivalent of the `ip`, `nstat`
// and `tcpdump` commands in the paper's Table 1.
//
// The central compatibility claim of the paper is that these keep
// working when OVS drives the NIC via AF_XDP (the kernel still owns the
// device) and stop working once DPDK unbinds it. Our model mirrors
// that: queries against a device that is no longer kernel-managed fail
// with ENODEV, and devices owned by a DPDK PMD do not appear in listings.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "kern/device.h"
#include "kern/stack.h"

namespace ovsx::kern {

class Kernel;

namespace rtnl {

struct LinkInfo {
    int ifindex = -1;
    std::string name;
    std::string kind;
    net::MacAddr mac;
    int mtu = 0;
    bool up = false;
    int ns_id = 0;
    DeviceStats stats;
};

// `ip link`: lists kernel-managed devices. DPDK-owned NICs disappear,
// exactly as they do when vfio-pci unbinds the kernel driver.
std::vector<LinkInfo> link_show(Kernel& kernel);

// `ip link show <dev>`: nullopt (ENODEV) when absent or DPDK-owned.
std::optional<LinkInfo> link_show(Kernel& kernel, const std::string& name);

// `ip address`: address listing with owning device names.
struct AddrInfo {
    std::string dev;
    std::uint32_t addr = 0;
    int prefix_len = 0;
};
std::vector<AddrInfo> addr_show(Kernel& kernel, int ns = 0);

// `ip route`.
struct RouteInfo {
    std::uint32_t prefix = 0;
    int prefix_len = 0;
    std::uint32_t gateway = 0;
    std::string dev;
};
std::vector<RouteInfo> route_show(Kernel& kernel, int ns = 0);

// `ip neigh`.
struct NeighInfo {
    std::uint32_t addr = 0;
    net::MacAddr mac;
    std::string dev;
};
std::vector<NeighInfo> neigh_show(Kernel& kernel, int ns = 0);

// `nstat`-style counters summed across kernel-managed devices.
struct NetStats {
    std::uint64_t rx_packets = 0;
    std::uint64_t tx_packets = 0;
    std::uint64_t rx_dropped = 0;
    std::uint64_t tx_dropped = 0;
};
NetStats nstat(Kernel& kernel);

// `tcpdump -i <dev>`: attaches a capture hook. Returns false (ENODEV)
// for DPDK-owned or unknown devices.
bool tcpdump_attach(Kernel& kernel, const std::string& dev, Device::CaptureHook hook,
                    std::string* error = nullptr);

// `ping`-style reachability probe: can the stack in `ns` route to
// `dst` and resolve the next hop? (Data-plane reachability is exercised
// by higher-level tests; this mirrors what the tool needs from the
// kernel tables.)
bool can_reach(Kernel& kernel, int ns, std::uint32_t dst);

} // namespace rtnl
} // namespace ovsx::kern
