// Physical NIC model: multi-queue RX with RSS and ntuple steering,
// hardware offloads (checksum, TSO), XDP attach points (whole-device
// like Intel, per-queue like Mellanox — Figure 6), AF_XDP TX kicks, and
// a DPDK takeover hook that detaches the device from the kernel.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "afxdp/xsk.h"
#include "ebpf/program.h"
#include "kern/device.h"

namespace ovsx::kern {

struct NicConfig {
    double gbps = 10.0;
    std::uint32_t num_queues = 1;
    bool rx_csum = true;  // hardware RX checksum validation
    bool tx_csum = true;  // hardware TX checksum insertion
    bool tso = true;      // TCP segmentation offload
    bool rss = true;      // receive-side scaling
    // Figure 6: Intel attaches one XDP program per device; Mellanox
    // attaches per receive queue.
    enum class XdpModel { PerDevice, PerQueue } xdp_model = XdpModel::PerDevice;
    bool zerocopy_afxdp = true; // false -> AF_XDP copy ("SKB") fallback mode
};

// Hardware flow steering rule (ethtool --config-ntuple).
struct NtupleRule {
    std::uint8_t proto = 0;     // 0 = any
    std::uint16_t dst_port = 0; // 0 = any
    std::uint32_t dst_ip = 0;   // 0 = any
    std::uint32_t queue = 0;
};

class PhysicalDevice : public Device {
public:
    using WireTx = std::function<void(net::Packet&&)>;
    // DPDK PMD rx hook: (packet, queue).
    using DpdkRx = std::function<void(net::Packet&&, std::uint32_t)>;

    PhysicalDevice(Kernel& kernel, std::string name, net::MacAddr mac, NicConfig cfg = {});

    const NicConfig& config() const { return cfg_; }
    void set_config(const NicConfig& cfg);

    // ---- wire ------------------------------------------------------------
    void connect_wire(WireTx wire) { wire_ = std::move(wire); }

    // A frame arrives from the wire. `forced_queue` overrides steering
    // (used by tests).
    void rx_from_wire(net::Packet&& pkt, std::optional<std::uint32_t> forced_queue = {});

    // ---- steering -----------------------------------------------------------
    void add_ntuple_rule(const NtupleRule& rule) { ntuple_.push_back(rule); }
    void clear_ntuple_rules() { ntuple_.clear(); }
    std::uint32_t select_queue(const net::Packet& pkt) const;

    // ---- XDP ------------------------------------------------------------------
    // queue < 0 attaches to the whole device (required for PerDevice
    // NICs, meaning "all queues"); queue >= 0 attaches to one queue
    // (PerQueue NICs only). Throws on a model violation.
    void attach_xdp(ebpf::Program prog, int queue = -1);
    void detach_xdp(int queue = -1);
    const ebpf::Program* xdp_program(std::uint32_t queue) const;

    // ---- NAPI mode ----------------------------------------------------------------
    // Interrupt mode charges IRQ + wakeup overheads (the slow second bar
    // of Fig. 8a); busy polling — what PMD threads induce — does not.
    void set_interrupt_mode(bool on) { interrupt_mode_ = on; }
    bool interrupt_mode() const { return interrupt_mode_; }

    // ---- AF_XDP TX -------------------------------------------------------------------
    // Userspace kicked the socket (sendto): drains its TX ring out the
    // wire. The syscall is charged to `user_ctx` as system time; driver
    // work lands in this queue's softirq context. Returns frames sent.
    std::uint32_t xsk_tx_kick(afxdp::XskSocket& sock, std::uint32_t queue,
                              sim::ExecContext& user_ctx);

    // ---- DPDK takeover ----------------------------------------------------------------
    // Unbinds the device from the kernel: XDP, the stack and the kernel
    // tools all stop seeing it; frames go straight to the PMD.
    void dpdk_take_over(DpdkRx rx);
    void dpdk_release();

    // Egress from the kernel stack / datapaths.
    void transmit(net::Packet&& pkt, sim::ExecContext& ctx) override;

    // Direct hardware TX used by the DPDK PMD (no kernel context at all).
    void hw_transmit(net::Packet&& pkt);

    sim::ExecContext& softirq_ctx(std::uint32_t queue) { return softirq_[queue]; }
    std::uint64_t xdp_drops() const { return xdp_drops_; }

private:
    void tx_offloads(net::Packet& pkt, sim::ExecContext& ctx, bool charge_sw);
    void to_wire(net::Packet&& pkt);

    NicConfig cfg_;
    WireTx wire_;
    DpdkRx dpdk_rx_;
    std::vector<NtupleRule> ntuple_;
    std::vector<sim::ExecContext> softirq_;
    std::optional<ebpf::Program> dev_prog_;
    std::vector<std::optional<ebpf::Program>> queue_progs_;
    bool interrupt_mode_ = false;
    std::uint64_t xdp_drops_ = 0;
    std::uint64_t irq_count_ = 0;

    static constexpr std::uint32_t kIrqBatch = 8; // NAPI amortisation
};

} // namespace ovsx::kern
