#include "kern/meter.h"

#include <algorithm>

namespace ovsx::kern {

void MeterTable::set(std::uint32_t meter_id, const MeterConfig& cfg)
{
    Bucket bucket;
    bucket.cfg = cfg;
    bucket.tokens = static_cast<double>(cfg.burst);
    meters_[meter_id] = bucket;
}

bool MeterTable::remove(std::uint32_t meter_id) { return meters_.erase(meter_id) > 0; }

bool MeterTable::admit(std::uint32_t meter_id, std::size_t bytes, sim::Nanos now)
{
    auto it = meters_.find(meter_id);
    if (it == meters_.end()) return true; // unknown meter: no policing
    Bucket& b = it->second;

    const double elapsed_s =
        static_cast<double>(std::max<sim::Nanos>(now - b.last_fill, 0)) / 1e9;
    b.last_fill = now;
    double need;
    if (b.cfg.rate_kbps) {
        b.tokens = std::min(static_cast<double>(b.cfg.burst),
                            b.tokens + elapsed_s * static_cast<double>(b.cfg.rate_kbps) * 1000.0);
        need = static_cast<double>(bytes) * 8.0;
    } else {
        b.tokens = std::min(static_cast<double>(b.cfg.burst),
                            b.tokens + elapsed_s * static_cast<double>(b.cfg.rate_pps));
        need = 1.0;
    }
    if (b.tokens >= need) {
        b.tokens -= need;
        return true;
    }
    ++b.dropped;
    return false;
}

std::uint64_t MeterTable::dropped(std::uint32_t meter_id) const
{
    auto it = meters_.find(meter_id);
    return it == meters_.end() ? 0 : it->second.dropped;
}

} // namespace ovsx::kern
