// Network device base class for the simulated kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/addr.h"
#include "net/packet.h"
#include "sim/context.h"

namespace ovsx::kern {

class Kernel;

enum class DeviceKind { Physical, Veth, Tap, VirtioNet };

const char* to_string(DeviceKind k);

struct DeviceStats {
    std::uint64_t rx_packets = 0;
    std::uint64_t rx_bytes = 0;
    std::uint64_t rx_dropped = 0;
    std::uint64_t tx_packets = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t tx_dropped = 0;
};

class Device {
public:
    // A device's ingress traffic normally flows into the namespace's IP
    // stack; attaching the device to the kernel OVS datapath (or an
    // AF_PACKET listener) replaces this handler.
    using RxHandler = std::function<void(Device&, net::Packet&&, sim::ExecContext&)>;
    // Capture hook for tcpdump-style observation; sees both directions.
    using CaptureHook = std::function<void(const Device&, const net::Packet&, bool rx)>;

    Device(Kernel& kernel, std::string name, DeviceKind kind, net::MacAddr mac);
    virtual ~Device() = default;

    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    Kernel& kernel() { return kernel_; }
    int ifindex() const { return ifindex_; }
    const std::string& name() const { return name_; }
    DeviceKind kind() const { return kind_; }
    const net::MacAddr& mac() const { return mac_; }
    void set_mac(const net::MacAddr& mac) { mac_ = mac; }
    int mtu() const { return mtu_; }
    void set_mtu(int mtu) { mtu_ = mtu; }
    bool is_up() const { return up_; }
    void set_up(bool up) { up_ = up; }
    int ns_id() const { return ns_id_; }
    void set_ns(int ns) { ns_id_ = ns; }

    // False once a kernel-bypass stack (DPDK) has unbound the device
    // from the kernel — the Table 1 "tools stop working" condition.
    bool kernel_managed() const { return kernel_managed_; }
    void set_kernel_managed(bool v) { kernel_managed_ = v; }

    DeviceStats& stats() { return stats_; }
    const DeviceStats& stats() const { return stats_; }

    void set_rx_handler(RxHandler handler) { rx_handler_ = std::move(handler); }
    void clear_rx_handler() { rx_handler_ = nullptr; }
    bool has_rx_handler() const { return static_cast<bool>(rx_handler_); }

    void set_capture(CaptureHook hook) { capture_ = std::move(hook); }

    // Egress: the kernel stack (or a datapath) sends a packet out of
    // this device.
    virtual void transmit(net::Packet&& pkt, sim::ExecContext& ctx) = 0;

protected:
    // Ingress helper: routes a received packet to the rx handler (OVS /
    // packet socket) or the namespace IP stack, updating stats.
    void deliver_rx(net::Packet&& pkt, sim::ExecContext& ctx);

    void capture(const net::Packet& pkt, bool rx) const
    {
        if (capture_) capture_(*this, pkt, rx);
    }

    void note_tx(const net::Packet& pkt)
    {
        ++stats_.tx_packets;
        stats_.tx_bytes += pkt.size();
        capture(pkt, false);
    }

private:
    friend class Kernel;

    Kernel& kernel_;
    std::string name_;
    DeviceKind kind_;
    net::MacAddr mac_;
    int ifindex_ = -1; // assigned by Kernel::register_device
    int mtu_ = 1500;
    int ns_id_ = 0;
    bool up_ = true;
    bool kernel_managed_ = true;
    DeviceStats stats_;
    RxHandler rx_handler_;
    CaptureHook capture_;
};

} // namespace ovsx::kern
