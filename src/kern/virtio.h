// Vhost-user / virtio-net: the shared-memory ring channel between a
// userspace switch (the vhost backend) and a VM's virtio-net driver.
// This is "path B" of Figure 5 — packets move between OVS and the guest
// without ever entering the host kernel.
#pragma once

#include <functional>

#include "afxdp/ring.h"
#include "kern/device.h"
#include "sim/costs.h"

namespace ovsx::kern {

struct VirtioFeatures {
    bool csum_offload = true;  // VIRTIO_NET_F_CSUM: checksums stay logical
    bool tso = true;           // VIRTIO_NET_F_HOST_TSO4: 64kB super-segments
    bool guest_polling = false; // guest busy-polls its rings (no kick/irq)
};

class VhostUserChannel {
public:
    using GuestRx = std::function<void(net::Packet&&, sim::ExecContext&)>;

    explicit VhostUserChannel(const sim::CostModel& costs, VirtioFeatures features = {},
                              std::uint32_t ring_size = 1024)
        : costs_(costs), features_(features), to_guest_(ring_size), to_backend_(ring_size)
    {
    }

    const VirtioFeatures& features() const { return features_; }

    // ---- backend (switch) side -------------------------------------------
    // Sends a packet into the guest. The backend performs the data copy
    // into guest buffers. Returns false when the ring is full (drop).
    bool backend_tx(net::Packet&& pkt, sim::ExecContext& user_ctx);

    // Polls one packet transmitted by the guest.
    std::optional<net::Packet> backend_rx(sim::ExecContext& user_ctx);

    // The backend's PMD polls rings, so guest->backend kicks are never
    // needed; backend->guest delivery pays an interrupt-style kick unless
    // the guest polls.
    void set_guest_rx(GuestRx fn) { guest_rx_ = std::move(fn); }

    // ---- guest side -------------------------------------------------------
    bool guest_tx(net::Packet&& pkt, sim::ExecContext& guest_ctx);
    std::optional<net::Packet> guest_rx_poll(sim::ExecContext& guest_ctx);

    std::uint64_t drops() const { return drops_; }

private:
    const sim::CostModel& costs_;
    VirtioFeatures features_;
    GuestRx guest_rx_;
    afxdp::SpscRing<net::Packet> to_guest_;
    afxdp::SpscRing<net::Packet> to_backend_;
    std::uint64_t drops_ = 0;
};

// The virtio-net adapter as seen inside the guest kernel.
class VirtioNetDevice : public Device {
public:
    VirtioNetDevice(Kernel& guest_kernel, std::string name, net::MacAddr mac,
                    VhostUserChannel& channel, sim::ExecContext& guest_ctx);

    // Guest egress -> vhost channel.
    void transmit(net::Packet&& pkt, sim::ExecContext& ctx) override;

    // Whether guest TX requests offloads (negotiated virtio features).
    void set_offloads(bool csum, std::uint16_t tso_segsz)
    {
        tx_csum_offload_ = csum;
        tx_tso_segsz_ = tso_segsz;
    }

    VhostUserChannel& channel() { return channel_; }

private:
    VhostUserChannel& channel_;
    sim::ExecContext* guest_ctx_ = nullptr;
    bool tx_csum_offload_ = false;
    std::uint16_t tx_tso_segsz_ = 0;
};

} // namespace ovsx::kern
