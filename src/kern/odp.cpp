#include "kern/odp.h"

#include <sstream>

namespace ovsx::kern {

std::string OdpAction::to_string() const
{
    std::ostringstream os;
    switch (type) {
    case Type::Output: os << "output(" << port << ")"; break;
    case Type::PushVlan: os << "push_vlan(" << (vlan_tci & 0xfff) << ")"; break;
    case Type::PopVlan: os << "pop_vlan"; break;
    case Type::SetField: os << "set_field"; break;
    case Type::SetTunnel:
        os << "set_tunnel(id=" << tunnel.tun_id << ",dst=" << net::ipv4_to_string(tunnel.ip_dst)
           << ")";
        break;
    case Type::Ct:
        os << "ct(zone=" << ct.zone << (ct.commit ? ",commit" : "");
        if (ct.set_mark) os << ",mark=" << ct.mark;
        if (ct.nat.enabled) {
            os << ",nat(" << (ct.nat.snat ? "src=" : "dst=")
               << net::ipv4_to_string(ct.nat.ip);
            if (ct.nat.port_min) {
                os << ":" << ct.nat.port_min;
                if (ct.nat.port_max && ct.nat.port_max != ct.nat.port_min) {
                    os << "-" << ct.nat.port_max;
                }
            }
            os << ")";
        }
        os << ")";
        break;
    case Type::Recirc: os << "recirc(" << recirc_id << ")"; break;
    case Type::Meter: os << "meter(" << meter_id << ")"; break;
    case Type::Userspace: os << "userspace"; break;
    case Type::Drop: os << "drop"; break;
    }
    return os.str();
}

std::string actions_to_string(const OdpActions& actions)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < actions.size(); ++i) {
        if (i) os << ",";
        os << actions[i].to_string();
    }
    if (actions.empty()) os << "drop";
    return os.str();
}

} // namespace ovsx::kern
