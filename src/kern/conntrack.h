// Netfilter-style connection tracking for the simulated kernel.
//
// Tracks bidirectional 5-tuple+zone connections with NEW/ESTABLISHED
// state, per-zone connection limits (the paper's §2.1.1 "per-zone
// connection limiting" example feature), and mark storage. The
// userspace datapath has its own, richer reimplementation (ovs/ct.h) —
// exactly the duplication the paper's §6 "features must be
// reimplemented" lesson describes.
#pragma once

#include <cstdint>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "net/flow.h"
#include "net/packet.h"
#include "san/report.h"
#include "sim/context.h"
#include "sim/costs.h"
#include "sim/time.h"

namespace ovsx::kern {

struct CtTuple {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint16_t sport = 0;
    std::uint16_t dport = 0;
    std::uint8_t proto = 0;
    std::uint16_t zone = 0;

    friend bool operator==(const CtTuple&, const CtTuple&) = default;

    CtTuple reversed() const { return {dst, src, dport, sport, proto, zone}; }

    static CtTuple from_key(const net::FlowKey& key, std::uint16_t zone)
    {
        return {key.nw_src, key.nw_dst, key.tp_src, key.tp_dst, key.nw_proto, zone};
    }

    struct Hash {
        std::size_t operator()(const CtTuple& t) const
        {
            std::uint64_t h = (static_cast<std::uint64_t>(t.src) << 32) | t.dst;
            h ^= (static_cast<std::uint64_t>(t.sport) << 48) |
                 (static_cast<std::uint64_t>(t.dport) << 32) |
                 (static_cast<std::uint64_t>(t.proto) << 16) | t.zone;
            h ^= h >> 33;
            h *= 0xff51afd7ed558ccdULL;
            h ^= h >> 33;
            return static_cast<std::size_t>(h);
        }
    };

    friend bool operator<(const CtTuple& a, const CtTuple& b)
    {
        return std::tie(a.zone, a.src, a.dst, a.sport, a.dport, a.proto) <
               std::tie(b.zone, b.src, b.dst, b.sport, b.dport, b.proto);
    }
};

// Implementation-neutral view of one tracked connection, used by the
// differential harness to diff conntrack tables across datapaths.
struct CtSnapshotEntry {
    CtTuple orig;
    bool confirmed = false;
    bool seen_reply = false;
    std::uint64_t packets = 0;

    friend bool operator==(const CtSnapshotEntry&, const CtSnapshotEntry&) = default;
    friend bool operator<(const CtSnapshotEntry& a, const CtSnapshotEntry& b)
    {
        return a.orig < b.orig;
    }
};

struct CtEntry {
    CtTuple orig;
    bool confirmed = false; // committed by a ct(commit) action
    bool seen_reply = false;
    std::uint32_t mark = 0;
    std::uint64_t packets = 0;
    sim::Nanos last_seen = 0;
};

// Result of passing a packet through conntrack: the CS_* bits for the
// flow key plus the entry for mark access.
struct CtResult {
    std::uint8_t state = 0; // kCtState* bits
    CtEntry* entry = nullptr;
};

class Conntrack {
public:
    explicit Conntrack(const sim::CostModel& costs = sim::CostModel::baseline())
        : costs_(costs)
    {
    }
    ~Conntrack();

    // Classifies `key` in `zone`, creating an unconfirmed entry for NEW
    // connections. `commit` confirms the entry (the ct(commit) action).
    // Updates pkt.meta() ct fields and returns the resulting state bits.
    CtResult process(net::Packet& pkt, const net::FlowKey& key, std::uint16_t zone, bool commit,
                     sim::ExecContext& ctx, sim::Nanos now = 0);

    // Per-zone connection limit (0 = unlimited). Connections beyond the
    // limit are classified INVALID instead of NEW.
    void set_zone_limit(std::uint16_t zone, std::size_t limit);
    std::size_t zone_count(std::uint16_t zone) const;

    // Number of tracked connections (not tuple directions).
    std::size_t size() const { return conns_.size(); }
    void flush();

    // Cross-checks the san entry audit against the real table.
    void san_check(san::Site site) const;

    // Expires entries idle since before `cutoff`.
    std::size_t expire_idle(sim::Nanos cutoff);

    // Lookup without side effects (diagnostics). Finds by either
    // direction of the connection.
    const CtEntry* find(const CtTuple& tuple) const;

    // Deterministically ordered view of every tracked connection, for
    // cross-datapath state diffing.
    std::vector<CtSnapshotEntry> snapshot() const;

private:
    void erase_entry(std::uint64_t id);

    const sim::CostModel& costs_;
    // Both tuple directions index into one connection entry.
    std::unordered_map<CtTuple, std::uint64_t, CtTuple::Hash> index_;
    std::unordered_map<std::uint64_t, CtEntry> conns_;
    std::uint64_t next_id_ = 1;
    std::unordered_map<std::uint16_t, std::size_t> zone_counts_;
    std::unordered_map<std::uint16_t, std::size_t> zone_limits_;
    std::uint64_t san_scope_ = san::new_scope();
};

} // namespace ovsx::kern
