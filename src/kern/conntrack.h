// Netfilter-style connection tracking for the simulated kernel.
//
// Tracks bidirectional 5-tuple+zone connections with NEW/ESTABLISHED
// state, per-zone connection limits (the paper's §2.1.1 "per-zone
// connection limiting" example feature), mark storage and SNAT/DNAT
// with deterministic port-range allocation. The userspace datapath has
// its own reimplementation (ovs/ct.h) — exactly the duplication the
// paper's §6 "features must be reimplemented" lesson describes; the
// differential harness diffs the two tables entry by entry, so the
// semantics here must match ovs::UserspaceConntrack bit for bit.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "kern/odp.h" // CtSpec / NatSpec
#include "net/flow.h"
#include "net/packet.h"
#include "san/lockset.h"
#include "san/report.h"
#include "sim/context.h"
#include "sim/costs.h"
#include "sim/time.h"
#include "sync/mutex.h"

namespace ovsx::kern {

struct CtTuple {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint16_t sport = 0;
    std::uint16_t dport = 0;
    std::uint8_t proto = 0;
    std::uint16_t zone = 0;

    friend bool operator==(const CtTuple&, const CtTuple&) = default;

    CtTuple reversed() const { return {dst, src, dport, sport, proto, zone}; }

    static CtTuple from_key(const net::FlowKey& key, std::uint16_t zone)
    {
        return {key.nw_src, key.nw_dst, key.tp_src, key.tp_dst, key.nw_proto, zone};
    }

    struct Hash {
        static std::uint64_t mix(std::uint64_t x)
        {
            x ^= x >> 30;
            x *= 0xbf58476d1ce4e5b9ULL;
            x ^= x >> 27;
            x *= 0x94d049bb133111ebULL;
            x ^= x >> 31;
            return x;
        }
        std::size_t operator()(const CtTuple& t) const
        {
            // Every field feeds the splitmix finalizer on its own, in
            // order, so no two fields can cancel by XOR: a tuple, its
            // reverse, and zone-swapped variants all hash differently
            // (the old XOR-fold collided e.g. {src=0x10000, sport=0}
            // with {src=0, sport=1}).
            std::uint64_t h = mix(0x9e3779b97f4a7c15ULL ^ t.src);
            h = mix(h + t.dst);
            h = mix(h + ((static_cast<std::uint64_t>(t.sport) << 16) | t.dport));
            h = mix(h + ((static_cast<std::uint64_t>(t.proto) << 16) | t.zone));
            return static_cast<std::size_t>(h);
        }
    };

    friend bool operator<(const CtTuple& a, const CtTuple& b)
    {
        return std::tie(a.zone, a.src, a.dst, a.sport, a.dport, a.proto) <
               std::tie(b.zone, b.src, b.dst, b.sport, b.dport, b.proto);
    }

    std::string to_string() const;
};

// One live NAT translation on a connection. The allocated port lives in
// the reply tuple's index entry: the reply tuple leaving the index is
// what frees the port for reallocation.
struct NatBinding {
    bool snat = false;
    std::uint32_t ip = 0;
    std::uint16_t port = 0;
};

// Implementation-neutral view of one tracked connection, used by the
// differential harness to diff conntrack tables across datapaths.
struct CtSnapshotEntry {
    CtTuple orig;
    CtTuple reply; // reversed orig with any NAT translation applied
    bool confirmed = false;
    bool seen_reply = false;
    bool nat = false;
    std::uint32_t mark = 0;
    std::uint64_t packets = 0;

    friend bool operator==(const CtSnapshotEntry&, const CtSnapshotEntry&) = default;
    friend bool operator<(const CtSnapshotEntry& a, const CtSnapshotEntry& b)
    {
        return a.orig < b.orig;
    }

    std::string to_string() const;
};

struct CtEntry {
    CtTuple orig;
    CtTuple reply;          // reversed orig with any NAT translation applied
    bool confirmed = false; // committed by a ct(commit) action
    bool seen_reply = false;
    std::uint32_t mark = 0;
    std::optional<NatBinding> nat;
    std::uint64_t packets = 0;
    sim::Nanos last_seen = 0;
    // Timer-wheel bucket this entry was last filed into (expiry
    // liveness check; TimerWheel::kNoBucket before the first filing).
    std::uint64_t wheel_bucket = ~std::uint64_t{0};
};

// Result of passing a packet through conntrack: the CS_* bits for the
// flow key plus the entry for mark access.
struct CtResult {
    std::uint8_t state = 0; // kCtState* bits
    CtEntry* entry = nullptr;
};

// Concurrency: sharded by a symmetric (direction-invariant) RSS-style
// hash of the connection tuple. Each shard owns an index/conns pair and
// a timer wheel under its own capability-annotated mutex (stable name
// "kern.ct.shard.<i>"); a connection lives in the shard of its ORIG
// tuple, and because the shard hash is symmetric, the un-NATed reply
// direction lands in the same shard — so non-NAT traffic runs entirely
// under one shard lock. Anything whose NAT-translated reply tuple
// crosses shards (port/IP translation, cross-shard RST teardown,
// port-range allocation probing the union of all indices) takes the
// deterministic slow path: every shard lock in ascending index order
// (construction order makes the ids ascend too, so the ABBA DAG stays
// acyclic), then the exact single-map algorithm against the union.
// Zone counts/limits stay global under "kern.ct.zones", nested inside
// the shard locks. End state is bit-identical at any shard count.
//
// CtResult.entry and find() return interior pointers stable only until
// the next mutating call; snapshot() copies for longer-lived use.
class Conntrack {
public:
    static constexpr std::uint32_t kMaxShards = 64;

    explicit Conntrack(const sim::CostModel& costs = sim::CostModel::baseline(),
                       std::uint32_t shards = 1);
    ~Conntrack();

    // Classifies `key` in spec.zone, creating an unconfirmed entry for
    // NEW connections; spec.commit confirms it. When spec.nat is set and
    // the connection commits, binds (and remembers) the NAT rewrite —
    // reply-direction packets are de-NATed automatically. Updates
    // pkt.meta() ct fields, rewrites headers for NAT, and returns the
    // resulting state bits.
    OVSX_HOT CtResult process(net::Packet& pkt, const net::FlowKey& key, const CtSpec& spec,
                              sim::ExecContext& ctx, sim::Nanos now = 0);

    // Zone/commit-only convenience form (no NAT, no mark).
    CtResult process(net::Packet& pkt, const net::FlowKey& key, std::uint16_t zone, bool commit,
                     sim::ExecContext& ctx, sim::Nanos now = 0)
    {
        CtSpec spec;
        spec.zone = zone;
        spec.commit = commit;
        return process(pkt, key, spec, ctx, now);
    }

    // Per-zone connection limit (0 = unlimited). Connections beyond the
    // limit are classified INVALID instead of NEW.
    void set_zone_limit(std::uint16_t zone, std::size_t limit) OVSX_EXCLUDES(zones_mu_);
    std::size_t zone_count(std::uint16_t zone) const OVSX_EXCLUDES(zones_mu_);

    // Number of tracked connections (not tuple directions).
    std::size_t size() const;
    std::size_t nat_binding_count() const;
    void flush();

    // Cross-checks the san entry + NAT-binding audits against the
    // table, walking every shard so the totals are shard-count-
    // invariant.
    void san_check(san::Site site) const;

    // Expires entries idle since before `cutoff` off the per-shard
    // timer wheels: visits only due wheel buckets, never the whole
    // table. NAT reply-index entries (and therefore allocated ports)
    // are released on this path.
    std::size_t expire_idle(sim::Nanos cutoff);

    // Lookup without side effects (diagnostics). Finds by either
    // direction of the connection (NAT-translated for replies).
    const CtEntry* find(const CtTuple& tuple) const;

    // Deterministically ordered view of every tracked connection, for
    // cross-datapath state diffing. Snapshots shard by shard under each
    // shard's own lock (no global freeze) and merges; the rendered
    // shape is identical at any shard count.
    std::vector<CtSnapshotEntry> snapshot() const;

    // ---- sharding / expiry configuration --------------------------------
    // Rebuilds the table over `n` shards (rounded up to a power of two,
    // capped at kMaxShards). Existing entries are rehashed; intended
    // for configuration time — concurrent process() calls during a
    // reshard are not supported.
    void reshard(std::uint32_t n);
    std::uint32_t shard_count() const { return nshards_; }
    // Connections owned by shard `s` (occupancy gauges).
    std::size_t shard_size(std::uint32_t s) const;
    // The shard a tuple routes to; symmetric in direction, exposed so
    // tests can place entries deliberately.
    static std::uint32_t shard_of_tuple(const CtTuple& tuple, std::uint32_t nshards);

    // Idle timeout driven by tick(); 0 (default) disables expiry there.
    void set_idle_timeout(sim::Nanos timeout) { idle_timeout_.store(timeout); }
    sim::Nanos idle_timeout() const { return idle_timeout_.load(); }

    // Datapath clock hook (set_now): at most once per wheel quantum,
    // publishes the ct.shard.* occupancy counters and — when an idle
    // timeout is configured — expires idle entries. Amortized: each
    // call does per-shard O(due wheel nodes) work, never O(entries).
    void tick(sim::Nanos now);

    // Wheel nodes visited by the most recent expiry pass (the churn
    // bench asserts this stays bounded per tick).
    std::size_t last_expire_visited() const { return last_expire_visited_.load(); }

    // Test seam (negative san tests only): drops the entry for `tuple`
    // from its shard WITHOUT updating the audit ledgers — san_check
    // must then report the leak no matter which shard held it.
    bool test_seam_leak_entry(const CtTuple& tuple);

private:
    struct Shard;    // per-shard index/conns/wheel + mutex (conntrack.cpp)
    struct Ref {     // index value: owning shard + connection id
        std::uint32_t shard = 0;
        std::uint64_t id = 0;
    };
    class AllShardsGuard; // ascending-order lock of every shard

    std::uint32_t shard_of(const CtTuple& tuple) const
    {
        return shard_of_tuple(tuple, nshards_);
    }

    // The single-map algorithm, routed through shard(s). `global` means
    // every shard lock is held; otherwise only shard `home` is locked
    // and local_path_ok has proven every touched tuple routes there.
    CtResult process_routed(net::Packet& pkt, const net::FlowKey& key, const CtSpec& spec,
                            sim::ExecContext& ctx, sim::Nanos now, bool global,
                            std::uint32_t home) OVSX_NO_THREAD_SAFETY_ANALYSIS;
    // Decides, under shard `home`'s lock alone, whether this packet can
    // complete without touching any other shard. `lookup` is the tuple
    // the first index probe uses (the ICMP-cited inner tuple for ICMP
    // errors, the packet tuple otherwise).
    bool local_path_ok(const CtTuple& lookup, bool icmp_error, const net::FlowKey& key,
                       const CtSpec& spec, std::uint32_t home) const
        OVSX_NO_THREAD_SAFETY_ANALYSIS;
    void erase_entry_routed(const Ref& ref) OVSX_NO_THREAD_SAFETY_ANALYSIS;
    void apply_nat(net::Packet& pkt, const CtEntry& entry, bool is_reply,
                   sim::ExecContext& ctx);

    const sim::CostModel& costs_;
    // The shard array itself is immutable while the datapath runs: it
    // is built at construction and replaced only by config-time
    // reshard() (single-threaded by contract). Everything inside a
    // Shard is guarded by that shard's own mutex.
    using ShardArray = std::vector<std::unique_ptr<Shard>>;
    std::uint32_t nshards_ = 1;
    ShardArray shards_;
    mutable sync::Mutex zones_mu_{"kern.ct.zones"};
    std::unordered_map<std::uint16_t, std::size_t> zone_counts_ OVSX_GUARDED_BY(zones_mu_);
    std::unordered_map<std::uint16_t, std::size_t> zone_limits_ OVSX_GUARDED_BY(zones_mu_);
    // Global, never reused: allocation order (and therefore snapshots)
    // stays identical across shard counts.
    std::atomic<std::uint64_t> next_id_{1};
    std::atomic<sim::Nanos> idle_timeout_{0};
    std::atomic<std::uint64_t> last_tick_bucket_{~std::uint64_t{0}};
    std::atomic<std::size_t> last_expire_visited_{0};
    std::uint64_t san_scope_ = san::new_scope();
    std::uint64_t obs_token_ = 0;
    std::uint64_t shards_token_ = 0;
};

// The translated reply tuple for a connection whose original direction
// is `tuple` under `nat` (with `port` already allocated; 0 = keep).
// Shared by both conntrack implementations so their reply-index keys —
// and therefore their port-allocation decisions — cannot drift.
CtTuple nat_reply_tuple(const CtTuple& tuple, const NatSpec& nat, std::uint16_t port);

} // namespace ovsx::kern
