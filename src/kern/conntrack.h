// Netfilter-style connection tracking for the simulated kernel.
//
// Tracks bidirectional 5-tuple+zone connections with NEW/ESTABLISHED
// state, per-zone connection limits (the paper's §2.1.1 "per-zone
// connection limiting" example feature), mark storage and SNAT/DNAT
// with deterministic port-range allocation. The userspace datapath has
// its own reimplementation (ovs/ct.h) — exactly the duplication the
// paper's §6 "features must be reimplemented" lesson describes; the
// differential harness diffs the two tables entry by entry, so the
// semantics here must match ovs::UserspaceConntrack bit for bit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "kern/odp.h" // CtSpec / NatSpec
#include "net/flow.h"
#include "net/packet.h"
#include "san/lockset.h"
#include "san/report.h"
#include "sim/context.h"
#include "sim/costs.h"
#include "sim/time.h"
#include "sync/mutex.h"

namespace ovsx::kern {

struct CtTuple {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint16_t sport = 0;
    std::uint16_t dport = 0;
    std::uint8_t proto = 0;
    std::uint16_t zone = 0;

    friend bool operator==(const CtTuple&, const CtTuple&) = default;

    CtTuple reversed() const { return {dst, src, dport, sport, proto, zone}; }

    static CtTuple from_key(const net::FlowKey& key, std::uint16_t zone)
    {
        return {key.nw_src, key.nw_dst, key.tp_src, key.tp_dst, key.nw_proto, zone};
    }

    struct Hash {
        static std::uint64_t mix(std::uint64_t x)
        {
            x ^= x >> 30;
            x *= 0xbf58476d1ce4e5b9ULL;
            x ^= x >> 27;
            x *= 0x94d049bb133111ebULL;
            x ^= x >> 31;
            return x;
        }
        std::size_t operator()(const CtTuple& t) const
        {
            // Every field feeds the splitmix finalizer on its own, in
            // order, so no two fields can cancel by XOR: a tuple, its
            // reverse, and zone-swapped variants all hash differently
            // (the old XOR-fold collided e.g. {src=0x10000, sport=0}
            // with {src=0, sport=1}).
            std::uint64_t h = mix(0x9e3779b97f4a7c15ULL ^ t.src);
            h = mix(h + t.dst);
            h = mix(h + ((static_cast<std::uint64_t>(t.sport) << 16) | t.dport));
            h = mix(h + ((static_cast<std::uint64_t>(t.proto) << 16) | t.zone));
            return static_cast<std::size_t>(h);
        }
    };

    friend bool operator<(const CtTuple& a, const CtTuple& b)
    {
        return std::tie(a.zone, a.src, a.dst, a.sport, a.dport, a.proto) <
               std::tie(b.zone, b.src, b.dst, b.sport, b.dport, b.proto);
    }

    std::string to_string() const;
};

// One live NAT translation on a connection. The allocated port lives in
// the reply tuple's index entry: the reply tuple leaving the index is
// what frees the port for reallocation.
struct NatBinding {
    bool snat = false;
    std::uint32_t ip = 0;
    std::uint16_t port = 0;
};

// Implementation-neutral view of one tracked connection, used by the
// differential harness to diff conntrack tables across datapaths.
struct CtSnapshotEntry {
    CtTuple orig;
    CtTuple reply; // reversed orig with any NAT translation applied
    bool confirmed = false;
    bool seen_reply = false;
    bool nat = false;
    std::uint32_t mark = 0;
    std::uint64_t packets = 0;

    friend bool operator==(const CtSnapshotEntry&, const CtSnapshotEntry&) = default;
    friend bool operator<(const CtSnapshotEntry& a, const CtSnapshotEntry& b)
    {
        return a.orig < b.orig;
    }

    std::string to_string() const;
};

struct CtEntry {
    CtTuple orig;
    CtTuple reply;          // reversed orig with any NAT translation applied
    bool confirmed = false; // committed by a ct(commit) action
    bool seen_reply = false;
    std::uint32_t mark = 0;
    std::optional<NatBinding> nat;
    std::uint64_t packets = 0;
    sim::Nanos last_seen = 0;
};

// Result of passing a packet through conntrack: the CS_* bits for the
// flow key plus the entry for mark access.
struct CtResult {
    std::uint8_t state = 0; // kCtState* bits
    CtEntry* entry = nullptr;
};

// Concurrency: mirror of ovs::UserspaceConntrack — one capability-
// annotated mutex over all four maps, locked internally by every public
// method. CtResult.entry and find() return interior pointers stable only
// until the next mutating call; snapshot() copies for longer-lived use.
class Conntrack {
public:
    explicit Conntrack(const sim::CostModel& costs = sim::CostModel::baseline());
    ~Conntrack();

    // Classifies `key` in spec.zone, creating an unconfirmed entry for
    // NEW connections; spec.commit confirms it. When spec.nat is set and
    // the connection commits, binds (and remembers) the NAT rewrite —
    // reply-direction packets are de-NATed automatically. Updates
    // pkt.meta() ct fields, rewrites headers for NAT, and returns the
    // resulting state bits.
    OVSX_HOT CtResult process(net::Packet& pkt, const net::FlowKey& key, const CtSpec& spec,
                              sim::ExecContext& ctx, sim::Nanos now = 0) OVSX_EXCLUDES(mu_);

    // Zone/commit-only convenience form (no NAT, no mark).
    CtResult process(net::Packet& pkt, const net::FlowKey& key, std::uint16_t zone, bool commit,
                     sim::ExecContext& ctx, sim::Nanos now = 0)
    {
        CtSpec spec;
        spec.zone = zone;
        spec.commit = commit;
        return process(pkt, key, spec, ctx, now);
    }

    // Per-zone connection limit (0 = unlimited). Connections beyond the
    // limit are classified INVALID instead of NEW.
    void set_zone_limit(std::uint16_t zone, std::size_t limit) OVSX_EXCLUDES(mu_);
    std::size_t zone_count(std::uint16_t zone) const OVSX_EXCLUDES(mu_);

    // Number of tracked connections (not tuple directions).
    std::size_t size() const OVSX_EXCLUDES(mu_);
    std::size_t nat_binding_count() const OVSX_EXCLUDES(mu_);
    void flush() OVSX_EXCLUDES(mu_);

    // Cross-checks the san entry + NAT-binding audits against the table.
    void san_check(san::Site site) const OVSX_EXCLUDES(mu_);

    // Expires entries idle since before `cutoff`.
    std::size_t expire_idle(sim::Nanos cutoff) OVSX_EXCLUDES(mu_);

    // Lookup without side effects (diagnostics). Finds by either
    // direction of the connection (NAT-translated for replies).
    const CtEntry* find(const CtTuple& tuple) const OVSX_EXCLUDES(mu_);

    // Deterministically ordered view of every tracked connection, for
    // cross-datapath state diffing.
    std::vector<CtSnapshotEntry> snapshot() const OVSX_EXCLUDES(mu_);

private:
    std::size_t nat_binding_count_locked() const OVSX_REQUIRES(mu_);
    void erase_entry(std::uint64_t id) OVSX_REQUIRES(mu_);
    void apply_nat(net::Packet& pkt, const CtEntry& entry, bool is_reply, sim::ExecContext& ctx)
        OVSX_REQUIRES(mu_);

    const sim::CostModel& costs_;
    mutable sync::Mutex mu_{"kern.ct"};
    // Both tuple directions index into one connection entry; the reply
    // direction carries the NAT translation, so it is NOT orig.reversed()
    // for NATed connections.
    std::unordered_map<CtTuple, std::uint64_t, CtTuple::Hash> index_ OVSX_GUARDED_BY(mu_);
    std::unordered_map<std::uint64_t, CtEntry> conns_ OVSX_GUARDED_BY(mu_);
    std::uint64_t next_id_ OVSX_GUARDED_BY(mu_) = 1;
    std::unordered_map<std::uint16_t, std::size_t> zone_counts_ OVSX_GUARDED_BY(mu_);
    std::unordered_map<std::uint16_t, std::size_t> zone_limits_ OVSX_GUARDED_BY(mu_);
    std::uint64_t san_scope_ = san::new_scope();
    std::uint64_t obs_token_ = 0;
};

// The translated reply tuple for a connection whose original direction
// is `tuple` under `nat` (with `port` already allocated; 0 = keep).
// Shared by both conntrack implementations so their reply-index keys —
// and therefore their port-allocation decisions — cannot drift.
CtTuple nat_reply_tuple(const CtTuple& tuple, const NatSpec& nat, std::uint16_t port);

} // namespace ovsx::kern
