// ODP ("Open vSwitch datapath") actions: the flat action language both
// datapaths execute — the kernel module (dpif-kernel baseline) and the
// userspace datapath (dpif-netdev). ofproto compiles OpenFlow actions
// down to these.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/flow.h"
#include "net/tunnel_key.h"

namespace ovsx::kern {

// NAT half of a ct() action: ct(commit,nat(src=ip:min-max)) and the
// dst= equivalent. Both conntrack implementations (kern/conntrack.h and
// ovs/ct.h) honor it with identical semantics — the differential
// harness diffs their end state entry by entry.
struct NatSpec {
    bool enabled = false;
    bool snat = false;          // true = SNAT (rewrite source), false = DNAT
    std::uint32_t ip = 0;       // translated address (0 = keep original)
    std::uint16_t port_min = 0; // 0 = keep the original port
    std::uint16_t port_max = 0; // 0 = exactly port_min (no range)

    friend bool operator==(const NatSpec&, const NatSpec&) = default;

    static NatSpec src(std::uint32_t ip, std::uint16_t port_min = 0, std::uint16_t port_max = 0)
    {
        return {true, true, ip, port_min, port_max};
    }
    static NatSpec dst(std::uint32_t ip, std::uint16_t port_min = 0, std::uint16_t port_max = 0)
    {
        return {true, false, ip, port_min, port_max};
    }
};

struct CtSpec {
    std::uint16_t zone = 0;
    bool commit = false;
    bool set_mark = false; // ct(commit,mark=M): store M on the connection
    std::uint32_t mark = 0;
    NatSpec nat;
};

struct OdpAction {
    enum class Type {
        Output,    // forward out of datapath port `port`
        PushVlan,  // push 802.1Q tag `vlan_tci`
        PopVlan,
        SetField,  // masked header rewrite (set_value/set_mask)
        SetTunnel, // stage tunnel metadata for a subsequent tunnel-port Output
        Ct,        // run connection tracking, then continue
        Recirc,    // re-run the pipeline with recirc_id
        Meter,     // police through meter `meter_id`, may drop
        Userspace, // punt to userspace (controller / slow path)
        Drop,
    };

    Type type = Type::Drop;
    std::uint32_t port = 0;
    std::uint16_t vlan_tci = 0;
    net::FlowKey set_value;
    net::FlowMask set_mask;
    net::TunnelKey tunnel;
    CtSpec ct;
    std::uint32_t recirc_id = 0;
    std::uint32_t meter_id = 0;

    static OdpAction output(std::uint32_t port)
    {
        OdpAction a;
        a.type = Type::Output;
        a.port = port;
        return a;
    }
    static OdpAction push_vlan(std::uint16_t tci)
    {
        OdpAction a;
        a.type = Type::PushVlan;
        a.vlan_tci = tci;
        return a;
    }
    static OdpAction pop_vlan()
    {
        OdpAction a;
        a.type = Type::PopVlan;
        return a;
    }
    static OdpAction set_field(const net::FlowKey& value, const net::FlowMask& mask)
    {
        OdpAction a;
        a.type = Type::SetField;
        a.set_value = value;
        a.set_mask = mask;
        return a;
    }
    static OdpAction set_tunnel(const net::TunnelKey& key)
    {
        OdpAction a;
        a.type = Type::SetTunnel;
        a.tunnel = key;
        return a;
    }
    static OdpAction conntrack(const CtSpec& spec)
    {
        OdpAction a;
        a.type = Type::Ct;
        a.ct = spec;
        return a;
    }
    static OdpAction recirc(std::uint32_t id)
    {
        OdpAction a;
        a.type = Type::Recirc;
        a.recirc_id = id;
        return a;
    }
    static OdpAction meter(std::uint32_t id)
    {
        OdpAction a;
        a.type = Type::Meter;
        a.meter_id = id;
        return a;
    }
    static OdpAction userspace()
    {
        OdpAction a;
        a.type = Type::Userspace;
        return a;
    }
    static OdpAction drop()
    {
        OdpAction a;
        a.type = Type::Drop;
        return a;
    }

    std::string to_string() const;
};

using OdpActions = std::vector<OdpAction>;

std::string actions_to_string(const OdpActions& actions);

// One installed datapath flow, as dumped for end-state comparison
// (OVS_FLOW_CMD_DUMP equivalent). `key` is already masked.
struct OdpFlowEntry {
    net::FlowKey key;
    net::FlowMask mask;
    OdpActions actions;

    // Canonical form for cross-datapath diffing and sorting.
    std::string to_string() const
    {
        return "key{" + key.to_string() + "} mask{" + mask.bits.to_string() +
               "} actions{" + actions_to_string(actions) + "}";
    }
};

} // namespace ovsx::kern
