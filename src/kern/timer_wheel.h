// Hashed timer wheel for conntrack idle expiry.
//
// Replaces the O(total-connections) expire_idle() scans in both
// conntrack implementations: entries are filed into buckets keyed by
// their quantized last-seen time (virtual ns >> tick shift), and one
// expiry pass pops only the buckets at or below the cutoff. Refiling is
// lazy — touching a connection enqueues a new node only when its
// quantized bucket actually changes, and the old node is left behind as
// a stale tombstone dropped the next time its bucket is visited. The
// caller resolves liveness: an entry remembers the bucket it was last
// filed into, and a popped node whose id is gone or whose entry points
// at a different bucket is stale. Work per expiry call is proportional
// to the nodes in due buckets (expired + stale + boundary survivors),
// never to the table size — the bounded-per-tick contract the
// million-connection churn bench asserts.
//
// The wheel holds plain ids, never pointers, so stale nodes are
// harmless even after the id is reused... which it never is: both
// conntracks allocate ids from a monotonically increasing counter.
//
// Concurrency: externally locked. Each conntrack shard embeds one wheel
// and accesses it only under that shard's mutex.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/time.h"

namespace ovsx::kern {

template <typename Id> class TimerWheel {
public:
    // 2^20 ns ~ 1ms buckets: fine enough that an idle cutoff lands
    // within one bucket of the exact scan, coarse enough that steady
    // traffic refiles a hot connection at most ~1000x/virtual-second.
    static constexpr std::uint32_t kDefaultTickShift = 20;
    // "Never filed" marker for the per-entry bucket field.
    static constexpr std::uint64_t kNoBucket = ~std::uint64_t{0};

    explicit TimerWheel(std::uint32_t tick_shift = kDefaultTickShift) : shift_(tick_shift) {}

    std::uint64_t bucket_of(sim::Nanos t) const
    {
        return static_cast<std::uint64_t>(t) >> shift_;
    }

    // Files `id` under last-seen time `t`; returns the bucket key the
    // caller must store on the entry.
    std::uint64_t enqueue(Id id, sim::Nanos t)
    {
        const std::uint64_t b = bucket_of(t);
        buckets_[b].push_back(id);
        ++nodes_;
        return b;
    }

    // Refiles `id` (previously in `prev_bucket`) for new last-seen `t`.
    // No-op while the quantized bucket is unchanged; otherwise the old
    // node becomes a stale tombstone. Returns the current bucket.
    std::uint64_t touch(Id id, std::uint64_t prev_bucket, sim::Nanos t)
    {
        const std::uint64_t b = bucket_of(t);
        if (b == prev_bucket) return prev_bucket;
        buckets_[b].push_back(id);
        ++nodes_;
        return b;
    }

    enum class Verdict {
        Expired, // caller erased the entry
        Stale,   // node superseded (entry gone or refiled elsewhere)
        Keep     // entry live and not yet idle (boundary bucket)
    };

    struct ExpireStats {
        std::size_t visited = 0;
        std::size_t expired = 0;
        std::size_t stale = 0;
        std::size_t kept = 0;
    };

    // Visits every node in buckets <= bucket_of(cutoff). Buckets
    // strictly below the boundary can only hold expired or stale nodes
    // (quantization: last_seen >> shift < cutoff >> shift implies
    // last_seen < cutoff); the boundary bucket is filtered node by
    // node and survivors stay filed. `fn(id, bucket)` returns the
    // Verdict; on Expired the caller has already erased the entry.
    template <typename Fn> ExpireStats expire(sim::Nanos cutoff, Fn&& fn)
    {
        ExpireStats st;
        const std::uint64_t qcut = bucket_of(cutoff);
        while (!buckets_.empty()) {
            auto it = buckets_.begin();
            if (it->first > qcut) break;
            const std::uint64_t b = it->first;
            const bool boundary = b == qcut;
            std::vector<Id> kept;
            for (const Id& id : it->second) {
                ++st.visited;
                switch (fn(id, b)) {
                case Verdict::Expired:
                    ++st.expired;
                    break;
                case Verdict::Stale:
                    ++st.stale;
                    break;
                case Verdict::Keep:
                    // Only reachable in the boundary bucket (below it,
                    // quantization proves last_seen < cutoff); refile
                    // defensively so a survivor is never dropped.
                    ++st.kept;
                    kept.push_back(id);
                    break;
                }
            }
            nodes_ -= it->second.size();
            buckets_.erase(it);
            if (!kept.empty()) {
                nodes_ += kept.size();
                auto& vec = buckets_[qcut];
                vec.insert(vec.end(), kept.begin(), kept.end());
            }
            if (boundary) break;
        }
        return st;
    }

    // Filed nodes, including stale tombstones (diagnostics).
    std::size_t nodes() const { return nodes_; }
    std::size_t bucket_count() const { return buckets_.size(); }

    void clear()
    {
        buckets_.clear();
        nodes_ = 0;
    }

private:
    std::uint32_t shift_;
    // Ordered sparse buckets: expiry pops from the front; virtual time
    // only grows, so the map stays small (live span / tick quantum).
    std::map<std::uint64_t, std::vector<Id>> buckets_;
    std::size_t nodes_ = 0;
};

} // namespace ovsx::kern
