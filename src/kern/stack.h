// Per-namespace IP stack: addresses, routing (LPM), neighbors/ARP,
// socket demultiplexing, and IP forwarding.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "kern/device.h"
#include "net/flow.h"
#include "net/packet.h"
#include "sim/context.h"

namespace ovsx::kern {

class Kernel;

struct AddressEntry {
    int ifindex = -1;
    std::uint32_t addr = 0; // host byte order
    int prefix_len = 32;
};

struct RouteEntry {
    std::uint32_t prefix = 0;
    int prefix_len = 0;
    std::uint32_t gateway = 0; // 0 = directly connected
    int ifindex = -1;
    int metric = 0;
};

struct NeighborEntry {
    std::uint32_t addr = 0;
    net::MacAddr mac;
    int ifindex = -1;
    bool permanent = false;
};

class IpStack {
public:
    // Socket receive callback: full frame, parsed key, and the softirq
    // context delivering it.
    using SocketHandler =
        std::function<void(net::Packet&&, const net::FlowKey&, sim::ExecContext&)>;
    // Notified on any table change, the hook rtnetlink subscribers
    // (OVS's userspace replica cache, §4) rely on.
    using ChangeListener = std::function<void(const char* table)>;

    IpStack(Kernel& kernel, int ns_id);

    int ns_id() const { return ns_id_; }

    // ---- configuration --------------------------------------------------
    void add_address(int ifindex, std::uint32_t addr, int prefix_len);
    void add_route(std::uint32_t prefix, int prefix_len, std::uint32_t gateway, int ifindex,
                   int metric = 0);
    void add_neighbor(std::uint32_t addr, const net::MacAddr& mac, int ifindex,
                      bool permanent = false);
    void set_forwarding(bool on) { forwarding_ = on; }

    const std::vector<AddressEntry>& addresses() const { return addrs_; }
    const std::vector<RouteEntry>& routes() const { return routes_; }
    const std::vector<NeighborEntry>& neighbors() const { return neighbors_; }

    bool is_local_address(std::uint32_t addr) const;
    std::optional<RouteEntry> route_lookup(std::uint32_t dst) const;
    std::optional<net::MacAddr> neighbor_lookup(std::uint32_t addr) const;
    // Source address selection for an egress interface.
    std::optional<std::uint32_t> address_on(int ifindex) const;

    void add_change_listener(ChangeListener fn) { listeners_.push_back(std::move(fn)); }

    // ---- sockets -----------------------------------------------------------
    // Binds (proto, local port). Port 0 binds all ports of that proto
    // (used by tunnel vports and diagnostic taps).
    void bind(std::uint8_t proto, std::uint16_t port, SocketHandler handler);
    void unbind(std::uint8_t proto, std::uint16_t port);

    // ---- datapath ---------------------------------------------------------------
    // Ingress from a device in this namespace (after skb allocation).
    void rx(Device& dev, net::Packet&& pkt, sim::ExecContext& ctx);

    // Transmits an IP packet originated locally: fills in Ethernet based
    // on route/neighbor lookup. Returns false when unroutable.
    bool send_ip(net::Packet&& pkt, sim::ExecContext& ctx);

    // Convenience: build + send a UDP datagram.
    bool send_udp(std::uint32_t dst_ip, std::uint16_t sport, std::uint16_t dport,
                  std::size_t payload_len, sim::ExecContext& ctx);

    std::uint64_t rx_delivered() const { return rx_delivered_; }
    std::uint64_t rx_forwarded() const { return rx_forwarded_; }
    std::uint64_t rx_dropped() const { return rx_dropped_; }

private:
    void notify(const char* table);
    void handle_arp(Device& dev, net::Packet&& pkt, sim::ExecContext& ctx);
    void forward(net::Packet&& pkt, std::uint32_t dst, sim::ExecContext& ctx);

    Kernel& kernel_;
    int ns_id_;
    bool forwarding_ = false;
    std::vector<AddressEntry> addrs_;
    std::vector<RouteEntry> routes_;
    std::vector<NeighborEntry> neighbors_;
    std::map<std::pair<std::uint8_t, std::uint16_t>, SocketHandler> sockets_;
    std::vector<ChangeListener> listeners_;
    std::uint64_t rx_delivered_ = 0;
    std::uint64_t rx_forwarded_ = 0;
    std::uint64_t rx_dropped_ = 0;
};

} // namespace ovsx::kern
