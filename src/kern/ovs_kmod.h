// The in-kernel OVS datapath module (openvswitch.ko of the original
// split design): a masked flow table (tuple-space search) populated from
// userspace, vports over kernel devices and tunnel endpoints, upcalls on
// misses, and an action executor using kernel facilities (conntrack,
// tunnels, devices).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "kern/device.h"
#include "kern/meter.h"
#include "kern/odp.h"
#include "net/flow.h"
#include "net/tunnel.h"
#include "san/report.h"
#include "sim/time.h"

namespace ovsx::kern {

class Kernel;

struct KernelFlowStats {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
};

// One datapath port.
struct Vport {
    std::uint32_t port_no = 0;
    std::string name;
    Device* dev = nullptr;                    // device-backed port
    std::optional<net::TunnelType> tunnel;    // tunnel vport
    std::uint32_t tunnel_local_ip = 0;        // local endpoint for tunnel vports
};

class OvsKernelDatapath {
public:
    // Upcall: flow-table miss. The handler (ovs-vswitchd) is expected to
    // install a flow and/or re-inject the packet with execute().
    using UpcallHandler =
        std::function<void(std::uint32_t port_no, net::Packet&&, const net::FlowKey&,
                           sim::ExecContext&)>;

    explicit OvsKernelDatapath(Kernel& kernel);
    ~OvsKernelDatapath();

    Kernel& kernel() { return kernel_; }

    // ---- ports ---------------------------------------------------------
    std::uint32_t add_port(Device& dev);
    std::uint32_t add_tunnel_port(const std::string& name, net::TunnelType type,
                                  std::uint32_t local_ip);
    void del_port(std::uint32_t port_no);
    const Vport* port(std::uint32_t port_no) const;
    const Vport* port_by_name(const std::string& name) const;
    std::vector<const Vport*> ports() const;

    // ---- flow table ----------------------------------------------------------
    void flow_put(const net::FlowKey& key, const net::FlowMask& mask, OdpActions actions);
    bool flow_del(const net::FlowKey& key, const net::FlowMask& mask);
    void flow_flush();
    std::size_t flow_count() const;
    // Every installed flow, for per-entry end-state diffing.
    std::vector<OdpFlowEntry> flow_dump() const;

    // Copy-free walk over (masked key, mask, actions): the differential
    // harness digests end state through this and only materializes the
    // full dump when digests disagree.
    template <typename Fn> void for_each_entry(Fn&& fn) const
    {
        for (const auto& sub : subtables_) {
            for (const auto& [hash, bucket] : sub.flows) {
                for (const auto& [k, actions] : bucket) fn(k, sub.mask, *actions);
            }
        }
    }

    // Cross-checks the san table audit against the real table.
    void san_check(san::Site site) const;

    void set_upcall_handler(UpcallHandler handler) { upcall_ = std::move(handler); }

    // ---- meters / virtual time ------------------------------------------
    MeterTable& meters() { return meters_; }
    const MeterTable& meters() const { return meters_; }

    // Virtual clock used for meter refill and conntrack timestamps, the
    // same convention as DpifNetdev::set_now. Also drives the host
    // conntrack's timer-wheel tick (ovs_kmod.cpp).
    void set_now(sim::Nanos now);
    sim::Nanos now() const { return now_; }

    // ---- datapath ---------------------------------------------------------------
    // Ingress entry (wired as the rx handler of every device port).
    void receive(std::uint32_t port_no, net::Packet&& pkt, sim::ExecContext& ctx);

    // Burst ingress: the whole vector is admitted at once (one rx
    // doorbell amortized over the burst), then each packet runs the
    // per-packet path — the kernel datapath has no compute batching,
    // which is exactly the paper's Table 4 story. Publishes the same
    // batch.occupancy/batch.flush telemetry as the userspace spine.
    void receive_batch(std::uint32_t port_no, std::vector<net::Packet>&& pkts,
                       sim::ExecContext& ctx);

    // Executes actions on a packet (also the userspace re-injection path,
    // OVS_PACKET_CMD_EXECUTE).
    void execute(net::Packet&& pkt, const OdpActions& actions, sim::ExecContext& ctx);

    // ---- in-band telemetry (INT) ---------------------------------------
    // Same semantics as DpifNetdev::IntConfig: attach the Geneve INT
    // option at encap, stamp one hop record per transmitted frame that
    // carries the option, pop+export at tunnel decap.
    struct IntConfig {
        bool enabled = false;
        std::uint32_t switch_id = 0;
        std::uint8_t tier = 0; // net::kIntTier{Host,Leaf,Spine}
        std::uint8_t max_hops = 8;
        bool attach_on_encap = true;
    };
    void set_int(const IntConfig& cfg) { int_cfg_ = cfg; }
    const IntConfig& int_config() const { return int_cfg_; }

    // ---- statistics -----------------------------------------------------------------
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t lost() const { return lost_; } // misses with no upcall handler

    // Masks currently in the table (diagnostic; the paper's megaflow
    // discussions are about keeping this small).
    std::size_t mask_count() const { return subtables_.size(); }

private:
    // Actions are held by shared_ptr so a lookup result stays valid
    // while its packet executes, even when execution re-enters flow_put
    // and replaces the entry (previously guarded by a per-packet deep
    // copy of the action list).
    using ActionsRef = std::shared_ptr<const OdpActions>;

    struct Subtable {
        net::FlowMask mask;
        std::unordered_map<std::uint64_t, std::vector<std::pair<net::FlowKey, ActionsRef>>>
            flows; // hash(masked key) -> entries
        std::size_t size = 0;
    };

    struct LookupResult {
        ActionsRef actions;
        int probes = 0;
    };

    LookupResult lookup(const net::FlowKey& key, sim::ExecContext& ctx);
    // receive() minus the profiler iteration bracket (receive_batch
    // opens one iteration for the whole burst; a solo receive() opens
    // its own around a single call).
    void receive_one(std::uint32_t port_no, net::Packet&& pkt, sim::ExecContext& ctx);
    void do_output(net::Packet&& pkt, std::uint32_t port_no, sim::ExecContext& ctx);
    void tunnel_rx(net::Packet&& pkt, const net::FlowKey& key, sim::ExecContext& ctx);
    void maybe_int_stamp(net::Packet& pkt, sim::ExecContext& ctx);

    Kernel& kernel_;
    std::map<std::uint32_t, Vport> ports_;
    std::uint32_t next_port_no_ = 1;
    std::vector<Subtable> subtables_; // ordered most-specific first
    UpcallHandler upcall_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t lost_ = 0;
    int recursion_ = 0;
    MeterTable meters_;
    sim::Nanos now_ = 0;
    IntConfig int_cfg_;
    std::uint16_t last_batch_occupancy_ = 1; // INT queue/batch occupancy field
    std::uint64_t san_scope_;
};

} // namespace ovsx::kern
