// The simulated Linux kernel instance: device registry, network
// namespaces with IP stacks, XDP dispatch, AF_XDP socket registry, and
// the connection-tracking subsystem. One Kernel == one OS instance (a
// hypervisor host or a VM guest).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "afxdp/xsk.h"
#include "ebpf/program.h"
#include "ebpf/vm.h"
#include "kern/conntrack.h"
#include "kern/device.h"
#include "sim/costs.h"

namespace ovsx::kern {

class IpStack;
class OvsKernelDatapath;

// Outcome of running an XDP program on ingress; the driver decides what
// to do with the packet based on this.
enum class XdpVerdict {
    NoProgram, // nothing attached: continue into the stack
    Drop,
    PassToStack,
    Tx,            // bounce back out the same device
    RedirectedXsk, // consumed: delivered to an AF_XDP socket
    RedirectedDev, // consumed: transmitted out of another device
    Aborted,
};

const char* to_string(XdpVerdict v);

class Kernel {
public:
    explicit Kernel(std::string hostname = "host",
                    const sim::CostModel& costs = sim::CostModel::baseline());
    ~Kernel();

    Kernel(const Kernel&) = delete;
    Kernel& operator=(const Kernel&) = delete;

    const std::string& hostname() const { return hostname_; }
    const sim::CostModel& costs() const { return costs_; }

    // ---- devices -----------------------------------------------------------
    // Registers a device, assigning its ifindex. The kernel owns devices.
    template <typename T, typename... Args> T& add_device(Args&&... args)
    {
        auto dev = std::make_unique<T>(*this, std::forward<Args>(args)...);
        T& ref = *dev;
        register_device(std::move(dev));
        return ref;
    }
    Device* device(int ifindex);
    Device* device(const std::string& name);
    std::vector<Device*> devices();

    // ---- namespaces -----------------------------------------------------------
    // Namespace 0 (the root) always exists.
    int create_namespace(const std::string& name);
    IpStack& stack(int ns_id = 0);
    int namespace_count() const;

    // ---- AF_XDP socket registry -------------------------------------------------
    // Associates (xskmap, key) with a bound socket; the XDP redirect path
    // resolves through this, like the kernel's xskmap internals.
    void bind_xsk(ebpf::Map* map, std::uint32_t key, afxdp::XskSocket* sock);
    void unbind_xsk(ebpf::Map* map, std::uint32_t key);
    afxdp::XskSocket* xsk_for(ebpf::Map* map, std::uint32_t key);

    // ---- XDP dispatch ------------------------------------------------------------
    // Runs `prog` over `pkt` arriving on (dev, queue), handling redirect
    // resolution. On RedirectedXsk/RedirectedDev the packet has been
    // consumed. Charges `ctx` (softirq) for program execution.
    XdpVerdict run_xdp(const ebpf::Program& prog, net::Packet& pkt, Device& dev,
                       std::uint32_t queue, sim::ExecContext& ctx);

    // ---- subsystems ----------------------------------------------------------------
    Conntrack& conntrack() { return conntrack_; }
    ebpf::Vm& vm() { return vm_; }

    // The in-kernel OVS datapath module (created on first use — i.e.
    // "modprobe openvswitch").
    OvsKernelDatapath& ovs_datapath();
    bool ovs_loaded() const { return ovs_ != nullptr; }

private:
    void register_device(std::unique_ptr<Device> dev);

    std::string hostname_;
    const sim::CostModel& costs_;
    std::vector<std::unique_ptr<Device>> devices_;
    std::vector<std::string> namespaces_;
    std::vector<std::unique_ptr<IpStack>> stacks_;
    std::map<std::pair<ebpf::Map*, std::uint32_t>, afxdp::XskSocket*> xsk_registry_;
    Conntrack conntrack_;
    ebpf::Vm vm_;
    std::unique_ptr<OvsKernelDatapath> ovs_;
};

} // namespace ovsx::kern
