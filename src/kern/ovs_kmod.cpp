#include "kern/ovs_kmod.h"

#include <algorithm>

#include "kern/kernel.h"
#include "kern/stack.h"
#include "net/headers.h"
#include "net/int_hdr.h"
#include "net/rewrite.h"
#include "obs/coverage.h"
#include "obs/int_export.h"
#include "obs/perf.h"
#include "obs/trace.h"
#include "san/audit.h"
#include "san/packet_ledger.h"

namespace ovsx::kern {

namespace {

// Audit identity of a flow-table entry: the masked key hashed with the
// mask (FlowKey bytes are fully defined, so this is deterministic).
std::uint64_t flow_audit_key(const net::FlowKey& masked, const net::FlowMask& mask)
{
    return masked.hash(mask.hash());
}

} // namespace

OvsKernelDatapath::OvsKernelDatapath(Kernel& kernel)
    : kernel_(kernel), san_scope_(san::new_scope())
{
}

void OvsKernelDatapath::set_now(sim::Nanos now)
{
    now_ = now;
    // Occupancy counters + amortized timer-wheel expiry on the host
    // conntrack (bounded per tick; never an O(table) scan).
    kernel_.conntrack().tick(now);
}

OvsKernelDatapath::~OvsKernelDatapath()
{
    for (const auto& [no, vport] : ports_) {
        if (vport.dev) san::ref_dec(0, "netdev.ref", vport.dev->ifindex(), OVSX_SITE);
    }
    san::audit_clear(san_scope_, "kdp.flow");
}

std::uint32_t OvsKernelDatapath::add_port(Device& dev)
{
    const std::uint32_t port_no = next_port_no_++;
    Vport vport;
    vport.port_no = port_no;
    vport.name = dev.name();
    vport.dev = &dev;
    ports_[port_no] = vport;
    san::ref_inc(0, "netdev.ref", dev.ifindex(), OVSX_SITE);
    dev.set_rx_handler([this, port_no](Device&, net::Packet&& pkt, sim::ExecContext& ctx) {
        receive(port_no, std::move(pkt), ctx);
    });
    return port_no;
}

std::uint32_t OvsKernelDatapath::add_tunnel_port(const std::string& name, net::TunnelType type,
                                                 std::uint32_t local_ip)
{
    const std::uint32_t port_no = next_port_no_++;
    Vport vport;
    vport.port_no = port_no;
    vport.name = name;
    vport.tunnel = type;
    vport.tunnel_local_ip = local_ip;
    ports_[port_no] = vport;

    // Terminate tunnel traffic arriving at the local stack.
    IpStack& stack = kernel_.stack(0);
    if (type == net::TunnelType::Geneve || type == net::TunnelType::Vxlan) {
        const std::uint16_t port =
            type == net::TunnelType::Geneve ? net::kGenevePort : net::kVxlanPort;
        stack.bind(static_cast<std::uint8_t>(net::IpProto::Udp), port,
                   [this](net::Packet&& pkt, const net::FlowKey& key, sim::ExecContext& ctx) {
                       tunnel_rx(std::move(pkt), key, ctx);
                   });
    } else {
        stack.bind(static_cast<std::uint8_t>(net::IpProto::Gre), 0,
                   [this](net::Packet&& pkt, const net::FlowKey& key, sim::ExecContext& ctx) {
                       tunnel_rx(std::move(pkt), key, ctx);
                   });
    }
    return port_no;
}

void OvsKernelDatapath::del_port(std::uint32_t port_no)
{
    auto it = ports_.find(port_no);
    if (it == ports_.end()) return;
    if (it->second.dev) {
        it->second.dev->clear_rx_handler();
        san::ref_dec(0, "netdev.ref", it->second.dev->ifindex(), OVSX_SITE);
    }
    ports_.erase(it);
}

const Vport* OvsKernelDatapath::port(std::uint32_t port_no) const
{
    auto it = ports_.find(port_no);
    return it == ports_.end() ? nullptr : &it->second;
}

const Vport* OvsKernelDatapath::port_by_name(const std::string& name) const
{
    for (const auto& [no, vport] : ports_) {
        if (vport.name == name) return &vport;
    }
    return nullptr;
}

std::vector<const Vport*> OvsKernelDatapath::ports() const
{
    std::vector<const Vport*> out;
    for (const auto& [no, vport] : ports_) out.push_back(&vport);
    return out;
}

void OvsKernelDatapath::flow_put(const net::FlowKey& key, const net::FlowMask& mask,
                                 OdpActions actions)
{
    const net::FlowKey masked = mask.apply(key);
    auto ref = std::make_shared<const OdpActions>(std::move(actions));
    for (auto& sub : subtables_) {
        if (sub.mask == mask) {
            auto& bucket = sub.flows[masked.hash()];
            for (auto& [k, a] : bucket) {
                if (k == masked) {
                    a = std::move(ref);
                    return;
                }
            }
            bucket.emplace_back(masked, std::move(ref));
            ++sub.size;
            san::audit_add(san_scope_, "kdp.flow", flow_audit_key(masked, mask), OVSX_SITE);
            return;
        }
    }
    Subtable sub;
    sub.mask = mask;
    sub.flows[masked.hash()].emplace_back(masked, std::move(ref));
    sub.size = 1;
    subtables_.push_back(std::move(sub));
    san::audit_add(san_scope_, "kdp.flow", flow_audit_key(masked, mask), OVSX_SITE);
    // Keep the most specific masks first so probe order favours them.
    std::sort(subtables_.begin(), subtables_.end(), [](const Subtable& a, const Subtable& b) {
        return a.mask.exact_bytes() > b.mask.exact_bytes();
    });
}

bool OvsKernelDatapath::flow_del(const net::FlowKey& key, const net::FlowMask& mask)
{
    const net::FlowKey masked = mask.apply(key);
    for (auto& sub : subtables_) {
        if (!(sub.mask == mask)) continue;
        auto it = sub.flows.find(masked.hash());
        if (it == sub.flows.end()) return false;
        auto& bucket = it->second;
        for (auto bit = bucket.begin(); bit != bucket.end(); ++bit) {
            if (bit->first == masked) {
                bucket.erase(bit);
                --sub.size;
                san::audit_remove(san_scope_, "kdp.flow", flow_audit_key(masked, mask),
                                  OVSX_SITE);
                return true;
            }
        }
    }
    return false;
}

void OvsKernelDatapath::flow_flush()
{
    subtables_.clear();
    san::audit_clear(san_scope_, "kdp.flow");
}

std::size_t OvsKernelDatapath::flow_count() const
{
    std::size_t n = 0;
    for (const auto& sub : subtables_) n += sub.size;
    return n;
}

std::vector<OdpFlowEntry> OvsKernelDatapath::flow_dump() const
{
    std::vector<OdpFlowEntry> out;
    for (const auto& sub : subtables_) {
        for (const auto& [hash, bucket] : sub.flows) {
            for (const auto& [k, actions] : bucket) {
                out.push_back(OdpFlowEntry{k, sub.mask, *actions});
            }
        }
    }
    return out;
}

void OvsKernelDatapath::san_check(san::Site site) const
{
    san::audit_expect_size(san_scope_, "kdp.flow", flow_count(), site);
}

OvsKernelDatapath::LookupResult OvsKernelDatapath::lookup(const net::FlowKey& key,
                                                          sim::ExecContext& ctx)
{
    LookupResult res;
    for (auto& sub : subtables_) {
        ++res.probes;
        ctx.charge(kernel_.costs().kdp_flow_probe);
        auto it = sub.flows.find(sub.mask.masked_hash(key));
        if (it == sub.flows.end()) continue;
        for (const auto& [k, actions] : it->second) {
            if (sub.mask.matches(key, k)) {
                res.actions = actions;
                return res;
            }
        }
    }
    return res;
}

void OvsKernelDatapath::receive(std::uint32_t port_no, net::Packet&& pkt, sim::ExecContext& ctx)
{
    obs::PmdPerf* perf = ctx.perf();
    // A solo receive (not under receive_batch) is its own profiler
    // iteration of one packet; recirculation still counts extra
    // classifier passes, matching pmd-stats-show hits+misses.
    if (!perf || perf->in_iteration()) {
        receive_one(port_no, std::move(pkt), ctx);
        return;
    }
    const std::uint64_t classified_before = hits_ + misses_;
    perf->begin_iteration();
    receive_one(port_no, std::move(pkt), ctx);
    perf->end_iteration(hits_ + misses_ - classified_before);
}

void OvsKernelDatapath::receive_one(std::uint32_t port_no, net::Packet&& pkt,
                                    sim::ExecContext& ctx)
{
    const auto& costs = kernel_.costs();
    obs::PmdPerf* perf = ctx.perf();
    san::skb_transition(pkt.san_id(), san::SkbState::Datapath, OVSX_SITE);
    {
        obs::PerfStageScope rx(perf, obs::PerfStage::RxPoll);
        ctx.charge(costs.kdp_base);
    }
    pkt.meta().latency_ns += costs.kdp_base;
    pkt.meta().in_port = port_no;

    const net::FlowKey key = net::parse_flow(pkt);
    LookupResult res;
    {
        obs::PerfStageScope mf(perf, obs::PerfStage::MegaflowLookup);
        res = lookup(key, ctx);
    }
    pkt.meta().latency_ns += static_cast<sim::Nanos>(res.probes) * costs.kdp_flow_probe;
    if (res.actions) {
        ++hits_;
        OVSX_COVERAGE_CTX(ctx, "kdp.hit");
        if (pkt.meta().trace_id) {
            obs::trace(pkt.meta().trace_id, obs::Hop::KernelFlow, pkt.meta().latency_ns,
                       "hit", res.probes);
        }
        // The shared reference keeps the actions alive even if execution
        // installs a replacement flow and re-enters.
        execute(std::move(pkt), *res.actions, ctx);
        return;
    }
    ++misses_;
    OVSX_COVERAGE_CTX(ctx, "kdp.miss");
    if (perf) perf->note_upcall();
    if (pkt.meta().trace_id) {
        obs::trace(pkt.meta().trace_id, obs::Hop::KernelFlow, pkt.meta().latency_ns, "miss",
                   res.probes);
    }
    if (!upcall_) {
        ++lost_;
        if (pkt.meta().trace_id) {
            obs::trace(pkt.meta().trace_id, obs::Hop::Drop, pkt.meta().latency_ns, "lost");
        }
        return;
    }
    if (pkt.meta().trace_id) {
        obs::trace(pkt.meta().trace_id, obs::Hop::Upcall, pkt.meta().latency_ns, "");
    }
    obs::PerfStageScope up(perf, obs::PerfStage::Upcall);
    ctx.charge(costs.upcall / 10); // kernel-side upcall enqueue share
    upcall_(port_no, std::move(pkt), key, ctx);
}

void OvsKernelDatapath::receive_batch(std::uint32_t port_no, std::vector<net::Packet>&& pkts,
                                      sim::ExecContext& ctx)
{
    if (pkts.empty()) return;
    obs::PmdPerf* perf = ctx.perf();
    const bool iterate = perf && !perf->in_iteration();
    const std::uint64_t classified_before = hits_ + misses_;
    if (iterate) perf->begin_iteration();
    OVSX_COVERAGE_CTX(ctx, "batch.flush");
    OVSX_COVERAGE_CTX_N(ctx, "batch.occupancy", pkts.size());
    last_batch_occupancy_ =
        static_cast<std::uint16_t>(std::min<std::size_t>(pkts.size(), 0xffff));
    for (auto& pkt : pkts) {
        receive_one(port_no, std::move(pkt), ctx);
    }
    pkts.clear();
    if (iterate) perf->end_iteration(hits_ + misses_ - classified_before);
}

void OvsKernelDatapath::tunnel_rx(net::Packet&& pkt, const net::FlowKey& key,
                                  sim::ExecContext& ctx)
{
    auto res = net::decapsulate_auto(pkt);
    if (!res) return;
    if (!res->geneve_opts.empty()) {
        // Last hop: pop the INT option (decap already stripped it from
        // the frame) and export the hop records.
        bool truncated = false;
        const auto hops = net::int_parse_options(res->geneve_opts, &truncated);
        if (!hops.empty() || truncated) {
            std::vector<obs::IntHopSample> samples;
            samples.reserve(hops.size());
            for (const auto& h : hops) {
                samples.push_back({h.switch_id, h.ingress_tier, h.egress_tier, h.occupancy,
                                   static_cast<std::int64_t>(h.latency_ticks) *
                                       net::kIntTickNs});
            }
            obs::int_export(res->key.ip_src, res->key.ip_dst, samples, truncated);
        }
    }
    // Find the vport for this tunnel type.
    for (const auto& [no, vport] : ports_) {
        if (vport.tunnel && *vport.tunnel == res->type) {
            pkt.meta().tunnel = res->key;
            pkt.meta().csum_verified = true; // validated with the outer frame
            (void)key;
            receive(no, std::move(pkt), ctx);
            return;
        }
    }
}

void OvsKernelDatapath::do_output(net::Packet&& pkt, std::uint32_t port_no,
                                  sim::ExecContext& ctx)
{
    const Vport* vport = port(port_no);
    if (!vport) {
        if (pkt.meta().trace_id) {
            obs::trace(pkt.meta().trace_id, obs::Hop::Drop, pkt.meta().latency_ns,
                       "no-such-port", port_no);
        }
        return;
    }
    if (pkt.meta().trace_id) {
        obs::trace(pkt.meta().trace_id, obs::Hop::Tx, pkt.meta().latency_ns, "", port_no);
    }
    if (vport->dev) {
        if (int_cfg_.enabled) maybe_int_stamp(pkt, ctx);
        obs::PerfStageScope tx(ctx.perf(), obs::PerfStage::Tx);
        vport->dev->transmit(std::move(pkt), ctx);
        return;
    }
    if (vport->tunnel) {
        // Encapsulate using staged tunnel metadata, then route the outer
        // packet through the local stack.
        net::TunnelKey tkey = pkt.meta().tunnel;
        if (tkey.ip_src == 0) tkey.ip_src = vport->tunnel_local_ip;
        if (tkey.ip_dst == 0) return; // no destination staged
        IpStack& stack = kernel_.stack(0);
        const auto route = stack.route_lookup(tkey.ip_dst);
        if (!route) return;
        Device* out = kernel_.device(route->ifindex);
        const std::uint32_t next_hop = route->gateway ? route->gateway : tkey.ip_dst;
        const auto nh_mac = stack.neighbor_lookup(next_hop);
        if (!out || !nh_mac) return;

        net::EncapParams params;
        params.outer_src_mac = out->mac();
        params.outer_dst_mac = *nh_mac;
        params.udp_src_port = static_cast<std::uint16_t>(0xc000 | (pkt.meta().rxhash & 0x3fff));
        const auto& costs = kernel_.costs();
        net::encapsulate(pkt, *vport->tunnel, tkey, params);
        ctx.charge(costs.copy(static_cast<std::int64_t>(net::encap_overhead(*vport->tunnel))));
        pkt.meta().tunnel = net::TunnelKey{};
        if (int_cfg_.enabled && int_cfg_.attach_on_encap &&
            *vport->tunnel == net::TunnelType::Geneve) {
            net::int_attach(pkt, int_cfg_.max_hops);
        }
        if (int_cfg_.enabled) maybe_int_stamp(pkt, ctx);
        obs::PerfStageScope tx(ctx.perf(), obs::PerfStage::Tx);
        out->transmit(std::move(pkt), ctx);
        return;
    }
}

void OvsKernelDatapath::maybe_int_stamp(net::Packet& pkt, sim::ExecContext& ctx)
{
    net::IntHop hop;
    hop.switch_id = int_cfg_.switch_id;
    hop.ingress_tier = int_cfg_.tier;
    hop.egress_tier = int_cfg_.tier;
    hop.occupancy = last_batch_occupancy_;
    hop.latency_ticks = static_cast<std::uint32_t>(pkt.meta().latency_ns / net::kIntTickNs);
    if (net::int_stamp(pkt, hop)) {
        OVSX_COVERAGE_CTX(ctx, "int.stamped");
        const auto c =
            kernel_.costs().copy(static_cast<std::int64_t>(sizeof(net::IntHopRecord)));
        ctx.charge(c);
        pkt.meta().latency_ns += c;
    }
}

void OvsKernelDatapath::execute(net::Packet&& pkt, const OdpActions& actions,
                                sim::ExecContext& ctx)
{
    if (recursion_ > 8) return; // mirror the kernel's recursion limit
    ++recursion_;
    const auto& costs = kernel_.costs();
    obs::PmdPerf* perf = ctx.perf();
    obs::PerfStageScope act_scope(perf, obs::PerfStage::Actions);

    for (std::size_t i = 0; i < actions.size(); ++i) {
        const OdpAction& act = actions[i];
        switch (act.type) {
        case OdpAction::Type::Output: {
            const bool last = (i + 1 == actions.size());
            if (last) {
                do_output(std::move(pkt), act.port, ctx);
                --recursion_;
                return;
            }
            net::Packet clone = pkt; // multicast/mirror copy
            ctx.charge(costs.copy(static_cast<std::int64_t>(pkt.size())));
            do_output(std::move(clone), act.port, ctx);
            break;
        }
        case OdpAction::Type::PushVlan:
            net::push_vlan(pkt, act.vlan_tci);
            break;
        case OdpAction::Type::PopVlan:
            net::pop_vlan(pkt);
            break;
        case OdpAction::Type::SetField:
            net::apply_rewrite(pkt, act.set_value, act.set_mask);
            ctx.charge(costs.kdp_base / 4);
            break;
        case OdpAction::Type::SetTunnel:
            pkt.meta().tunnel = act.tunnel;
            break;
        case OdpAction::Type::Ct: {
            obs::PerfStageScope ct_scope(perf, obs::PerfStage::Ct);
            const net::FlowKey key = net::parse_flow(pkt);
            kernel_.conntrack().process(pkt, key, act.ct, ctx, now_);
            if (pkt.meta().trace_id) {
                obs::trace(pkt.meta().trace_id, obs::Hop::Ct, pkt.meta().latency_ns, "",
                           act.ct.zone, pkt.meta().ct_state);
            }
            break;
        }
        case OdpAction::Type::Recirc: {
            pkt.meta().recirc_id = act.recirc_id;
            const net::FlowKey key = net::parse_flow(pkt);
            ctx.charge(costs.kdp_base / 2); // recirculation re-entry
            pkt.meta().latency_ns += costs.kdp_base / 2;
            LookupResult res;
            {
                obs::PerfStageScope mf(perf, obs::PerfStage::MegaflowLookup);
                res = lookup(key, ctx);
            }
            if (res.actions) {
                ++hits_;
                execute(std::move(pkt), *res.actions, ctx);
            } else {
                ++misses_;
                if (perf) perf->note_upcall();
                if (upcall_) {
                    obs::PerfStageScope up(perf, obs::PerfStage::Upcall);
                    upcall_(pkt.meta().in_port, std::move(pkt), key, ctx);
                } else {
                    ++lost_;
                }
            }
            --recursion_;
            return;
        }
        case OdpAction::Type::Meter:
            // Token-bucket policing, same semantics as the userspace
            // datapath (kern/meter.h).
            if (!meters_.admit(act.meter_id, pkt.size(), now_)) {
                --recursion_;
                return;
            }
            break;
        case OdpAction::Type::Userspace:
            if (upcall_) {
                const net::FlowKey key = net::parse_flow(pkt);
                upcall_(pkt.meta().in_port, std::move(pkt), key, ctx);
            }
            --recursion_;
            return;
        case OdpAction::Type::Drop:
            --recursion_;
            return;
        }
    }
    --recursion_;
}

} // namespace ovsx::kern
