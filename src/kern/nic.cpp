#include "kern/nic.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "kern/kernel.h"
#include "net/builder.h"
#include "net/hash.h"
#include "net/headers.h"
#include "obs/trace.h"
#include "san/packet_ledger.h"

namespace ovsx::kern {

PhysicalDevice::PhysicalDevice(Kernel& kernel, std::string name, net::MacAddr mac, NicConfig cfg)
    : Device(kernel, std::move(name), DeviceKind::Physical, mac), cfg_(cfg)
{
    set_config(cfg);
}

void PhysicalDevice::set_config(const NicConfig& cfg)
{
    cfg_ = cfg;
    softirq_.clear();
    queue_progs_.assign(cfg_.num_queues, std::nullopt);
    for (std::uint32_t q = 0; q < cfg_.num_queues; ++q) {
        softirq_.emplace_back(name() + "-q" + std::to_string(q) + "-softirq",
                              sim::CpuClass::Softirq);
        // Always-on cycle profiler — the kernel datapath's receive path
        // runs in these contexts, so its pmd/perf-show rows come from
        // here (one row per NIC queue, the softirq analogue of a PMD).
        softirq_.back().attach_perf(softirq_.back().name());
    }
}

std::uint32_t PhysicalDevice::select_queue(const net::Packet& pkt) const
{
    const net::FlowKey key = net::parse_flow(pkt);
    for (const auto& rule : ntuple_) {
        if (rule.proto && rule.proto != key.nw_proto) continue;
        if (rule.dst_port && rule.dst_port != key.tp_dst) continue;
        if (rule.dst_ip && rule.dst_ip != key.nw_dst) continue;
        return rule.queue < cfg_.num_queues ? rule.queue : 0;
    }
    if (cfg_.rss && cfg_.num_queues > 1) {
        return net::rxhash_from_key(key) % cfg_.num_queues;
    }
    return 0;
}

void PhysicalDevice::attach_xdp(ebpf::Program prog, int queue)
{
    if (queue < 0) {
        dev_prog_ = std::move(prog);
        return;
    }
    if (cfg_.xdp_model != NicConfig::XdpModel::PerQueue) {
        throw std::invalid_argument(name() + ": driver only supports whole-device XDP attach");
    }
    if (static_cast<std::uint32_t>(queue) >= cfg_.num_queues) {
        throw std::out_of_range(name() + ": no such queue");
    }
    queue_progs_[static_cast<std::size_t>(queue)] = std::move(prog);
}

void PhysicalDevice::detach_xdp(int queue)
{
    if (queue < 0) {
        dev_prog_.reset();
        for (auto& p : queue_progs_) p.reset();
        return;
    }
    if (static_cast<std::uint32_t>(queue) < cfg_.num_queues) {
        queue_progs_[static_cast<std::size_t>(queue)].reset();
    }
}

const ebpf::Program* PhysicalDevice::xdp_program(std::uint32_t queue) const
{
    if (queue < queue_progs_.size() && queue_progs_[queue]) return &*queue_progs_[queue];
    if (dev_prog_) return &*dev_prog_;
    return nullptr;
}

void PhysicalDevice::rx_from_wire(net::Packet&& pkt, std::optional<std::uint32_t> forced_queue)
{
    if (pkt.san_id()) {
        // Re-entering a NIC over a simulated cable: same buffer, new
        // driver ownership.
        san::skb_transition(pkt.san_id(), san::SkbState::Driver, OVSX_SITE);
    } else {
        pkt.set_san_id(san::skb_acquire("wire-rx", san::SkbState::Driver, OVSX_SITE));
    }

    if (dpdk_rx_) {
        // Kernel completely bypassed: the PMD owns the queues.
        const std::uint32_t q = forced_queue.value_or(select_queue(pkt));
        dpdk_rx_(std::move(pkt), q);
        return;
    }

    const std::uint32_t q = forced_queue.value_or(select_queue(pkt));
    sim::ExecContext& ctx = softirq_[q];
    const auto& costs = kernel().costs();

    ctx.charge(costs.nic_rx_desc);
    pkt.meta().latency_ns += costs.nic_rx_desc;
    if (pkt.meta().trace_id) {
        obs::trace(pkt.meta().trace_id, obs::Hop::NicRx, pkt.meta().latency_ns, name().c_str(),
                   q);
    }
    if (interrupt_mode_) {
        // One interrupt per NAPI batch; the wakeup it causes is paid by
        // whoever sleeps on the data (stack socket or AF_XDP poller).
        if (irq_count_++ % kIrqBatch == 0) ctx.charge(costs.nic_irq);
        pkt.meta().latency_ns += costs.nic_irq / kIrqBatch;
    }

    // Hardware RX offloads.
    if (cfg_.rss) {
        const net::FlowKey key = net::parse_flow(pkt);
        pkt.meta().rxhash = net::rxhash_from_key(key);
        pkt.meta().rxhash_valid = true;
    }
    if (cfg_.rx_csum) pkt.meta().csum_verified = true;

    if (const ebpf::Program* prog = xdp_program(q)) {
        const XdpVerdict verdict = kernel().run_xdp(*prog, pkt, *this, q, ctx);
        if (pkt.meta().trace_id) {
            obs::trace(pkt.meta().trace_id, obs::Hop::Xdp, pkt.meta().latency_ns,
                       to_string(verdict), q);
        }
        switch (verdict) {
        case XdpVerdict::Drop:
        case XdpVerdict::Aborted:
            san::skb_free(pkt.san_id(), OVSX_SITE);
            ++xdp_drops_;
            return;
        case XdpVerdict::Tx: {
            ctx.charge(costs.nic_tx_desc + costs.xdp_tx_flush);
            pkt.meta().latency_ns += costs.nic_tx_desc + costs.xdp_tx_flush;
            san::skb_transition(pkt.san_id(), san::SkbState::Tx, OVSX_SITE);
            note_tx(pkt);
            to_wire(std::move(pkt));
            return;
        }
        case XdpVerdict::RedirectedXsk:
        case XdpVerdict::RedirectedDev:
            // Consumed by the redirect target (the bytes live on in a
            // umem frame or the peer device); this skb is recycled.
            san::skb_free(pkt.san_id(), OVSX_SITE);
            ++stats().rx_packets;
            stats().rx_bytes += pkt.size();
            return;
        case XdpVerdict::PassToStack:
        case XdpVerdict::NoProgram:
            break;
        }
    }

    // Conventional path: allocate an skb and hand the frame up. With
    // RSS spreading one stack across CPUs, shared cachelines (flow
    // stats, slabs) bounce -- the kernel's "fast but not efficient"
    // behaviour in Fig. 9 / Table 4.
    ctx.charge(costs.skb_alloc);
    pkt.meta().latency_ns += costs.skb_alloc;
    if (cfg_.num_queues > 1) {
        ctx.charge(costs.kernel_smp_contention);
        pkt.meta().latency_ns += costs.kernel_smp_contention;
    }
    deliver_rx(std::move(pkt), ctx);
}

std::uint32_t PhysicalDevice::xsk_tx_kick(afxdp::XskSocket& sock, std::uint32_t queue,
                                          sim::ExecContext& user_ctx)
{
    const auto& costs = kernel().costs();
    // sendto() on the XSK fd.
    user_ctx.charge(sim::CpuClass::System, costs.syscall);

    sim::ExecContext& ctx = softirq_[queue < cfg_.num_queues ? queue : 0];
    std::uint32_t sent = 0;
    while (auto pkt = sock.kernel_collect_tx(costs, ctx)) {
        pkt->set_san_id(san::skb_acquire("xsk-tx", san::SkbState::Tx, OVSX_SITE));
        ctx.charge(costs.nic_tx_desc);
        tx_offloads(*pkt, ctx, /*charge_sw=*/true);
        note_tx(*pkt);
        to_wire(std::move(*pkt));
        ++sent;
    }
    return sent;
}

void PhysicalDevice::dpdk_take_over(DpdkRx rx)
{
    dpdk_rx_ = std::move(rx);
    set_kernel_managed(false);
    detach_xdp(-1);
}

void PhysicalDevice::dpdk_release()
{
    dpdk_rx_ = nullptr;
    set_kernel_managed(true);
}

void PhysicalDevice::tx_offloads(net::Packet& pkt, sim::ExecContext& ctx, bool charge_sw)
{
    const auto& costs = kernel().costs();
    if (pkt.meta().csum_tx_offload) {
        if (cfg_.tx_csum) {
            // Hardware inserts the checksum: correctness maintained, no
            // CPU cost charged.
            net::refresh_l4_csum(pkt, sizeof(net::EthernetHeader));
        } else if (charge_sw) {
            net::refresh_l4_csum(pkt, sizeof(net::EthernetHeader));
            ctx.charge(costs.csum(static_cast<std::int64_t>(pkt.size())));
            pkt.meta().latency_ns += costs.csum(static_cast<std::int64_t>(pkt.size()));
        }
        pkt.meta().csum_tx_offload = false;
    }
}

void PhysicalDevice::to_wire(net::Packet&& pkt)
{
    if (!wire_) return;
    const std::uint16_t segsz = pkt.meta().tso_segsz;
    if (segsz == 0 || pkt.size() <= sizeof(net::EthernetHeader) + 40 + segsz) {
        pkt.meta().tso_segsz = 0;
        wire_(std::move(pkt));
        return;
    }
    // TSO: hardware slices the super-segment into MSS-sized TCP segments.
    const auto off = net::locate_headers(pkt);
    if (off.l4 < 0 || off.nw_proto != 6) {
        pkt.meta().tso_segsz = 0;
        wire_(std::move(pkt));
        return;
    }
    const auto l3 = static_cast<std::size_t>(off.l3);
    const auto l4 = static_cast<std::size_t>(off.l4);
    const auto* tcp = pkt.header_at<net::TcpHeader>(l4);
    const std::size_t header_len = l4 + static_cast<std::size_t>(tcp->header_len());
    const std::size_t payload_len = pkt.size() - header_len;
    std::uint32_t seq = tcp->seq();

    for (std::size_t done = 0; done < payload_len;) {
        const std::size_t chunk = std::min<std::size_t>(segsz, payload_len - done);
        net::Packet seg(header_len + chunk);
        std::memcpy(seg.data(), pkt.data(), header_len);
        std::memcpy(seg.data() + header_len, pkt.data() + header_len + done, chunk);
        auto* ip = seg.header_at<net::Ipv4Header>(l3);
        ip->set_total_len(static_cast<std::uint16_t>(seg.size() - l3));
        auto* th = seg.header_at<net::TcpHeader>(l4);
        th->seq_be = net::host_to_be32(seq);
        net::refresh_ipv4_csum(seg, l3);
        net::refresh_l4_csum(seg, l3);
        seg.set_san_id(san::skb_clone(pkt.san_id(), OVSX_SITE));
        seg.meta() = pkt.meta();
        seg.meta().tso_segsz = 0;
        seg.meta().csum_tx_offload = false;
        done += chunk;
        seq += static_cast<std::uint32_t>(chunk);
        wire_(std::move(seg));
    }
}

void PhysicalDevice::transmit(net::Packet&& pkt, sim::ExecContext& ctx)
{
    if (!kernel_managed()) {
        ++stats().tx_dropped; // the kernel no longer owns this device
        return;
    }
    const auto& costs = kernel().costs();
    ctx.charge(costs.nic_tx_desc);
    pkt.meta().latency_ns += costs.nic_tx_desc;
    tx_offloads(pkt, ctx, /*charge_sw=*/true);
    san::skb_transition(pkt.san_id(), san::SkbState::Tx, OVSX_SITE);
    note_tx(pkt);
    to_wire(std::move(pkt));
}

void PhysicalDevice::hw_transmit(net::Packet&& pkt)
{
    // DPDK PMD TX: offloads are handled by hardware descriptors.
    if (pkt.meta().csum_tx_offload) {
        net::refresh_l4_csum(pkt, sizeof(net::EthernetHeader));
        pkt.meta().csum_tx_offload = false;
    }
    san::skb_transition(pkt.san_id(), san::SkbState::Tx, OVSX_SITE);
    note_tx(pkt);
    to_wire(std::move(pkt));
}

} // namespace ovsx::kern
