#include "kern/virtio.h"

#include "kern/kernel.h"

namespace ovsx::kern {

bool VhostUserChannel::backend_tx(net::Packet&& pkt, sim::ExecContext& user_ctx)
{
    // Descriptor handling + the copy into guest memory (colder than a
    // cache-hot memcpy; see CostModel::vhost_copy_per_byte).
    const auto copy_cost = static_cast<sim::Nanos>(
        static_cast<double>(pkt.size()) * costs_.vhost_copy_per_byte);
    user_ctx.charge(costs_.vhost_ring_op);
    user_ctx.charge(copy_cost);
    pkt.meta().latency_ns += costs_.vhost_ring_op + copy_cost;
    if (!features_.guest_polling) {
        // Interrupt the guest (eventfd -> KVM irqfd).
        user_ctx.charge(costs_.vhost_kick);
        pkt.meta().latency_ns += costs_.vhost_kick;
    }
    if (guest_rx_) {
        guest_rx_(std::move(pkt), user_ctx);
        return true;
    }
    if (!to_guest_.produce(pkt)) {
        ++drops_;
        return false;
    }
    return true;
}

std::optional<net::Packet> VhostUserChannel::backend_rx(sim::ExecContext& user_ctx)
{
    auto pkt = to_backend_.consume();
    if (!pkt) return std::nullopt;
    const auto copy_cost = static_cast<sim::Nanos>(
        static_cast<double>(pkt->size()) * costs_.vhost_copy_per_byte);
    user_ctx.charge(costs_.vhost_ring_op);
    user_ctx.charge(copy_cost);
    pkt->meta().latency_ns += costs_.vhost_ring_op + copy_cost;
    return pkt;
}

bool VhostUserChannel::guest_tx(net::Packet&& pkt, sim::ExecContext& guest_ctx)
{
    guest_ctx.charge(costs_.vhost_ring_op);
    pkt.meta().latency_ns += costs_.vhost_ring_op;
    if (!to_backend_.produce(pkt)) {
        ++drops_;
        return false;
    }
    return true;
}

std::optional<net::Packet> VhostUserChannel::guest_rx_poll(sim::ExecContext& guest_ctx)
{
    auto pkt = to_guest_.consume();
    if (!pkt) return std::nullopt;
    guest_ctx.charge(costs_.vhost_ring_op);
    return pkt;
}

VirtioNetDevice::VirtioNetDevice(Kernel& guest_kernel, std::string name, net::MacAddr mac,
                                 VhostUserChannel& channel, sim::ExecContext& guest_ctx)
    : Device(guest_kernel, std::move(name), DeviceKind::VirtioNet, mac), channel_(channel),
      guest_ctx_(&guest_ctx)
{
    channel_.set_guest_rx([this](net::Packet&& pkt, sim::ExecContext&) {
        // Deliver into the guest's stack on the guest's own vCPU context.
        // The guest pays its own receive processing.
        deliver_rx(std::move(pkt), *guest_ctx_);
    });
}

void VirtioNetDevice::transmit(net::Packet&& pkt, sim::ExecContext& ctx)
{
    if (tx_csum_offload_ && channel_.features().csum_offload) {
        pkt.meta().csum_tx_offload = true;
    }
    if (tx_tso_segsz_ && channel_.features().tso) {
        pkt.meta().tso_segsz = tx_tso_segsz_;
    }
    note_tx(pkt);
    channel_.guest_tx(std::move(pkt), ctx);
}

} // namespace ovsx::kern
