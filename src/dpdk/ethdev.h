// rte_ethdev-style port: the DPDK PMD takes exclusive ownership of a
// physical NIC, polling its queues entirely in userspace. The moment
// this binds, the kernel — and every tool in Table 1 — loses the device.
#pragma once

#include <deque>
#include <vector>

#include "dpdk/mempool.h"
#include "kern/nic.h"
#include "net/packet.h"
#include "sim/context.h"

namespace ovsx::dpdk {

class EthDev {
public:
    // Binds the PMD to `nic` (vfio-pci style takeover).
    EthDev(kern::PhysicalDevice& nic, Mempool& pool);
    ~EthDev();

    EthDev(const EthDev&) = delete;
    EthDev& operator=(const EthDev&) = delete;

    std::uint32_t n_queues() const { return static_cast<std::uint32_t>(queues_.size()); }

    // Polls up to `max` packets from a queue. Always costs at least one
    // poll-loop iteration (the busy-poll price DPDK pays for latency).
    std::uint32_t rx_burst(std::uint32_t queue, std::vector<net::Packet>& out, std::uint32_t max,
                           sim::ExecContext& pmd);

    void tx_burst(std::uint32_t queue, std::vector<net::Packet>&& pkts, sim::ExecContext& pmd);

    std::uint64_t rx_dropped() const { return rx_dropped_; }

    kern::PhysicalDevice& nic() { return nic_; }

private:
    kern::PhysicalDevice& nic_;
    Mempool& pool_;
    std::vector<std::deque<net::Packet>> queues_;
    std::uint64_t rx_dropped_ = 0;
    static constexpr std::size_t kQueueDepth = 4096;
};

} // namespace ovsx::dpdk
