// DPDK-style mbuf mempool: a fixed-size, preallocated pool of packet
// buffers carved out of "hugepage" memory. Part of what makes OVS-DPDK
// heavyweight to deploy (§2.2.1: strict system requirements, dedicated
// memory) and fast to run.
//
// Every in-flight mbuf is registered with the san table audit
// ("mempool.mbuf"): freeing an mbuf that is not outstanding (double
// free / free of a foreign index) is a violation, and `san_check`
// cross-checks the audited population against the pool's own
// accounting. Occupancy is surfaced through obs `memory/show`.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "obs/appctl.h"
#include "san/audit.h"
#include "san/lockset.h"
#include "sync/mutex.h"

namespace ovsx::dpdk {

struct Mbuf {
    std::uint32_t index = 0; // position in the pool
    std::uint32_t len = 0;
    std::uint8_t* data = nullptr;
};

// Concurrency: the free list is guarded by one capability-annotated
// mutex. Real DPDK uses per-lcore caches over a lock-free ring; this
// model keeps the single-lock shape (alloc/free are not the modeled
// hot cost) and the annotations mark exactly what a per-PMD cache
// split would have to shard.
class Mempool {
public:
    Mempool(std::uint32_t count, std::uint32_t buf_size)
        : count_(count), buf_size_(buf_size),
          memory_(static_cast<std::size_t>(count) * buf_size),
          san_scope_(san::new_scope())
    {
        if (count == 0 || buf_size < 128) throw std::invalid_argument("Mempool: bad geometry");
        free_.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) free_.push_back(count - 1 - i);
        obs_token_ = obs::memory_register("dpdk.mempool", [this] {
            obs::Value v = obs::Value::object();
            v.set("capacity", capacity());
            v.set("available", available());
            v.set("in_flight", capacity() - available());
            v.set("buf_size", this->buf_size());
            v.set("bytes_reserved", static_cast<std::uint64_t>(memory_.size()));
            return v;
        });
    }

    ~Mempool()
    {
        obs::memory_unregister(obs_token_);
        // Teardown with mbufs still outstanding is a leak.
        san::audit_expect_empty(san_scope_, "mempool.mbuf", OVSX_SITE);
        san::audit_clear(san_scope_, "mempool.mbuf");
    }

    Mempool(const Mempool&) = delete;
    Mempool& operator=(const Mempool&) = delete;

    std::uint32_t capacity() const { return count_; }
    std::uint32_t available() const OVSX_EXCLUDES(mu_)
    {
        sync::LockGuard guard(mu_);
        return static_cast<std::uint32_t>(free_.size());
    }
    std::uint32_t buf_size() const { return buf_size_; }

    std::optional<Mbuf> alloc() OVSX_EXCLUDES(mu_)
    {
        sync::LockGuard guard(mu_);
        OVSX_SAN_ACCESS_AT(this, "dpdk.mempool", true);
        if (free_.empty()) return std::nullopt;
        const std::uint32_t idx = free_.back();
        free_.pop_back();
        san::audit_add(san_scope_, "mempool.mbuf", idx, OVSX_SITE);
        return Mbuf{idx, 0, memory_.data() + static_cast<std::size_t>(idx) * buf_size_};
    }

    void free(const Mbuf& mbuf) OVSX_EXCLUDES(mu_)
    {
        if (mbuf.index >= count_) throw std::out_of_range("Mempool: bad mbuf");
        sync::LockGuard guard(mu_);
        OVSX_SAN_ACCESS_AT(this, "dpdk.mempool", true);
        // Freeing an index that is not outstanding (double free) fires here.
        san::audit_remove(san_scope_, "mempool.mbuf", mbuf.index, OVSX_SITE);
        free_.push_back(mbuf.index);
    }

    // Audit checkpoint: outstanding mbufs must match the audited set.
    void san_check(san::Site site) const OVSX_EXCLUDES(mu_)
    {
        sync::LockGuard guard(mu_);
        san::audit_expect_size(san_scope_, "mempool.mbuf",
                               static_cast<std::size_t>(count_) - free_.size(), site);
    }

private:
    std::uint32_t count_;
    std::uint32_t buf_size_;
    std::vector<std::uint8_t> memory_; // slots owned by whoever holds the Mbuf
    mutable sync::Mutex mu_{"dpdk.mempool"};
    std::vector<std::uint32_t> free_ OVSX_GUARDED_BY(mu_);
    std::uint64_t san_scope_;
    std::uint64_t obs_token_ = 0;
};

} // namespace ovsx::dpdk
