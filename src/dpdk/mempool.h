// DPDK-style mbuf mempool: a fixed-size, preallocated pool of packet
// buffers carved out of "hugepage" memory. Part of what makes OVS-DPDK
// heavyweight to deploy (§2.2.1: strict system requirements, dedicated
// memory) and fast to run.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

namespace ovsx::dpdk {

struct Mbuf {
    std::uint32_t index = 0; // position in the pool
    std::uint32_t len = 0;
    std::uint8_t* data = nullptr;
};

class Mempool {
public:
    Mempool(std::uint32_t count, std::uint32_t buf_size)
        : count_(count), buf_size_(buf_size),
          memory_(static_cast<std::size_t>(count) * buf_size)
    {
        if (count == 0 || buf_size < 128) throw std::invalid_argument("Mempool: bad geometry");
        free_.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) free_.push_back(count - 1 - i);
    }

    std::uint32_t capacity() const { return count_; }
    std::uint32_t available() const { return static_cast<std::uint32_t>(free_.size()); }
    std::uint32_t buf_size() const { return buf_size_; }

    std::optional<Mbuf> alloc()
    {
        if (free_.empty()) return std::nullopt;
        const std::uint32_t idx = free_.back();
        free_.pop_back();
        return Mbuf{idx, 0, memory_.data() + static_cast<std::size_t>(idx) * buf_size_};
    }

    void free(const Mbuf& mbuf)
    {
        if (mbuf.index >= count_) throw std::out_of_range("Mempool: bad mbuf");
        free_.push_back(mbuf.index);
    }

private:
    std::uint32_t count_;
    std::uint32_t buf_size_;
    std::vector<std::uint8_t> memory_;
    std::vector<std::uint32_t> free_;
};

} // namespace ovsx::dpdk
