#include "dpdk/ethdev.h"

#include "kern/kernel.h"
#include "obs/coverage.h"
#include "obs/perf.h"

namespace ovsx::dpdk {

EthDev::EthDev(kern::PhysicalDevice& nic, Mempool& pool) : nic_(nic), pool_(pool)
{
    queues_.resize(nic.config().num_queues);
    nic_.dpdk_take_over([this](net::Packet&& pkt, std::uint32_t queue) {
        auto& q = queues_[queue < queues_.size() ? queue : 0];
        if (q.size() >= kQueueDepth) {
            ++rx_dropped_;
            return;
        }
        // Hardware RX offloads still apply — the PMD programs them via
        // its own descriptors.
        pkt.meta().csum_verified = nic_.config().rx_csum;
        q.push_back(std::move(pkt));
    });
}

EthDev::~EthDev() { nic_.dpdk_release(); }

std::uint32_t EthDev::rx_burst(std::uint32_t queue, std::vector<net::Packet>& out,
                               std::uint32_t max, sim::ExecContext& pmd)
{
    const auto& costs = nic_.kernel().costs();
    auto& q = queues_[queue < queues_.size() ? queue : 0];
    std::uint32_t n = 0;
    while (n < max && !q.empty()) {
        pmd.charge(costs.dpdk_rx_desc + costs.mbuf_op);
        q.front().meta().latency_ns += costs.dpdk_rx_desc + costs.mbuf_op;
        out.push_back(std::move(q.front()));
        q.pop_front();
        ++n;
    }
    if (n > 0) {
        // One RX tail-register update for the whole burst, not one per
        // descriptor; the cost is amortized so it charges the PMD but
        // no individual packet's latency.
        pmd.charge(costs.nic_doorbell);
        OVSX_COVERAGE_CTX(pmd, "dpdk.rx_doorbell");
        if (auto* perf = pmd.perf()) perf->note_doorbell();
    }
    OVSX_COVERAGE_CTX(pmd, "dpdk.rx_burst");
    return n;
}

void EthDev::tx_burst(std::uint32_t queue, std::vector<net::Packet>&& pkts,
                      sim::ExecContext& pmd)
{
    (void)queue;
    const auto& costs = nic_.kernel().costs();
    if (pkts.empty()) return;
    for (auto& pkt : pkts) {
        pmd.charge(costs.dpdk_tx_desc + costs.mbuf_op);
        pkt.meta().latency_ns += costs.dpdk_tx_desc + costs.mbuf_op;
        nic_.hw_transmit(std::move(pkt));
    }
    // One TX doorbell per burst (the per-packet variant is what the
    // XDP_TX row of Table 5 pays).
    obs::PerfStageScope tx_scope(pmd.perf(), obs::PerfStage::Tx);
    pmd.charge(costs.nic_doorbell);
    OVSX_COVERAGE_CTX(pmd, "dpdk.tx_doorbell");
    if (auto* perf = pmd.perf()) perf->note_doorbell();
}

} // namespace ovsx::dpdk
