#include "afxdp/umem.h"

#include <stdexcept>

namespace ovsx::afxdp {

Umem::Umem(std::uint32_t chunk_count, std::uint32_t chunk_size, std::uint32_t ring_capacity)
    : chunk_count_(chunk_count), chunk_size_(chunk_size),
      buffer_(static_cast<std::size_t>(chunk_count) * chunk_size), fill_(ring_capacity),
      comp_(ring_capacity)
{
    if (chunk_count == 0 || chunk_size < 64) {
        throw std::invalid_argument("Umem: bad geometry");
    }
}

std::span<std::uint8_t> Umem::frame(FrameAddr addr)
{
    if (!valid(addr)) throw std::out_of_range("Umem: bad frame address");
    return {buffer_.data() + addr, chunk_size_};
}

std::span<const std::uint8_t> Umem::frame(FrameAddr addr) const
{
    if (!valid(addr)) throw std::out_of_range("Umem: bad frame address");
    return {buffer_.data() + addr, chunk_size_};
}

} // namespace ovsx::afxdp
