// Single-producer / single-consumer descriptor ring, the core data
// structure of the AF_XDP user/kernel ABI (fill, completion, rx and tx
// rings are all instances of this shape).
//
// This is a real lock-free ring — producer and consumer may live on
// different threads — with the same power-of-two, free-running-index
// design as the kernel's xsk_queue.
//
// Memory-ordering audit (docs/CONCURRENCY.md). Two synchronizing pairs
// carry all cross-thread data:
//
//   P1  producer's release store of prod_   ->  consumer's acquire load
//       of prod_ (consume/consume_batch/size). A consumer that observes
//       prod_ >= i+1 therefore observes the write to slots_[i & mask]
//       sequenced before that store — descriptors are published safely.
//
//   P2  consumer's release store of cons_   ->  producer's acquire load
//       of cons_ (produce/produce_batch/size). A producer that observes
//       cons_ >= i+1 knows slots_[i & mask] has been read out, so
//       overwriting the slot on wrap cannot race the consumer's read.
//
// Each side loads its OWN index relaxed: it is the only writer of that
// index, so it always sees its latest value (same-thread coherence);
// acquire there would order nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

namespace ovsx::afxdp {

template <typename T> class SpscRing {
public:
    explicit SpscRing(std::uint32_t capacity_pow2) : slots_(capacity_pow2), mask_(capacity_pow2 - 1)
    {
        if (capacity_pow2 == 0 || (capacity_pow2 & mask_) != 0) {
            throw std::invalid_argument("SpscRing capacity must be a power of two");
        }
    }

    std::uint32_t capacity() const { return static_cast<std::uint32_t>(slots_.size()); }

    std::uint32_t size() const
    {
        return prod_.load(std::memory_order_acquire) - cons_.load(std::memory_order_acquire);
    }

    bool empty() const { return size() == 0; }
    bool full() const { return size() == capacity(); }

    // Producer side: returns false when the ring is full.
    bool produce(const T& item)
    {
        const std::uint32_t prod = prod_.load(std::memory_order_relaxed); // own index
        const std::uint32_t cons = cons_.load(std::memory_order_acquire); // pair P2
        if (prod - cons == capacity()) return false;
        slots_[prod & mask_] = item;
        prod_.store(prod + 1, std::memory_order_release); // pair P1: publishes the slot
        return true;
    }

    // Produces up to `n` items from `items`; returns the number accepted.
    std::uint32_t produce_batch(const T* items, std::uint32_t n)
    {
        const std::uint32_t prod = prod_.load(std::memory_order_relaxed);
        const std::uint32_t cons = cons_.load(std::memory_order_acquire);
        const std::uint32_t room = capacity() - (prod - cons);
        const std::uint32_t take = n < room ? n : room;
        for (std::uint32_t i = 0; i < take; ++i) slots_[(prod + i) & mask_] = items[i];
        prod_.store(prod + take, std::memory_order_release);
        return take;
    }

    // Consumer side: returns nullopt when empty.
    std::optional<T> consume()
    {
        const std::uint32_t cons = cons_.load(std::memory_order_relaxed); // own index
        const std::uint32_t prod = prod_.load(std::memory_order_acquire); // pair P1
        if (prod == cons) return std::nullopt;
        T item = slots_[cons & mask_];
        cons_.store(cons + 1, std::memory_order_release); // pair P2: frees the slot
        return item;
    }

    // Consumes up to `n` items into `out`; returns the number consumed.
    std::uint32_t consume_batch(T* out, std::uint32_t n)
    {
        const std::uint32_t cons = cons_.load(std::memory_order_relaxed);
        const std::uint32_t prod = prod_.load(std::memory_order_acquire);
        const std::uint32_t avail = prod - cons;
        const std::uint32_t take = n < avail ? n : avail;
        for (std::uint32_t i = 0; i < take; ++i) out[i] = slots_[(cons + i) & mask_];
        cons_.store(cons + take, std::memory_order_release);
        return take;
    }

private:
    std::vector<T> slots_; // written by producer, read by consumer; ordered by P1/P2
    std::uint32_t mask_;   // immutable after construction
    // Separate cache lines so the producer's index store does not
    // false-share with the consumer's.
    alignas(64) std::atomic<std::uint32_t> prod_{0};
    alignas(64) std::atomic<std::uint32_t> cons_{0};
};

} // namespace ovsx::afxdp
