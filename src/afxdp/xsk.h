// XSK: the AF_XDP socket itself — an rx and a tx descriptor ring over a
// umem, bound to one (device, queue) pair.
//
// The kernel side (our kern::PhysicalDevice) delivers frames by popping
// the fill ring, writing packet bytes into the chunk, and pushing an
// RxDesc; it collects transmissions by popping the tx ring and pushing
// completions. The userspace side is driven by OVS's netdev-afxdp.
#pragma once

#include <cstdint>
#include <string>

#include "afxdp/ring.h"
#include "afxdp/umem.h"
#include "net/packet.h"
#include "sim/context.h"
#include "sim/costs.h"

namespace ovsx::afxdp {

struct XdpDesc {
    FrameAddr addr = 0;
    std::uint32_t len = 0;
    std::uint32_t options = 0;
    // Stands in for the XDP rx-metadata area (hardware rx timestamps):
    // the frame bytes in umem are raw, so the accumulated packet
    // latency crosses the socket in the descriptor, like the trace id.
    std::int64_t latency_ns = 0;
};

// Copy mode (XDP_SKB / generic) pays a kernel-side copy per packet;
// zero-copy (XDP_DRV + ZC) lets the NIC DMA straight into umem. §3.2 and
// the "fallback mode" limitation in §3.5.
enum class BindMode { ZeroCopy, Copy };

class XskSocket {
public:
    XskSocket(Umem& umem, std::uint32_t ring_capacity = 2048, BindMode mode = BindMode::ZeroCopy)
        : umem_(umem), rx_(ring_capacity), tx_(ring_capacity), mode_(mode)
    {
    }

    Umem& umem() { return umem_; }
    BindMode mode() const { return mode_; }
    void set_bound(std::string dev, std::uint32_t queue)
    {
        bound_dev_ = std::move(dev);
        bound_queue_ = queue;
    }
    const std::string& bound_dev() const { return bound_dev_; }
    std::uint32_t bound_queue() const { return bound_queue_; }

    SpscRing<XdpDesc>& rx() { return rx_; }
    SpscRing<XdpDesc>& tx() { return tx_; }

    // ---- kernel-side operations ------------------------------------------

    // Delivers a received packet into the socket: pops a fill-ring frame,
    // writes the bytes, pushes an rx descriptor. Charges `softirq` for
    // ring work (and the data copy when in Copy mode). Returns false — a
    // drop — when no fill frame or rx slot is available (userspace is too
    // slow), which is exactly the lossless-rate limit the paper measures.
    bool kernel_deliver(const net::Packet& pkt, const sim::CostModel& costs,
                        sim::ExecContext& softirq);

    // Collects one packet from the tx ring (if any), pushing its frame
    // to the completion ring. Returns the reconstructed packet.
    std::optional<net::Packet> kernel_collect_tx(const sim::CostModel& costs,
                                                 sim::ExecContext& softirq);

    // ---- statistics ---------------------------------------------------------
    std::uint64_t rx_delivered = 0;
    std::uint64_t rx_dropped_no_frame = 0; // fill ring empty
    std::uint64_t rx_dropped_ring_full = 0;
    std::uint64_t tx_completed = 0;

private:
    Umem& umem_;
    SpscRing<XdpDesc> rx_;
    SpscRing<XdpDesc> tx_;
    BindMode mode_;
    std::string bound_dev_;
    std::uint32_t bound_queue_ = 0;
};

} // namespace ovsx::afxdp
