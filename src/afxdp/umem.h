// Umem: the shared packet-buffer region registered with an AF_XDP
// socket, carved into fixed-size chunks, plus its fill and completion
// rings (§3.1 and Figure 4 of the paper).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "afxdp/ring.h"
#include "san/report.h"

namespace ovsx::afxdp {

// A frame address within the umem: byte offset of the chunk start.
using FrameAddr = std::uint64_t;

class Umem {
public:
    static constexpr std::uint32_t kDefaultChunkSize = 2048;

    Umem(std::uint32_t chunk_count, std::uint32_t chunk_size = kDefaultChunkSize,
         std::uint32_t ring_capacity = 2048);

    std::uint32_t chunk_count() const { return chunk_count_; }
    std::uint32_t chunk_size() const { return chunk_size_; }

    // Raw access to a chunk's memory.
    std::span<std::uint8_t> frame(FrameAddr addr);
    std::span<const std::uint8_t> frame(FrameAddr addr) const;

    // True if addr names a valid chunk boundary.
    bool valid(FrameAddr addr) const
    {
        return addr % chunk_size_ == 0 && addr / chunk_size_ < chunk_count_;
    }

    // Fill ring: userspace -> kernel (empty frames for RX).
    SpscRing<FrameAddr>& fill() { return fill_; }
    // Completion ring: kernel -> userspace (frames whose TX finished).
    SpscRing<FrameAddr>& comp() { return comp_; }

    // san frame-tracker scope for this umem. Frames are only tracked
    // once an owner registers them (NetdevAfxdp does; raw-ring tests
    // don't), so the scope existing is free.
    std::uint64_t san_scope() const { return san_scope_; }

private:
    std::uint32_t chunk_count_;
    std::uint32_t chunk_size_;
    std::vector<std::uint8_t> buffer_;
    SpscRing<FrameAddr> fill_;
    SpscRing<FrameAddr> comp_;
    std::uint64_t san_scope_ = san::new_scope();
};

} // namespace ovsx::afxdp
