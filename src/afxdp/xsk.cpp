#include "afxdp/xsk.h"

#include <cstring>

#include "obs/coverage.h"
#include "obs/trace.h"
#include "san/frame_tracker.h"

namespace ovsx::afxdp {

bool XskSocket::kernel_deliver(const net::Packet& pkt, const sim::CostModel& costs,
                               sim::ExecContext& softirq)
{
    const auto fill = umem_.fill().consume();
    softirq.charge(costs.xsk_ring_op);
    OVSX_COVERAGE_CTX(softirq, "xsk.fill_consume");
    if (!fill) {
        ++rx_dropped_no_frame;
        if (pkt.meta().trace_id) {
            obs::trace(pkt.meta().trace_id, obs::Hop::XskRx, pkt.meta().latency_ns,
                       "no-frame");
        }
        return false;
    }
    san::frame_transition(umem_.san_scope(), *fill, san::FrameState::KernelRx, OVSX_SITE);
    auto dst = umem_.frame(*fill);
    const std::size_t len = pkt.size() < dst.size() ? pkt.size() : dst.size();
    std::memcpy(dst.data(), pkt.data(), len);
    if (mode_ == BindMode::Copy) {
        // Generic/SKB mode: the kernel copies the frame on the CPU.
        softirq.charge(costs.copy(static_cast<std::int64_t>(len)));
    }
    // Zero-copy: the NIC DMA'd straight into umem; no CPU byte cost.

    // The frame is raw bytes; the trace id rides in the descriptor's
    // options word so NetdevAfxdp::rx_burst can restore it.
    XdpDesc desc{*fill, static_cast<std::uint32_t>(len), pkt.meta().trace_id,
                 pkt.meta().latency_ns};
    softirq.charge(costs.xsk_ring_op);
    OVSX_COVERAGE_CTX(softirq, "xsk.rx_produce");
    if (!rx_.produce(desc)) {
        ++rx_dropped_ring_full;
        if (pkt.meta().trace_id) {
            obs::trace(pkt.meta().trace_id, obs::Hop::XskRx, pkt.meta().latency_ns,
                       "ring-full");
        }
        // Frame is lost to the fill ring until userspace replenishes;
        // give it back immediately to keep the model conservative.
        san::frame_transition(umem_.san_scope(), *fill, san::FrameState::FillRing,
                              OVSX_SITE);
        umem_.fill().produce(*fill);
        return false;
    }
    san::frame_transition(umem_.san_scope(), *fill, san::FrameState::RxRing, OVSX_SITE);
    ++rx_delivered;
    if (pkt.meta().trace_id) {
        obs::trace(pkt.meta().trace_id, obs::Hop::XskRx, pkt.meta().latency_ns,
                   "delivered", *fill);
    }
    return true;
}

std::optional<net::Packet> XskSocket::kernel_collect_tx(const sim::CostModel& costs,
                                                        sim::ExecContext& softirq)
{
    const auto desc = tx_.consume();
    softirq.charge(costs.xsk_ring_op);
    if (!desc) return std::nullopt;
    auto src = umem_.frame(desc->addr);
    net::Packet pkt = net::Packet::from_bytes(src.subspan(0, desc->len));
    pkt.meta().trace_id = desc->options;
    pkt.meta().latency_ns = desc->latency_ns;
    if (mode_ == BindMode::Copy) {
        softirq.charge(costs.copy(desc->len));
    }
    softirq.charge(costs.xsk_ring_op);
    san::frame_transition(umem_.san_scope(), desc->addr, san::FrameState::CompRing,
                          OVSX_SITE);
    umem_.comp().produce(desc->addr);
    ++tx_completed;
    return pkt;
}

} // namespace ovsx::afxdp
