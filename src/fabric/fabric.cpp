#include "fabric/fabric.h"

#include <map>
#include <set>
#include <stdexcept>

#include "kern/kernel.h"
#include "kern/nic.h"
#include "kern/ovs_kmod.h"
#include "kern/stack.h"
#include "net/builder.h"
#include "net/flow.h"
#include "net/int_hdr.h"
#include "net/packet.h"
#include "net/tunnel.h"
#include "nsx/nsx.h"
#include "obs/coverage.h"
#include "obs/int_export.h"
#include "ovs/dpif_ebpf.h"
#include "ovs/dpif_kernel.h"
#include "ovs/dpif_netdev.h"
#include "ovs/netdev_afxdp.h"
#include "ovs/ofproto.h"
#include "ovs/vswitch.h"
#include "sim/context.h"

namespace ovsx::fabric {

namespace {

constexpr sim::Nanos kTickNs = 1'000'000; // virtual time per injected frame

std::string ip_str(std::uint32_t ip)
{
    return std::to_string((ip >> 24) & 0xff) + "." + std::to_string((ip >> 16) & 0xff) + "." +
           std::to_string((ip >> 8) & 0xff) + "." + std::to_string(ip & 0xff);
}

ovs::AfxdpOptions afxdp_opts()
{
    ovs::AfxdpOptions opts = ovs::AfxdpOptions::all();
    opts.umem_frames = 512; // many switches per fabric; keep umems small
    return opts;
}

} // namespace

const char* to_string(HostProvider p)
{
    switch (p) {
    case HostProvider::Netdev: return "netdev";
    case HostProvider::Kernel: return "kernel";
    case HostProvider::Ebpf: return "ebpf";
    }
    return "?";
}

std::uint32_t Fabric::vtep_ip(std::size_t host)
{
    return net::ipv4(10, 0, 0, static_cast<std::uint8_t>(1 + host));
}

std::uint32_t Fabric::vm_ip(std::size_t host)
{
    return net::ipv4(192, 168, 1, static_cast<std::uint8_t>(1 + host));
}

net::MacAddr Fabric::vm_mac(std::size_t host)
{
    return net::MacAddr::from_id(0x10 + static_cast<std::uint64_t>(host));
}

net::MacAddr Fabric::uplink_mac(std::size_t host)
{
    return net::MacAddr::from_id(0xA0 + static_cast<std::uint64_t>(host));
}

// ---------------------------------------------------------------------------
// Impl
// ---------------------------------------------------------------------------

struct Fabric::Impl {
    // One directional-counter pair per physical link.
    struct LinkState {
        std::string a;
        std::string b;
        std::uint64_t ab = 0;
        std::uint64_t ba = 0;
        sim::Nanos extra_ab = 0;
        sim::Nanos extra_ba = 0;
    };

    struct Host {
        std::size_t index = 0;
        HostProvider provider = HostProvider::Netdev;
        std::unique_ptr<kern::Kernel> kernel;
        kern::PhysicalDevice* vm_dev = nullptr;
        kern::PhysicalDevice* uplink = nullptr;
        std::unique_ptr<ovs::VSwitch> vswitch;  // netdev + kernel providers
        ovs::DpifNetdev* netdev = nullptr;      // borrowed from vswitch
        kern::OvsKernelDatapath* kdp = nullptr; // borrowed from kernel
        std::unique_ptr<ovs::DpifEbpf> ebpf;
        std::unique_ptr<obs::Appctl> ebpf_appctl;
        std::unique_ptr<nsx::NsxAgent> nsx;
        int pmd = -1;
        std::uint32_t vm_port = 0;
        std::uint32_t uplink_port = 0;
        std::uint32_t tunnel_port = 0;
    };

    // A transit (leaf or spine) switch: always the netdev provider, an
    // ofproto ruleset routing on the outer destination VTEP.
    struct Transit {
        std::string name;
        std::uint32_t switch_id = 0;
        std::uint8_t tier = 0;
        std::unique_ptr<kern::Kernel> kernel;
        std::unique_ptr<ovs::VSwitch> vswitch;
        ovs::DpifNetdev* dpif = nullptr;
        int pmd = -1;
        std::map<std::uint32_t, std::uint32_t> routes; // dst VTEP -> port
    };

    FabricConfig cfg;
    std::vector<std::unique_ptr<Host>> hosts;
    std::vector<std::unique_ptr<Transit>> leaves;
    std::vector<std::unique_ptr<Transit>> spines;
    std::vector<std::unique_ptr<LinkState>> links;
    std::vector<DeliveredFrame> delivered;
    sim::ExecContext shim_ctx{"vtep-shim", sim::CpuClass::User};
    std::uint32_t next_trace = 1;
    sim::Nanos now = 0;

    explicit Impl(FabricConfig c) : cfg(std::move(c)) { build(); }

    HostProvider provider_of(std::size_t i) const
    {
        return i < cfg.providers.size() ? cfg.providers[i] : HostProvider::Netdev;
    }

    std::size_t leaf_of(std::size_t host) const { return host % cfg.leaves; }
    std::size_t spine_for(std::size_t dst_host) const { return dst_host % cfg.spines; }

    // ---- construction ----------------------------------------------

    void build()
    {
        if (cfg.hosts < 2) throw std::invalid_argument("fabric needs >= 2 hosts");
        if (cfg.leaves == 0 || cfg.spines == 0) {
            throw std::invalid_argument("fabric needs >= 1 leaf and spine");
        }
        for (std::size_t i = 0; i < cfg.hosts; ++i) build_host(i);
        for (std::size_t l = 0; l < cfg.leaves; ++l) {
            leaves.push_back(build_transit("leaf" + std::to_string(l), leaf_switch_id(l),
                                           net::kIntTierLeaf));
        }
        for (std::size_t s = 0; s < cfg.spines; ++s) {
            spines.push_back(build_transit("spine" + std::to_string(s), spine_switch_id(s),
                                           net::kIntTierSpine));
        }
        wire_topology();
        install_transit_rules();
        for (std::size_t i = 0; i < cfg.hosts; ++i) {
            obs::int_name_host(vtep_ip(i), "h" + std::to_string(i));
        }
        if (cfg.degraded) {
            set_degradation(cfg.degraded->from, cfg.degraded->to, cfg.degraded->extra_ns);
        }
    }

    void build_host(std::size_t i)
    {
        auto host = std::make_unique<Host>();
        host->index = i;
        host->provider = provider_of(i);
        host->kernel = std::make_unique<kern::Kernel>("h" + std::to_string(i));
        host->vm_dev = &host->kernel->add_device<kern::PhysicalDevice>("vm0", vm_mac(i));
        host->uplink = &host->kernel->add_device<kern::PhysicalDevice>("eth0", uplink_mac(i));

        // Underlay addressing: the VTEP lives on the uplink; every
        // remote VTEP resolves to the remote host's uplink MAC (transit
        // switches route on IP and never rewrite Ethernet).
        auto& stack = host->kernel->stack();
        stack.add_address(host->uplink->ifindex(), vtep_ip(i), 24);
        for (std::size_t j = 0; j < cfg.hosts; ++j) {
            if (j == i) continue;
            stack.add_neighbor(vtep_ip(j), uplink_mac(j), host->uplink->ifindex());
        }

        switch (host->provider) {
        case HostProvider::Netdev: build_netdev_host(*host); break;
        case HostProvider::Kernel: build_kernel_host(*host); break;
        case HostProvider::Ebpf: build_ebpf_host(*host); break;
        }

        // Frames the host hands to its VM are fabric deliveries.
        Host* raw = host.get();
        host->vm_dev->connect_wire([this, raw](net::Packet&& p) {
            delivered.push_back({raw->index,
                                 std::vector<std::uint8_t>(p.data(), p.data() + p.size()),
                                 p.meta().trace_id, p.meta().latency_ns});
        });
        hosts.push_back(std::move(host));
    }

    void build_netdev_host(Host& host)
    {
        auto dpif = std::make_unique<ovs::DpifNetdev>(*host.kernel);
        host.netdev = dpif.get();
        host.vm_port = dpif->add_port(std::make_unique<ovs::NetdevAfxdp>(*host.vm_dev, afxdp_opts()));
        host.uplink_port =
            dpif->add_port(std::make_unique<ovs::NetdevAfxdp>(*host.uplink, afxdp_opts()));
        host.tunnel_port =
            dpif->add_tunnel_port("geneve0", net::TunnelType::Geneve, vtep_ip(host.index));
        ovs::DpifNetdev::IntConfig ic;
        ic.enabled = cfg.int_enabled;
        ic.switch_id = host_switch_id(host.index);
        ic.tier = net::kIntTierHost;
        ic.max_hops = cfg.int_max_hops;
        ic.attach_on_encap = true;
        dpif->set_int(ic);
        host.pmd = dpif->add_pmd("h" + std::to_string(host.index) + "-pmd");
        dpif->pmd_assign(host.pmd, host.vm_port, 0);
        dpif->pmd_assign(host.pmd, host.uplink_port, 0);
        host.vswitch = std::make_unique<ovs::VSwitch>(std::move(dpif));
        install_host_ruleset(host);
    }

    void build_kernel_host(Host& host)
    {
        auto& dp = host.kernel->ovs_datapath();
        host.kdp = &dp;
        host.vm_port = dp.add_port(*host.vm_dev);
        // The uplink is deliberately NOT a datapath port: outer Geneve
        // frames land in the IP stack, whose UDP 6081 binding feeds the
        // tunnel vport (the classic kernel tunnel path).
        host.tunnel_port =
            dp.add_tunnel_port("geneve0", net::TunnelType::Geneve, vtep_ip(host.index));
        kern::OvsKernelDatapath::IntConfig ic;
        ic.enabled = cfg.int_enabled;
        ic.switch_id = host_switch_id(host.index);
        ic.tier = net::kIntTierHost;
        ic.max_hops = cfg.int_max_hops;
        ic.attach_on_encap = true;
        dp.set_int(ic);
        host.vswitch = std::make_unique<ovs::VSwitch>(std::make_unique<ovs::DpifKernel>(dp));
        install_host_ruleset(host);
    }

    void build_ebpf_host(Host& host)
    {
        // The eBPF datapath only ever sees inner frames: the VTEP shim
        // at the uplink edge (wire glue) terminates the tunnel, because
        // this datapath cannot rewrite packets in flight. Exact-match
        // flows forward vm <-> uplink.
        host.ebpf = std::make_unique<ovs::DpifEbpf>(*host.kernel);
        host.vm_port = host.ebpf->add_port(*host.vm_dev);
        host.uplink_port = host.ebpf->add_port(*host.uplink);
        host.ebpf_appctl = std::make_unique<obs::Appctl>();
        host.ebpf->register_appctl(*host.ebpf_appctl);
        Host* raw = &host;
        host.ebpf->set_upcall_handler([raw](std::uint32_t in_port, net::Packet&& pkt,
                                            const net::FlowKey& key, sim::ExecContext& ctx) {
            kern::OdpActions actions;
            actions.push_back(kern::OdpAction::output(
                in_port == raw->vm_port ? raw->uplink_port : raw->vm_port));
            try {
                raw->ebpf->flow_put(key, ovs::DpifEbpf::required_mask(), actions);
            } catch (const std::invalid_argument&) {
                // Key dimensions the eBPF map cannot express: stay on
                // the upcall slow path for this flow.
            }
            raw->ebpf->execute(std::move(pkt), actions, ctx);
        });
    }

    // The minimal hand-rolled host pipeline: forward on the inner
    // destination MAC — local VM or set_tunnel toward its host.
    void install_host_ruleset(Host& host)
    {
        if (cfg.use_nsx) {
            nsx::NsxConfig ncfg;
            ncfg.local_vtep_ip = vtep_ip(host.index);
            ncfg.tunnel_of_port = host.tunnel_port;
            ncfg.target_rules = cfg.nsx_target_rules;
            for (std::size_t j = 0; j < cfg.hosts; ++j) {
                nsx::VmSpec vm;
                vm.name = "vm" + std::to_string(j);
                vm.mac = vm_mac(j);
                vm.ip = vm_ip(j);
                vm.vni = kVni;
                if (j == host.index) {
                    vm.of_port = host.vm_port;
                } else {
                    vm.remote_vtep = vtep_ip(j);
                    ncfg.remote_vteps.push_back(vtep_ip(j));
                }
                ncfg.vms.push_back(vm);
            }
            host.nsx = std::make_unique<nsx::NsxAgent>(*host.vswitch, ncfg);
            host.nsx->deploy();
            return;
        }
        auto& of = host.vswitch->ofproto();
        for (std::size_t j = 0; j < cfg.hosts; ++j) {
            ovs::Match m;
            m.key.dl_dst = vm_mac(j);
            m.mask.bits.dl_dst = net::MacAddr::broadcast();
            if (j == host.index) {
                of.add_rule({.table = 0, .priority = 100, .match = m,
                             .actions = {ovs::OfAction::output(host.vm_port)}});
            } else {
                net::TunnelKey tkey;
                tkey.tun_id = kVni;
                tkey.ip_src = vtep_ip(host.index);
                tkey.ip_dst = vtep_ip(j);
                of.add_rule({.table = 0, .priority = 100, .match = m,
                             .actions = {ovs::OfAction::set_tunnel(tkey),
                                         ovs::OfAction::output(host.tunnel_port)}});
            }
        }
        of.add_rule({.table = 0, .priority = 0, .match = ovs::Match{},
                     .actions = {ovs::OfAction::drop()}});
    }

    std::unique_ptr<Transit> build_transit(const std::string& name, std::uint32_t switch_id,
                                           std::uint8_t tier)
    {
        auto t = std::make_unique<Transit>();
        t->name = name;
        t->switch_id = switch_id;
        t->tier = tier;
        t->kernel = std::make_unique<kern::Kernel>(name);
        auto dpif = std::make_unique<ovs::DpifNetdev>(*t->kernel);
        t->dpif = dpif.get();
        ovs::DpifNetdev::IntConfig ic;
        ic.enabled = cfg.int_enabled;
        ic.switch_id = switch_id;
        ic.tier = tier;
        ic.max_hops = cfg.int_max_hops;
        ic.attach_on_encap = false; // transit stamps, never originates
        dpif->set_int(ic);
        t->pmd = dpif->add_pmd(name + "-pmd");
        t->vswitch = std::make_unique<ovs::VSwitch>(std::move(dpif));
        return t;
    }

    std::uint32_t add_transit_port(Transit& t, const std::string& devname, std::uint64_t mac_id,
                                   kern::PhysicalDevice** dev_out)
    {
        auto& dev =
            t.kernel->add_device<kern::PhysicalDevice>(devname, net::MacAddr::from_id(mac_id));
        const std::uint32_t port =
            t.dpif->add_port(std::make_unique<ovs::NetdevAfxdp>(dev, afxdp_opts()));
        t.dpif->pmd_assign(t.pmd, port, 0);
        *dev_out = &dev;
        return port;
    }

    LinkState* add_link(std::string a, std::string b)
    {
        links.push_back(std::make_unique<LinkState>());
        links.back()->a = std::move(a);
        links.back()->b = std::move(b);
        return links.back().get();
    }

    void wire_topology()
    {
        std::uint64_t mac_id = 0xC000;
        // host <-> leaf
        for (std::size_t i = 0; i < cfg.hosts; ++i) {
            Host* host = hosts[i].get();
            Transit* leaf = leaves[leaf_of(i)].get();
            kern::PhysicalDevice* leaf_dev = nullptr;
            const std::uint32_t leaf_port =
                add_transit_port(*leaf, "h" + std::to_string(i), mac_id++, &leaf_dev);
            leaf->routes[vtep_ip(i)] = leaf_port;
            LinkState* link = add_link("h" + std::to_string(i), leaf->name);

            host->uplink->connect_wire([this, host, link, leaf_dev](net::Packet&& p) {
                if (host->provider == HostProvider::Ebpf) shim_egress(*host, p);
                ++link->ab;
                p.meta().latency_ns += link->extra_ab;
                leaf_dev->rx_from_wire(std::move(p));
            });
            leaf_dev->connect_wire([this, host, link](net::Packet&& p) {
                ++link->ba;
                p.meta().latency_ns += link->extra_ba;
                if (host->provider == HostProvider::Ebpf && !shim_ingress(*host, p)) return;
                host->uplink->rx_from_wire(std::move(p));
            });
        }
        // leaf <-> spine (full mesh)
        for (std::size_t l = 0; l < cfg.leaves; ++l) {
            for (std::size_t s = 0; s < cfg.spines; ++s) {
                Transit* leaf = leaves[l].get();
                Transit* spine = spines[s].get();
                kern::PhysicalDevice* leaf_dev = nullptr;
                kern::PhysicalDevice* spine_dev = nullptr;
                const std::uint32_t leaf_port =
                    add_transit_port(*leaf, "s" + std::to_string(s), mac_id++, &leaf_dev);
                const std::uint32_t spine_port =
                    add_transit_port(*spine, "l" + std::to_string(l), mac_id++, &spine_dev);
                // Leaf routes for hosts on other leaves go via the
                // spine the destination hashes to; spine routes always
                // descend to the destination's leaf.
                for (std::size_t j = 0; j < cfg.hosts; ++j) {
                    if (leaf_of(j) != l && spine_for(j) == s) {
                        leaf->routes[vtep_ip(j)] = leaf_port;
                    }
                    if (leaf_of(j) == l) spine->routes[vtep_ip(j)] = spine_port;
                }
                LinkState* link = add_link(leaf->name, spine->name);
                leaf_dev->connect_wire([link, spine_dev](net::Packet&& p) {
                    ++link->ab;
                    p.meta().latency_ns += link->extra_ab;
                    spine_dev->rx_from_wire(std::move(p));
                });
                spine_dev->connect_wire([link, leaf_dev](net::Packet&& p) {
                    ++link->ba;
                    p.meta().latency_ns += link->extra_ba;
                    leaf_dev->rx_from_wire(std::move(p));
                });
            }
        }
    }

    void install_transit_rules()
    {
        auto install = [](Transit& t) {
            auto& of = t.vswitch->ofproto();
            for (const auto& [dst_ip, port] : t.routes) {
                ovs::Match m;
                m.key.dl_type = 0x0800;
                m.mask.bits.dl_type = 0xffff;
                m.key.nw_dst = dst_ip;
                m.mask.bits.nw_dst = 0xffffffff;
                of.add_rule({.table = 0, .priority = 100, .match = m,
                             .actions = {ovs::OfAction::output(port)}});
            }
            of.add_rule({.table = 0, .priority = 0, .match = ovs::Match{},
                         .actions = {ovs::OfAction::drop()}});
        };
        for (auto& l : leaves) install(*l);
        for (auto& s : spines) install(*s);
    }

    // ---- eBPF VTEP shim --------------------------------------------

    void shim_egress(Host& host, net::Packet& pkt)
    {
        const net::FlowKey key = net::parse_flow(pkt);
        const std::uint32_t last = key.nw_dst & 0xff;
        if (last == 0 || last > cfg.hosts) return; // not fabric VM traffic
        const std::size_t dst = last - 1;
        if (dst == host.index) return;
        net::TunnelKey tkey;
        tkey.tun_id = kVni;
        tkey.ip_src = vtep_ip(host.index);
        tkey.ip_dst = vtep_ip(dst);
        net::EncapParams ep;
        ep.outer_src_mac = uplink_mac(host.index);
        ep.outer_dst_mac = uplink_mac(dst);
        net::encapsulate(pkt, net::TunnelType::Geneve, tkey, ep);
        if (!cfg.int_enabled) return;
        net::int_attach(pkt, cfg.int_max_hops);
        net::IntHop hop;
        hop.switch_id = host_switch_id(host.index);
        hop.ingress_tier = net::kIntTierHost;
        hop.egress_tier = net::kIntTierHost;
        hop.occupancy = 1;
        hop.latency_ticks =
            static_cast<std::uint32_t>(pkt.meta().latency_ns / net::kIntTickNs);
        if (net::int_stamp(pkt, hop)) OVSX_COVERAGE_CTX(shim_ctx, "int.stamped");
    }

    bool shim_ingress(Host& host, net::Packet& pkt)
    {
        auto res = net::decapsulate(pkt, net::TunnelType::Geneve);
        if (!res) return false; // non-tunnel noise never reaches the datapath
        if (cfg.int_enabled && !res->geneve_opts.empty()) {
            bool truncated = false;
            const auto hops = net::int_parse_options(
                std::span<const std::uint8_t>(res->geneve_opts), &truncated);
            if (!hops.empty() || truncated) {
                std::vector<obs::IntHopSample> samples;
                samples.reserve(hops.size());
                for (const auto& h : hops) {
                    samples.push_back({h.switch_id, h.ingress_tier, h.egress_tier, h.occupancy,
                                       static_cast<std::int64_t>(h.latency_ticks) *
                                           net::kIntTickNs});
                }
                obs::int_export(res->key.ip_src, res->key.ip_dst, samples, truncated);
            }
        }
        return true;
    }

    // ---- traffic ----------------------------------------------------

    void tick()
    {
        now += kTickNs;
        for (auto& h : hosts) {
            if (h->netdev) h->netdev->set_now(now);
            if (h->kdp) h->kdp->set_now(now);
            if (h->ebpf) h->ebpf->set_now(now);
        }
        for (auto& l : leaves) l->dpif->set_now(now);
        for (auto& s : spines) s->dpif->set_now(now);
    }

    void drain()
    {
        for (;;) {
            std::uint32_t moved = 0;
            for (auto& h : hosts) {
                if (h->netdev) moved += h->netdev->pmd_poll_once(h->pmd);
            }
            for (auto& l : leaves) moved += l->dpif->pmd_poll_once(l->pmd);
            for (auto& s : spines) moved += s->dpif->pmd_poll_once(s->pmd);
            if (moved == 0) break;
        }
    }

    void send(std::size_t src, std::size_t dst, std::size_t count, std::size_t payload_len)
    {
        if (src >= cfg.hosts || dst >= cfg.hosts || src == dst) {
            throw std::invalid_argument("bad fabric src/dst host");
        }
        for (std::size_t i = 0; i < count; ++i) {
            tick();
            net::UdpSpec spec;
            spec.src_mac = vm_mac(src);
            spec.dst_mac = vm_mac(dst);
            spec.src_ip = vm_ip(src);
            spec.dst_ip = vm_ip(dst);
            spec.src_port = static_cast<std::uint16_t>(10000 + src);
            spec.dst_port = static_cast<std::uint16_t>(20000 + dst);
            spec.payload_len = payload_len;
            net::Packet pkt = net::build_udp(spec);
            pkt.meta().trace_id = next_trace++;
            hosts[src]->vm_dev->rx_from_wire(std::move(pkt));
            if (cfg.batch_size && (i + 1) % cfg.batch_size == 0) drain();
        }
        drain();
    }

    // ---- links / rendering -----------------------------------------

    void set_degradation(const std::string& from, const std::string& to, sim::Nanos extra)
    {
        for (auto& l : links) {
            if (l->a == from && l->b == to) {
                l->extra_ab = extra;
                return;
            }
            if (l->b == from && l->a == to) {
                l->extra_ba = extra;
                return;
            }
        }
        throw std::out_of_range("unknown fabric link " + from + "->" + to);
    }

    obs::Value render() const
    {
        auto root = obs::Value::object();
        auto hosts_v = obs::Value::array();
        for (const auto& h : hosts) {
            auto o = obs::Value::object();
            o.set("name", "h" + std::to_string(h->index));
            o.set("provider", to_string(h->provider));
            o.set("switch_id", static_cast<unsigned long long>(host_switch_id(h->index)));
            o.set("vtep", ip_str(vtep_ip(h->index)));
            o.set("vm_ip", ip_str(vm_ip(h->index)));
            o.set("leaf", "leaf" + std::to_string(leaf_of(h->index)));
            hosts_v.push(std::move(o));
        }
        root.set("hosts", std::move(hosts_v));
        auto switches = obs::Value::array();
        auto add_switch = [&switches](const Transit& t, const char* tier) {
            auto o = obs::Value::object();
            o.set("name", t.name);
            o.set("tier", tier);
            o.set("switch_id", static_cast<unsigned long long>(t.switch_id));
            switches.push(std::move(o));
        };
        for (const auto& l : leaves) add_switch(*l, "leaf");
        for (const auto& s : spines) add_switch(*s, "spine");
        root.set("switches", std::move(switches));
        auto links_v = obs::Value::array();
        for (const auto& l : links) {
            auto o = obs::Value::object();
            o.set("a", l->a);
            o.set("b", l->b);
            o.set("a_to_b", static_cast<unsigned long long>(l->ab));
            o.set("b_to_a", static_cast<unsigned long long>(l->ba));
            o.set("extra_ns_ab", static_cast<long long>(l->extra_ab));
            o.set("extra_ns_ba", static_cast<long long>(l->extra_ba));
            links_v.push(std::move(o));
        }
        root.set("links", std::move(links_v));
        return root;
    }
};

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

Fabric::Fabric(FabricConfig cfg) : impl_(std::make_unique<Impl>(std::move(cfg)))
{
    Impl* impl = impl_.get();
    obs::fabric_show_set_provider([impl] { return impl->render(); });
}

Fabric::~Fabric()
{
    obs::fabric_show_set_provider({});
}

const FabricConfig& Fabric::config() const { return impl_->cfg; }
std::size_t Fabric::host_count() const { return impl_->cfg.hosts; }
HostProvider Fabric::provider(std::size_t host) const { return impl_->provider_of(host); }

std::string Fabric::switch_name(std::uint32_t switch_id) const
{
    if (switch_id >= 201) return "spine" + std::to_string(switch_id - 201);
    if (switch_id >= 101) return "leaf" + std::to_string(switch_id - 101);
    if (switch_id >= 1) return "h" + std::to_string(switch_id - 1);
    return "?";
}

std::vector<std::uint32_t> Fabric::expected_chain(std::size_t src, std::size_t dst) const
{
    std::vector<std::uint32_t> chain;
    chain.push_back(host_switch_id(src));
    const std::size_t src_leaf = impl_->leaf_of(src);
    const std::size_t dst_leaf = impl_->leaf_of(dst);
    chain.push_back(leaf_switch_id(src_leaf));
    if (src_leaf != dst_leaf) {
        chain.push_back(spine_switch_id(impl_->spine_for(dst)));
        chain.push_back(leaf_switch_id(dst_leaf));
    }
    return chain;
}

void Fabric::send(std::size_t src, std::size_t dst, std::size_t count, std::size_t payload_len)
{
    impl_->send(src, dst, count, payload_len);
}

void Fabric::drain() { impl_->drain(); }

std::vector<DeliveredFrame>& Fabric::delivered() { return impl_->delivered; }
void Fabric::clear_delivered() { impl_->delivered.clear(); }

obs::Appctl& Fabric::appctl(std::size_t host)
{
    auto& h = *impl_->hosts.at(host);
    return h.vswitch ? h.vswitch->appctl() : *h.ebpf_appctl;
}

std::vector<LinkLoad> Fabric::link_loads() const
{
    std::vector<LinkLoad> out;
    out.reserve(impl_->links.size());
    for (const auto& l : impl_->links) {
        out.push_back({l->a, l->b, l->ab, l->ba, l->extra_ab, l->extra_ba});
    }
    return out;
}

void Fabric::set_link_degradation(const std::string& from, const std::string& to,
                                  sim::Nanos extra_ns)
{
    impl_->set_degradation(from, to, extra_ns);
}

obs::Value Fabric::fabric_show() const { return impl_->render(); }

// ---------------------------------------------------------------------------
// Cross-provider fabric differential
// ---------------------------------------------------------------------------

std::string FabricDiffReport::summary() const
{
    std::string s = "fabric differential: " + std::to_string(frames_sent) + " frames, " +
                    std::to_string(divergences.size()) + " divergences";
    for (const auto& d : divergences) s += "\n  " + d;
    return s;
}

FabricDiffReport run_fabric_differential(std::size_t hosts, std::size_t frames_per_pair,
                                         std::size_t batch_size,
                                         std::uint32_t inject_drop_trace)
{
    FabricDiffReport report;
    const HostProvider kinds[] = {HostProvider::Netdev, HostProvider::Kernel,
                                  HostProvider::Ebpf};

    // The identical schedule each fabric runs: every ordered host pair,
    // frames_per_pair frames. Trace ids are assigned in schedule order,
    // so trace t maps to pair (t-1)/frames_per_pair on every provider.
    std::vector<std::pair<std::size_t, std::size_t>> schedule;
    for (std::size_t s = 0; s < hosts; ++s) {
        for (std::size_t d = 0; d < hosts; ++d) {
            if (s != d) schedule.emplace_back(s, d);
        }
    }
    report.frames_sent = schedule.size() * frames_per_pair;

    struct Run {
        HostProvider kind;
        std::vector<DeliveredFrame> delivered;
        std::vector<std::string> journeys; // per pair, rendered switch chain
    };
    std::vector<Run> runs;
    for (const HostProvider kind : kinds) {
        FabricConfig cfg;
        cfg.hosts = hosts;
        cfg.batch_size = batch_size;
        cfg.providers.assign(hosts, kind);
        Fabric fabric(cfg);
        Run run;
        run.kind = kind;
        for (const auto& [s, d] : schedule) {
            fabric.send(s, d, frames_per_pair);
            std::string journey = "h" + std::to_string(s) + "->h" + std::to_string(d) + " via";
            for (const std::uint32_t id : fabric.expected_chain(s, d)) {
                journey += " " + fabric.switch_name(id);
            }
            run.journeys.push_back(journey);
        }
        run.delivered = std::move(fabric.delivered());
        if (inject_drop_trace && kind == HostProvider::Netdev) {
            std::erase_if(run.delivered, [&](const DeliveredFrame& f) {
                return f.trace_id == inject_drop_trace;
            });
        }
        runs.push_back(std::move(run));
    }

    std::vector<std::map<std::uint32_t, const DeliveredFrame*>> by_trace(runs.size());
    std::set<std::uint32_t> all_traces;
    for (std::size_t r = 0; r < runs.size(); ++r) {
        for (const auto& d : runs[r].delivered) {
            by_trace[r][d.trace_id] = &d;
            all_traces.insert(d.trace_id);
        }
    }
    for (const std::uint32_t trace : all_traces) {
        const std::size_t pair = (trace - 1) / frames_per_pair;
        const DeliveredFrame* ref = nullptr;
        std::string detail;
        for (std::size_t r = 0; r < runs.size(); ++r) {
            auto it = by_trace[r].find(trace);
            const std::string who = to_string(runs[r].kind);
            if (it == by_trace[r].end()) {
                detail += " " + who + "=missing";
                continue;
            }
            if (!ref) {
                ref = it->second;
                continue;
            }
            if (it->second->dst_host != ref->dst_host) {
                detail += " " + who + "=wrong-host(h" + std::to_string(it->second->dst_host) +
                          ")";
            } else if (it->second->bytes != ref->bytes) {
                detail += " " + who + "=bytes-differ(" +
                          std::to_string(it->second->bytes.size()) + "B vs " +
                          std::to_string(ref->bytes.size()) + "B)";
            }
        }
        if (!detail.empty() && pair < runs[0].journeys.size()) {
            report.divergences.push_back("trace " + std::to_string(trace) + " (" +
                                         runs[0].journeys[pair] + "):" + detail);
        }
    }
    // A provider that delivered fewer frames overall diverged even if
    // the missing traces never appeared anywhere.
    for (std::size_t r = 1; r < runs.size(); ++r) {
        if (runs[r].delivered.size() != runs[0].delivered.size()) {
            report.divergences.push_back(
                std::string(to_string(runs[r].kind)) + " delivered " +
                std::to_string(runs[r].delivered.size()) + " frames vs " +
                std::to_string(runs[0].delivered.size()) + " on netdev");
        }
    }
    return report;
}

} // namespace ovsx::fabric
