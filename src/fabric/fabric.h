// Multi-host leaf–spine fabric with in-band network telemetry (INT).
//
// Composes N simulated hosts — each a full testbed: a dpif provider
// (netdev / kernel / eBPF), conntrack, and the obs surface — into a
// two-tier Clos: every host uplinks to leaf (host % leaves), every
// leaf connects to every spine. Inter-host VM traffic rides the
// existing Geneve tunnel path; transit switches route on the outer
// destination VTEP address only (macs pass through untouched).
//
// Telemetry: the source host attaches the Geneve INT option at encap
// and stamps the first hop record; every transit switch stamps one
// more (switch id, tier, batch occupancy, cumulative latency ticks);
// the destination host pops the option at decap and exports it into
// obs (int.* counters, per-path latency histograms, `int/paths`).
// The eBPF datapath cannot rewrite packets in flight, so eBPF hosts
// terminate the tunnel in a VTEP shim at the uplink edge: the shim
// attaches/stamps on egress and pops/exports on ingress, while the
// datapath itself only ever forwards inner frames (and, were an INT
// frame to transit it, would forward the option byte-intact).
//
// Links are instrumented: per-direction frame counters feed the
// `fabric/show` appctl command, and a link can be degraded by an
// extra per-traversal latency — the basis for bench_fabric_int, which
// localizes the slow link purely from exported INT data.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/addr.h"
#include "obs/appctl.h"
#include "obs/value.h"
#include "sim/time.h"

namespace ovsx::fabric {

enum class HostProvider { Netdev = 0, Kernel = 1, Ebpf = 2 };

const char* to_string(HostProvider p);

// Extra one-way latency injected on the wire from `from` to `to`
// (switch names as rendered by fabric/show: "h0", "leaf1", "spine0").
struct DegradedLink {
    std::string from;
    std::string to;
    sim::Nanos extra_ns = 0;
};

struct FabricConfig {
    std::size_t hosts = 3;
    std::size_t leaves = 2;
    std::size_t spines = 2;
    // Per-host provider; hosts beyond the vector's size run Netdev.
    std::vector<HostProvider> providers;
    bool int_enabled = true;
    std::uint8_t int_max_hops = 8;
    // Frames enqueued before the fabric drains once (burst size seen
    // by the PMDs; 1 degenerates to per-packet forwarding).
    std::size_t batch_size = 8;
    std::optional<DegradedLink> degraded;
    // Deploy the nsx agent's production-shaped ruleset (classification
    // → demux → DFW/conntrack → egress) on netdev/kernel hosts instead
    // of the minimal hand-rolled MAC-forwarding tables. eBPF hosts
    // always run the exact-match ruleset their datapath can express.
    bool use_nsx = false;
    std::size_t nsx_target_rules = 0; // extra ACL bulk beyond the base tables
};

// A frame delivered to a destination VM device.
struct DeliveredFrame {
    std::size_t dst_host = 0;
    std::vector<std::uint8_t> bytes;
    std::uint32_t trace_id = 0;
    sim::Nanos latency_ns = 0;
};

// Per-link load snapshot (also rendered by fabric/show).
struct LinkLoad {
    std::string a;
    std::string b;
    std::uint64_t a_to_b = 0;
    std::uint64_t b_to_a = 0;
    sim::Nanos extra_ab = 0;
    sim::Nanos extra_ba = 0;
};

class Fabric {
public:
    explicit Fabric(FabricConfig cfg);
    ~Fabric();
    Fabric(const Fabric&) = delete;
    Fabric& operator=(const Fabric&) = delete;

    const FabricConfig& config() const;
    std::size_t host_count() const;
    HostProvider provider(std::size_t host) const;

    // ---- addressing plan (static, deterministic) --------------------
    static constexpr std::uint32_t kVni = 100;
    static std::uint32_t vtep_ip(std::size_t host);
    static std::uint32_t vm_ip(std::size_t host);
    static net::MacAddr vm_mac(std::size_t host);
    static net::MacAddr uplink_mac(std::size_t host);
    static std::uint32_t host_switch_id(std::size_t host) { return 1 + static_cast<std::uint32_t>(host); }
    static std::uint32_t leaf_switch_id(std::size_t leaf) { return 101 + static_cast<std::uint32_t>(leaf); }
    static std::uint32_t spine_switch_id(std::size_t spine) { return 201 + static_cast<std::uint32_t>(spine); }
    std::string switch_name(std::uint32_t switch_id) const;

    // The switch-id chain an INT option stamped on the src→dst path
    // carries when it is exported at the destination (source host hop
    // first; the destination host pops without stamping).
    std::vector<std::uint32_t> expected_chain(std::size_t src, std::size_t dst) const;

    // ---- traffic ----------------------------------------------------
    // Sends `count` UDP frames from src's VM to dst's VM, draining the
    // fabric every config().batch_size injections (and once at the
    // end). Each frame carries a fresh trace id.
    void send(std::size_t src, std::size_t dst, std::size_t count,
              std::size_t payload_len = 64);
    // Polls every PMD until a full quiet round.
    void drain();

    std::vector<DeliveredFrame>& delivered();
    void clear_delivered();

    // ---- observability ----------------------------------------------
    // The per-host appctl: identical command shapes on every provider
    // (netdev/kernel hosts answer via their vswitch; eBPF hosts own a
    // standalone appctl their datapath registered into).
    obs::Appctl& appctl(std::size_t host);

    std::vector<LinkLoad> link_loads() const;
    // Degrades (or re-degrades) the from→to direction of a link at
    // runtime; names as in fabric/show. Throws std::out_of_range for
    // an unknown link.
    void set_link_degradation(const std::string& from, const std::string& to,
                              sim::Nanos extra_ns);

    // The same object the installed fabric/show provider renders:
    // {"hosts": [...], "switches": [...], "links": [...]}.
    obs::Value fabric_show() const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

// Cross-provider fabric differential: one fabric per provider (all
// hosts netdev, all kernel, all eBPF), the identical traffic schedule,
// delivered inner frames compared byte for byte and trace ids checked
// for end-to-end continuity. On divergence the report lines carry the
// full cross-host journey (per-hop switch chain) of the divergent
// trace on every provider.
struct FabricDiffReport {
    std::size_t frames_sent = 0;
    std::vector<std::string> divergences;
    bool ok() const { return divergences.empty(); }
    std::string summary() const;
};

// Runs the identical all-ordered-pairs schedule on three fabrics (one
// per provider) and diffs delivery. `inject_drop_trace` is a test hook:
// when nonzero, that trace id is discarded from the netdev run's
// deliveries, simulating a lost frame so the divergence path — and the
// cross-host journey it prints — can be exercised deterministically.
FabricDiffReport run_fabric_differential(std::size_t hosts, std::size_t frames_per_pair,
                                         std::size_t batch_size,
                                         std::uint32_t inject_drop_trace = 0);

} // namespace ovsx::fabric
