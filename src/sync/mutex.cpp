#include "sync/mutex.h"

namespace ovsx::sync {

namespace detail {

std::atomic<AcquireHook> g_acquire_hook{nullptr};
std::atomic<ReleaseHook> g_release_hook{nullptr};

std::uint32_t next_lock_id()
{
    // Relaxed: the id only needs uniqueness, no ordering with anything.
    static std::atomic<std::uint32_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace detail

void set_lock_hooks(detail::AcquireHook acquire, detail::ReleaseHook release)
{
    // Release pairs with the acquire loads in hook_acquire/hook_release:
    // everything the installer wrote before this call (the lockset
    // checker's own state) is visible to any thread that sees the hook.
    detail::g_acquire_hook.store(acquire, std::memory_order_release);
    detail::g_release_hook.store(release, std::memory_order_release);
}

} // namespace ovsx::sync
