#include "sync/mutex.h"

#include <mutex> // NOLINT(ovsx) raw primitive allowed in src/sync/ only
#include <set>
#include <string>

namespace ovsx::sync {

namespace detail {

std::atomic<AcquireHook> g_acquire_hook{nullptr};
std::atomic<ReleaseHook> g_release_hook{nullptr};

std::uint32_t next_lock_id()
{
    // Relaxed: the id only needs uniqueness, no ordering with anything.
    static std::atomic<std::uint32_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace detail

const char* shard_lock_name(const char* prefix, std::uint32_t index)
{
    // Interned into a process-lifetime set: Mutex stores only the
    // const char*, and the lockset/ABBA reports must keep printing a
    // stable name after the owning sharded table is destroyed or
    // resharded. Names are few (tables x shard counts), so the set
    // never grows past a few hundred entries.
    static std::mutex mu; // NOLINT(ovsx) leaf, below every sync::Mutex
    static std::set<std::string>* names = new std::set<std::string>();
    std::lock_guard<std::mutex> guard(mu);
    return names->insert(std::string(prefix) + "." + std::to_string(index)).first->c_str();
}

void set_lock_hooks(detail::AcquireHook acquire, detail::ReleaseHook release)
{
    // Release pairs with the acquire loads in hook_acquire/hook_release:
    // everything the installer wrote before this call (the lockset
    // checker's own state) is visible to any thread that sees the hook.
    detail::g_acquire_hook.store(acquire, std::memory_order_release);
    detail::g_release_hook.store(release, std::memory_order_release);
}

} // namespace ovsx::sync
