#include "sync/epoch.h"

#include <cstdio>
#include <stdexcept>
#include <thread>
#include <unordered_map>

namespace ovsx::sync {

namespace {
std::uint64_t next_domain_id()
{
    // Relaxed: uniqueness only. Ids are never reused, so a stale
    // thread-local entry for a destroyed domain can never alias a new
    // one that happens to land at the same address.
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}
} // namespace

struct EpochDomain::ReaderState {
    std::uint32_t slot = 0;
    std::uint64_t depth = 0;
};

EpochDomain::ReaderState& EpochDomain::reader_state()
{
    thread_local std::unordered_map<std::uint64_t, ReaderState> states;
    auto [it, inserted] = states.try_emplace(domain_id_);
    if (inserted) {
        const std::uint32_t slot = slots_used_.fetch_add(1, std::memory_order_relaxed);
        if (slot >= kMaxReaders) {
            throw std::runtime_error("EpochDomain: more than kMaxReaders reader threads");
        }
        it->second.slot = slot;
    }
    return it->second;
}

EpochDomain::EpochDomain(const char* name) : name_(name), domain_id_(next_domain_id()) {}

EpochDomain::~EpochDomain()
{
    // The owner must have joined/quiesced its readers by now; any
    // still-pinned slot here is a bug in the teardown order.
    const std::uint32_t used = slots_used_.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < used && i < kMaxReaders; ++i) {
        if (slots_[i].pinned.load(std::memory_order_acquire) != 0) {
            std::fprintf(stderr, "EpochDomain(%s): destroyed with a pinned reader\n", name_);
        }
    }
    // No reader can exist anymore, so every pending callback is safe.
    std::vector<Retired> rest;
    {
        LockGuard g(retire_mu_);
        rest.swap(retired_);
    }
    for (auto& r : rest) r.reclaim();
}

void EpochDomain::pin()
{
    ReaderState& rs = reader_state();
    if (rs.depth++ > 0) return;
    Slot& slot = slots_[rs.slot];
    // Publish-and-recheck: store the pin, then confirm the epoch did not
    // advance in between. seq_cst on both sides forms the store/load
    // "Dekker" pair with try_advance (which stores the new epoch, then
    // loads every pin): either the advancer sees our pin and stalls the
    // epoch, or we see its new epoch and re-pin at it. Either way our
    // published pin is never older than the epoch our traversal starts
    // in, which is what the two-advance reclamation rule relies on.
    std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    for (;;) {
        slot.pinned.store(e, std::memory_order_seq_cst);
        const std::uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
        if (now == e) break;
        e = now;
    }
}

void EpochDomain::unpin()
{
    ReaderState& rs = reader_state();
    if (--rs.depth > 0) return;
    // Release: everything the reader did inside the critical section
    // happens-before an advancer that observes the slot as unpinned.
    slots_[rs.slot].pinned.store(0, std::memory_order_release);
}

bool EpochDomain::this_thread_pinned() const
{
    return const_cast<EpochDomain*>(this)->reader_state().depth > 0;
}

void EpochDomain::retire(std::function<void()> reclaim)
{
    LockGuard g(retire_mu_);
    // The epoch must be read under retire_mu_: advances also happen
    // under it, so a callback tagged E proves the tagging strictly
    // preceded the advance E -> E+1 (see the safety argument in
    // epoch.h).
    retired_.push_back({global_epoch_.load(std::memory_order_seq_cst), std::move(reclaim)});
}

std::size_t EpochDomain::try_advance()
{
    std::vector<Retired> ready;
    {
        LockGuard g(retire_mu_);
        const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
        bool can_advance = true;
        const std::uint32_t used = slots_used_.load(std::memory_order_acquire);
        for (std::uint32_t i = 0; i < used && i < kMaxReaders; ++i) {
            const std::uint64_t pinned = slots_[i].pinned.load(std::memory_order_seq_cst);
            if (pinned != 0 && pinned != e) {
                can_advance = false;
                break;
            }
        }
        std::uint64_t now = e;
        if (can_advance) {
            now = e + 1;
            global_epoch_.store(now, std::memory_order_seq_cst);
            // Re-check the pins AFTER publishing the new epoch: a reader
            // racing with us either saw the old epoch (then its pin was
            // visible to the loop above — all were == e) or sees the new
            // one and pins at `now`. Both keep the invariant that no
            // active pin is < e.
        }
        // A callback retired at R is safe once the epoch has advanced
        // twice past it: global >= R + 2.
        for (std::size_t i = 0; i < retired_.size();) {
            if (retired_[i].epoch + 2 <= now) {
                ready.push_back(std::move(retired_[i]));
                retired_[i] = std::move(retired_.back());
                retired_.pop_back();
            } else {
                ++i;
            }
        }
    }
    for (auto& r : ready) r.reclaim();
    return ready.size();
}

void EpochDomain::synchronize()
{
    if (this_thread_pinned()) {
        // Advancing past our own pin is impossible — spinning here would
        // deadlock the caller against itself.
        std::fprintf(stderr,
                     "EpochDomain(%s): synchronize() called under an EpochGuard; skipping\n",
                     name_);
        return;
    }
    while (pending() > 0) {
        if (try_advance() == 0) std::this_thread::yield();
    }
}

std::size_t EpochDomain::pending() const
{
    LockGuard g(retire_mu_);
    return retired_.size();
}

} // namespace ovsx::sync
