// Portable clang thread-safety ("capability") annotation macros.
//
// The PMD scale-out on the roadmap turns the simulation's shared tables
// (megaflow, EMC, both conntracks, the eBPF map + shadow, the netlink
// replica, the obs registries) into genuinely concurrent state — the
// regime where the paper's OVS lineage historically grew its worst bugs
// (RCU misuse, classifier races). These macros make the locking
// discipline part of the type system: under clang, -Wthread-safety
// proves at compile time that every OVSX_GUARDED_BY member is only
// touched with its capability held; under other compilers they expand
// to nothing and the same discipline is enforced dynamically by the
// ovsx::san lockset checker (san/lockset.h) and statically by
// tools/ovsx_lint.
//
// Hardened builds add -Werror=thread-safety when the compiler is clang
// (top-level CMakeLists.txt), so an unguarded access is un-mergeable,
// not a warning.
#pragma once

#if defined(__clang__)
#define OVSX_TS_ATTR(x) __attribute__((x))
#else
#define OVSX_TS_ATTR(x) // no-op outside clang
#endif

// Type attributes: a class that is a lock (capability), or a scoped
// guard that acquires on construction and releases on destruction.
#define OVSX_CAPABILITY(x) OVSX_TS_ATTR(capability(x))
#define OVSX_SCOPED_CAPABILITY OVSX_TS_ATTR(scoped_lockable)

// Data-member attributes: the member may only be read with `x` held
// (shared or exclusive) and only written with `x` held exclusively.
#define OVSX_GUARDED_BY(x) OVSX_TS_ATTR(guarded_by(x))
#define OVSX_PT_GUARDED_BY(x) OVSX_TS_ATTR(pt_guarded_by(x))

// Function attributes: lock-order declarations…
#define OVSX_ACQUIRED_BEFORE(...) OVSX_TS_ATTR(acquired_before(__VA_ARGS__))
#define OVSX_ACQUIRED_AFTER(...) OVSX_TS_ATTR(acquired_after(__VA_ARGS__))
// …capabilities the caller must already hold…
#define OVSX_REQUIRES(...) OVSX_TS_ATTR(requires_capability(__VA_ARGS__))
#define OVSX_REQUIRES_SHARED(...) OVSX_TS_ATTR(requires_shared_capability(__VA_ARGS__))
// …capabilities the function acquires / releases…
#define OVSX_ACQUIRE(...) OVSX_TS_ATTR(acquire_capability(__VA_ARGS__))
#define OVSX_ACQUIRE_SHARED(...) OVSX_TS_ATTR(acquire_shared_capability(__VA_ARGS__))
#define OVSX_RELEASE(...) OVSX_TS_ATTR(release_capability(__VA_ARGS__))
#define OVSX_RELEASE_SHARED(...) OVSX_TS_ATTR(release_shared_capability(__VA_ARGS__))
#define OVSX_TRY_ACQUIRE(...) OVSX_TS_ATTR(try_acquire_capability(__VA_ARGS__))
// …and capabilities the function must NOT hold (deadlock prevention).
#define OVSX_EXCLUDES(...) OVSX_TS_ATTR(locks_excluded(__VA_ARGS__))

#define OVSX_ASSERT_CAPABILITY(x) OVSX_TS_ATTR(assert_capability(x))
#define OVSX_RETURN_CAPABILITY(x) OVSX_TS_ATTR(lock_returned(x))

// Escape hatch — every use must carry a comment saying why the analysis
// cannot see the synchronization (e.g. prefetch address computation,
// lock-free publication). tools/ovsx_lint has no budget for these, but
// reviewers do.
#define OVSX_NO_THREAD_SAFETY_ANALYSIS OVSX_TS_ATTR(no_thread_safety_analysis)

// Marks a per-packet hot-path function. Besides the compiler hint, this
// is a contract enforced by tools/ovsx_lint: no heap allocation
// keywords (new/make_unique/make_shared/malloc/...) may appear in the
// body of an OVSX_HOT function.
#if defined(__GNUC__) || defined(__clang__)
#define OVSX_HOT __attribute__((hot))
#else
#define OVSX_HOT
#endif
