// ovsx::sync — capability-annotated locking primitives.
//
// Every lock in the tree outside this directory must be one of these
// wrappers (enforced by tools/ovsx_lint rule `raw-mutex`): they carry
// the clang thread-safety capability attributes, a stable name + id for
// diagnostics, and a hook seam through which the ovsx::san lockset
// checker observes every acquisition and release — per-thread held-lock
// sets for Eraser-style race detection and a global acquisition DAG for
// lock-order (ABBA) detection. The hooks are raw function pointers
// installed by san/lockset.cpp at static-init time, so this layer has
// no dependency on san and sits at the very bottom of the link graph
// (obs can use it for its registries).
//
// Hooks fire only in hardened mode (the installed hook checks); when
// off, a lock is exactly a std::mutex plus one predicted-null branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>        // NOLINT(ovsx) raw primitive wrapped here, allowed in src/sync/ only
#include <shared_mutex> // NOLINT(ovsx)

#include "sync/annotations.h"

namespace ovsx::sync {

namespace detail {

// on_acquire(id, name, exclusive) is called BEFORE blocking on the
// underlying lock, so a lock-order cycle is reported even when the
// program would deadlock right after; on_release(id) after unlocking.
using AcquireHook = void (*)(std::uint32_t id, const char* name, bool exclusive);
using ReleaseHook = void (*)(std::uint32_t id);

extern std::atomic<AcquireHook> g_acquire_hook;
extern std::atomic<ReleaseHook> g_release_hook;

// Monotonic lock ids, assigned at construction (deterministic within a
// deterministic program).
std::uint32_t next_lock_id();

inline void hook_acquire(std::uint32_t id, const char* name, bool exclusive)
{
    if (AcquireHook h = g_acquire_hook.load(std::memory_order_acquire)) h(id, name, exclusive);
}

inline void hook_release(std::uint32_t id)
{
    if (ReleaseHook h = g_release_hook.load(std::memory_order_acquire)) h(id);
}

} // namespace detail

// Installs the lockset observer (san/lockset.cpp). Passing nullptrs
// detaches it. `acquire` ordering pairs with the acquire loads in the
// hook_* shims so a hook installed at static-init is fully constructed
// before any other thread can invoke it.
void set_lock_hooks(detail::AcquireHook acquire, detail::ReleaseHook release);

// Stable interned lock name "<prefix>.<index>" for per-shard mutexes:
// sharded tables construct their shard locks with distinct, stable
// names ("ovs.uct.shard.3") so lockset/ABBA reports identify the exact
// shard. The returned pointer lives for the whole process.
const char* shard_lock_name(const char* prefix, std::uint32_t index);

class OVSX_CAPABILITY("mutex") Mutex {
public:
    explicit Mutex(const char* name = "mutex") : id_(detail::next_lock_id()), name_(name) {}
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() OVSX_ACQUIRE()
    {
        detail::hook_acquire(id_, name_, /*exclusive=*/true);
        mu_.lock();
    }

    bool try_lock() OVSX_TRY_ACQUIRE(true)
    {
        if (!mu_.try_lock()) return false;
        detail::hook_acquire(id_, name_, /*exclusive=*/true);
        return true;
    }

    void unlock() OVSX_RELEASE()
    {
        mu_.unlock();
        detail::hook_release(id_);
    }

    std::uint32_t id() const { return id_; }
    const char* name() const { return name_; }

private:
    std::mutex mu_;
    std::uint32_t id_;
    const char* name_;
};

class OVSX_CAPABILITY("shared_mutex") SharedMutex {
public:
    explicit SharedMutex(const char* name = "shared_mutex")
        : id_(detail::next_lock_id()), name_(name)
    {
    }
    SharedMutex(const SharedMutex&) = delete;
    SharedMutex& operator=(const SharedMutex&) = delete;

    void lock() OVSX_ACQUIRE()
    {
        detail::hook_acquire(id_, name_, /*exclusive=*/true);
        mu_.lock();
    }
    void unlock() OVSX_RELEASE()
    {
        mu_.unlock();
        detail::hook_release(id_);
    }

    void lock_shared() OVSX_ACQUIRE_SHARED()
    {
        detail::hook_acquire(id_, name_, /*exclusive=*/false);
        mu_.lock_shared();
    }
    void unlock_shared() OVSX_RELEASE_SHARED()
    {
        mu_.unlock_shared();
        detail::hook_release(id_);
    }

    std::uint32_t id() const { return id_; }
    const char* name() const { return name_; }

private:
    std::shared_mutex mu_;
    std::uint32_t id_;
    const char* name_;
};

class OVSX_SCOPED_CAPABILITY LockGuard {
public:
    explicit LockGuard(Mutex& mu) OVSX_ACQUIRE(mu) : mu_(&mu), shared_mu_(nullptr)
    {
        mu_->lock();
    }
    explicit LockGuard(SharedMutex& mu) OVSX_ACQUIRE(mu) : mu_(nullptr), shared_mu_(&mu)
    {
        shared_mu_->lock();
    }
    ~LockGuard() OVSX_RELEASE()
    {
        if (mu_) mu_->unlock();
        if (shared_mu_) shared_mu_->unlock();
    }
    LockGuard(const LockGuard&) = delete;
    LockGuard& operator=(const LockGuard&) = delete;

private:
    Mutex* mu_;
    SharedMutex* shared_mu_;
};

class OVSX_SCOPED_CAPABILITY SharedLockGuard {
public:
    explicit SharedLockGuard(SharedMutex& mu) OVSX_ACQUIRE_SHARED(mu) : mu_(mu)
    {
        mu_.lock_shared();
    }
    ~SharedLockGuard() OVSX_RELEASE()
    {
        mu_.unlock_shared();
    }
    SharedLockGuard(const SharedLockGuard&) = delete;
    SharedLockGuard& operator=(const SharedLockGuard&) = delete;

private:
    SharedMutex& mu_;
};

} // namespace ovsx::sync
