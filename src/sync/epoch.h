// Epoch-based reclamation, the memory-lifetime half of the scale-out
// plan: the sharded megaflow/conntrack design on the roadmap replaces
// its global locks with read-mostly structures whose readers must never
// block, which means removed entries cannot be freed until every reader
// that might still see them has moved on. EpochDomain implements the
// classic three-epoch scheme (Fraser; crossbeam-epoch; the kernel's
// RCU grace periods are the same idea):
//
//  - Readers wrap traversals in an EpochGuard, which pins the thread to
//    the current global epoch E. Pinning is wait-free.
//  - Writers unlink an object from the structure first, then retire()
//    a reclaim callback, tagged with the epoch current at retire time.
//  - try_advance() moves the global epoch E -> E+1 only when every
//    pinned thread is pinned at E. A callback retired at epoch R runs
//    once the global epoch reaches R+2: two advances prove that every
//    reader that could have observed the object (those pinned at R or
//    earlier) has unpinned.
//
// The two-advance rule is what makes the unlink-then-retire protocol
// safe: a reader pinned after the advance past R+1 entered at epoch
// >= R+1, strictly after the object was unlinked, so it cannot find it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "sync/annotations.h"
#include "sync/mutex.h"

namespace ovsx::sync {

class EpochGuard;

class EpochDomain {
public:
    // Fixed reader-slot table: registration is lock-free and a slot id
    // is stable for the lifetime of (thread, domain).
    static constexpr std::uint32_t kMaxReaders = 64;

    explicit EpochDomain(const char* name = "epoch");
    ~EpochDomain();
    EpochDomain(const EpochDomain&) = delete;
    EpochDomain& operator=(const EpochDomain&) = delete;

    // Defers `reclaim` until no reader pinned at or before the current
    // epoch can still be active. Callable from any thread; the writer
    // must have already unlinked the object from the shared structure.
    void retire(std::function<void()> reclaim);

    // Attempts one epoch advance and runs every callback whose grace
    // period has elapsed. Returns the number of callbacks run. Safe to
    // call from any thread, including concurrently.
    std::size_t try_advance();

    // Blocks (spinning on try_advance + yield) until every callback
    // retired before the call has run. Must not be called while the
    // calling thread holds an EpochGuard on this domain — that is a
    // self-deadlock, reported through the san layer as a violation and
    // broken by returning early.
    void synchronize();

    std::size_t pending() const;
    std::uint64_t epoch() const { return global_epoch_.load(std::memory_order_acquire); }
    const char* name() const { return name_; }

    // True while the calling thread holds at least one EpochGuard here.
    bool this_thread_pinned() const;

private:
    friend class EpochGuard;

    struct ReaderState; // per-thread pin bookkeeping (epoch.cpp)
    ReaderState& reader_state();

    void pin();
    void unpin();

    const char* name_;
    std::uint64_t domain_id_; // survives address reuse in thread-local maps

    // Global epoch counter, starts at 1 so a slot value of 0 can mean
    // "not pinned". Advanced only under retire_mu_, read lock-free.
    std::atomic<std::uint64_t> global_epoch_{1};

    // slots_[i] == 0: no pinned reader; otherwise the epoch that reader
    // is pinned at. Readers own their slot exclusively.
    struct alignas(64) Slot {
        std::atomic<std::uint64_t> pinned{0};
    };
    Slot slots_[kMaxReaders];
    std::atomic<std::uint32_t> slots_used_{0};

    mutable Mutex retire_mu_{"sync.epoch.retire"};
    struct Retired {
        std::uint64_t epoch;
        std::function<void()> reclaim;
    };
    std::vector<Retired> retired_ OVSX_GUARDED_BY(retire_mu_);
};

// RAII reader pin. Nests: only the outermost guard pins/unpins.
class EpochGuard {
public:
    explicit EpochGuard(EpochDomain& domain) : domain_(domain) { domain_.pin(); }
    ~EpochGuard() { domain_.unpin(); }
    EpochGuard(const EpochGuard&) = delete;
    EpochGuard& operator=(const EpochGuard&) = delete;

private:
    EpochDomain& domain_;
};

} // namespace ovsx::sync
