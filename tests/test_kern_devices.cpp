#include <gtest/gtest.h>

#include "ebpf/programs.h"
#include "kern/kernel.h"
#include "kern/nic.h"
#include "kern/rtnetlink.h"
#include "kern/stack.h"
#include "kern/tap.h"
#include "kern/veth.h"
#include "kern/virtio.h"
#include "net/builder.h"
#include "net/headers.h"

namespace ovsx::kern {
namespace {

using net::ipv4;

net::Packet udp64(std::uint32_t dst = ipv4(10, 0, 0, 2), std::uint16_t dport = 2000,
                  std::uint16_t sport = 1000)
{
    net::UdpSpec spec;
    spec.src_mac = net::MacAddr::from_id(1);
    spec.dst_mac = net::MacAddr::from_id(2);
    spec.src_ip = ipv4(10, 0, 0, 1);
    spec.dst_ip = dst;
    spec.src_port = sport;
    spec.dst_port = dport;
    return net::build_udp(spec);
}

TEST(Nic, RssSpreadsFlowsAcrossQueues)
{
    Kernel kernel;
    NicConfig cfg;
    cfg.num_queues = 4;
    auto& nic = kernel.add_device<PhysicalDevice>("eth0", net::MacAddr::from_id(1), cfg);

    std::set<std::uint32_t> queues;
    for (std::uint16_t p = 0; p < 64; ++p) {
        queues.insert(nic.select_queue(udp64(ipv4(10, 0, 0, 2), 2000, p)));
    }
    EXPECT_EQ(queues.size(), 4u); // all queues used
    // Same flow always lands on the same queue.
    EXPECT_EQ(nic.select_queue(udp64()), nic.select_queue(udp64()));
}

TEST(Nic, NtupleSteeringOverridesRss)
{
    Kernel kernel;
    NicConfig cfg;
    cfg.num_queues = 4;
    auto& nic = kernel.add_device<PhysicalDevice>("eth0", net::MacAddr::from_id(1), cfg);
    nic.add_ntuple_rule({.proto = 17, .dst_port = 4789, .dst_ip = 0, .queue = 3});
    EXPECT_EQ(nic.select_queue(udp64(ipv4(9, 9, 9, 9), 4789)), 3u);
    // Unmatched traffic still goes through RSS.
    nic.clear_ntuple_rules();
    nic.add_ntuple_rule({.proto = 6, .dst_port = 0, .dst_ip = 0, .queue = 2});
    EXPECT_NE(nic.select_queue(udp64()), 2u); // UDP doesn't match the TCP rule... usually
}

TEST(Nic, XdpDropCountsAndCosts)
{
    Kernel kernel;
    auto& nic = kernel.add_device<PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    nic.attach_xdp(ebpf::xdp_drop_all());
    nic.rx_from_wire(udp64());
    nic.rx_from_wire(udp64());
    EXPECT_EQ(nic.xdp_drops(), 2u);
    EXPECT_GT(nic.softirq_ctx(0).total_busy(), 0);
    EXPECT_EQ(nic.softirq_ctx(0).counter("xdp.run"), 2u);
}

TEST(Nic, XdpTxBouncesPacket)
{
    Kernel kernel;
    auto& nic = kernel.add_device<PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    nic.attach_xdp(ebpf::xdp_swap_macs_tx());
    int out = 0;
    net::Packet echoed;
    nic.connect_wire([&](net::Packet&& p) {
        echoed = std::move(p);
        ++out;
    });
    nic.rx_from_wire(udp64());
    ASSERT_EQ(out, 1);
    const auto* eth = echoed.header_at<net::EthernetHeader>(0);
    EXPECT_EQ(eth->dst, net::MacAddr::from_id(1)); // swapped
}

TEST(Nic, PerQueueAttachRequiresPerQueueModel)
{
    Kernel kernel;
    NicConfig intel;
    intel.num_queues = 4;
    intel.xdp_model = NicConfig::XdpModel::PerDevice;
    auto& nic_intel = kernel.add_device<PhysicalDevice>("intel0", net::MacAddr::from_id(1), intel);
    EXPECT_THROW(nic_intel.attach_xdp(ebpf::xdp_drop_all(), 2), std::invalid_argument);
    EXPECT_NO_THROW(nic_intel.attach_xdp(ebpf::xdp_drop_all(), -1));

    NicConfig mlx;
    mlx.num_queues = 4;
    mlx.xdp_model = NicConfig::XdpModel::PerQueue;
    auto& nic_mlx = kernel.add_device<PhysicalDevice>("mlx0", net::MacAddr::from_id(2), mlx);
    EXPECT_NO_THROW(nic_mlx.attach_xdp(ebpf::xdp_drop_all(), 2));
    EXPECT_THROW(nic_mlx.attach_xdp(ebpf::xdp_drop_all(), 9), std::out_of_range);
    // Queue 2 has the program; queue 0 has none.
    EXPECT_NE(nic_mlx.xdp_program(2), nullptr);
    EXPECT_EQ(nic_mlx.xdp_program(0), nullptr);
}

TEST(Nic, TsoSegmentsSuperFrames)
{
    Kernel kernel;
    auto& nic = kernel.add_device<PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    std::vector<net::Packet> wire;
    nic.connect_wire([&](net::Packet&& p) { wire.push_back(std::move(p)); });

    net::TcpSpec spec;
    spec.src_ip = ipv4(1, 1, 1, 1);
    spec.dst_ip = ipv4(2, 2, 2, 2);
    spec.src_port = 1;
    spec.dst_port = 2;
    spec.payload_len = 4000;
    net::Packet super = net::build_tcp(spec);
    super.meta().tso_segsz = 1448;

    sim::ExecContext ctx("stack", sim::CpuClass::Softirq);
    nic.transmit(std::move(super), ctx);

    ASSERT_EQ(wire.size(), 3u); // 1448+1448+1104
    std::size_t total = 0;
    std::uint32_t expect_seq = 0;
    for (auto& seg : wire) {
        const auto* tcp = seg.header_at<net::TcpHeader>(34);
        EXPECT_EQ(tcp->seq(), expect_seq);
        const auto* ip = seg.header_at<net::Ipv4Header>(14);
        const std::size_t payload = ip->total_len() - 20u - 20u;
        expect_seq += static_cast<std::uint32_t>(payload);
        total += payload;
        EXPECT_TRUE(net::verify_l4_csum(seg, 14)) << "segment checksum";
        EXPECT_EQ(seg.meta().tso_segsz, 0);
    }
    EXPECT_EQ(total, 4000u);
}

TEST(Nic, DpdkTakeoverBypassesKernel)
{
    Kernel kernel;
    auto& nic = kernel.add_device<PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    nic.attach_xdp(ebpf::xdp_drop_all());

    int pmd_rx = 0;
    nic.dpdk_take_over([&](net::Packet&&, std::uint32_t) { ++pmd_rx; });
    nic.rx_from_wire(udp64());
    EXPECT_EQ(pmd_rx, 1);
    EXPECT_EQ(nic.xdp_drops(), 0u);              // XDP never ran
    EXPECT_EQ(nic.softirq_ctx(0).total_busy(), 0); // no kernel CPU at all
    EXPECT_FALSE(nic.kernel_managed());

    nic.dpdk_release();
    EXPECT_TRUE(nic.kernel_managed());
    nic.rx_from_wire(udp64());
    EXPECT_EQ(pmd_rx, 1);
}

TEST(Veth, PairDeliversAcrossNamespaces)
{
    Kernel kernel;
    const int ns = kernel.create_namespace("c0");
    auto [host_end, peer] = VethDevice::create_pair(kernel, "vh", "vc", 0, ns);
    kernel.stack(ns).add_address(peer->ifindex(), ipv4(172, 17, 0, 2), 24);

    int delivered = 0;
    kernel.stack(ns).bind(17, 2000, [&](net::Packet&&, const net::FlowKey&, sim::ExecContext&) {
        ++delivered;
    });

    sim::ExecContext ctx("x", sim::CpuClass::Softirq);
    host_end->transmit(udp64(ipv4(172, 17, 0, 2)), ctx);
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(host_end->stats().tx_packets, 1u);
    EXPECT_EQ(peer->stats().rx_packets, 1u);
}

TEST(Veth, XdpOnVethRuns)
{
    Kernel kernel;
    auto [a, b] = VethDevice::create_pair(kernel, "va", "vb");
    b->attach_xdp(ebpf::xdp_drop_all());
    sim::ExecContext ctx("x", sim::CpuClass::Softirq);
    a->transmit(udp64(), ctx);
    EXPECT_EQ(b->stats().rx_dropped, 1u);
}

TEST(Tap, FdWriteEntersKernelAndChargesWriter)
{
    Kernel kernel;
    auto& tap = kernel.add_device<TapDevice>("tap0", net::MacAddr::from_id(7));
    kernel.stack().add_address(tap.ifindex(), ipv4(192, 168, 0, 1), 24);

    int delivered = 0;
    kernel.stack().bind(17, 5000, [&](net::Packet&&, const net::FlowKey&, sim::ExecContext&) {
        ++delivered;
    });

    sim::ExecContext qemu("qemu", sim::CpuClass::User);
    tap.fd_write(udp64(ipv4(192, 168, 0, 1), 5000), qemu);
    EXPECT_EQ(delivered, 1);
    EXPECT_GT(qemu.busy(sim::CpuClass::System), 0); // syscall time
}

TEST(Tap, PacketSocketSendCostsTwoMicroseconds)
{
    // §3.3: the measured ~2 µs sendto cost on a tap.
    Kernel kernel;
    auto& tap = kernel.add_device<TapDevice>("tap0", net::MacAddr::from_id(7));
    int fd_rx = 0;
    tap.set_fd_rx([&](net::Packet&&, sim::ExecContext&) { ++fd_rx; });

    sim::ExecContext ovs("ovs", sim::CpuClass::User);
    tap.packet_socket_send(udp64(), ovs);
    EXPECT_EQ(fd_rx, 1);
    EXPECT_GE(ovs.busy(sim::CpuClass::System), 2000);
}

TEST(Tap, QueuesWhenNoReader)
{
    Kernel kernel;
    auto& tap = kernel.add_device<TapDevice>("tap0", net::MacAddr::from_id(7));
    sim::ExecContext ctx("x", sim::CpuClass::Softirq);
    tap.transmit(udp64(), ctx);
    tap.transmit(udp64(), ctx);
    EXPECT_EQ(tap.fd_queue_depth(), 2u);
    EXPECT_TRUE(tap.fd_read().has_value());
    EXPECT_TRUE(tap.fd_read().has_value());
    EXPECT_FALSE(tap.fd_read().has_value());
}

TEST(Vhost, BackendToGuestAndBack)
{
    Kernel host("host");
    Kernel guest("guest");
    sim::ExecContext guest_ctx("vcpu", sim::CpuClass::Guest);
    sim::ExecContext ovs_ctx("pmd", sim::CpuClass::User);

    VhostUserChannel chan(host.costs());
    auto& vnic = guest.add_device<VirtioNetDevice>("eth0", net::MacAddr::from_id(20), chan,
                                                   guest_ctx);
    guest.stack().add_address(vnic.ifindex(), ipv4(10, 0, 0, 2), 24);

    int guest_got = 0;
    guest.stack().bind(17, 2000, [&](net::Packet&&, const net::FlowKey&, sim::ExecContext&) {
        ++guest_got;
    });

    // Backend (OVS) -> guest.
    ASSERT_TRUE(chan.backend_tx(udp64(ipv4(10, 0, 0, 2)), ovs_ctx));
    EXPECT_EQ(guest_got, 1);
    EXPECT_GT(ovs_ctx.total_busy(), 0);

    // Guest -> backend.
    sim::ExecContext g2("vcpu", sim::CpuClass::Guest);
    vnic.transmit(udp64(ipv4(10, 0, 0, 9)), g2);
    auto polled = chan.backend_rx(ovs_ctx);
    ASSERT_TRUE(polled.has_value());
    EXPECT_EQ(net::parse_flow(*polled).nw_dst, ipv4(10, 0, 0, 9));
}

TEST(Vhost, OffloadFlagsNegotiated)
{
    Kernel host("host");
    Kernel guest("guest");
    sim::ExecContext guest_ctx("vcpu", sim::CpuClass::Guest);
    sim::ExecContext ovs_ctx("pmd", sim::CpuClass::User);

    VhostUserChannel chan(host.costs());
    auto& vnic = guest.add_device<VirtioNetDevice>("eth0", net::MacAddr::from_id(20), chan,
                                                   guest_ctx);
    vnic.set_offloads(/*csum=*/true, /*tso_segsz=*/1448);

    net::TcpSpec spec;
    spec.src_ip = ipv4(10, 0, 0, 2);
    spec.dst_ip = ipv4(10, 0, 0, 9);
    spec.payload_len = 100;
    vnic.transmit(net::build_tcp(spec), guest_ctx);
    auto polled = chan.backend_rx(ovs_ctx);
    ASSERT_TRUE(polled.has_value());
    EXPECT_TRUE(polled->meta().csum_tx_offload);
    EXPECT_EQ(polled->meta().tso_segsz, 1448);
}

TEST(RtNetlink, ToolsSeeKernelDevicesButNotDpdkOnes)
{
    Kernel kernel;
    auto& nic = kernel.add_device<PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    kernel.add_device<TapDevice>("tap0", net::MacAddr::from_id(2));
    kernel.stack().add_address(nic.ifindex(), ipv4(10, 0, 0, 1), 24);
    kernel.stack().add_neighbor(ipv4(10, 0, 0, 2), net::MacAddr::from_id(9), nic.ifindex());

    EXPECT_EQ(rtnl::link_show(kernel).size(), 2u);
    EXPECT_TRUE(rtnl::link_show(kernel, "eth0").has_value());
    EXPECT_EQ(rtnl::addr_show(kernel).size(), 1u);
    EXPECT_GE(rtnl::route_show(kernel).size(), 1u);
    EXPECT_EQ(rtnl::neigh_show(kernel).size(), 1u);
    EXPECT_TRUE(rtnl::can_reach(kernel, 0, ipv4(10, 0, 0, 2)));

    std::string err;
    EXPECT_TRUE(rtnl::tcpdump_attach(kernel, "eth0", nullptr, &err));

    // DPDK takes the NIC: every tool loses sight of it (Table 1).
    nic.dpdk_take_over([](net::Packet&&, std::uint32_t) {});
    EXPECT_EQ(rtnl::link_show(kernel).size(), 1u);
    EXPECT_FALSE(rtnl::link_show(kernel, "eth0").has_value());
    EXPECT_EQ(rtnl::addr_show(kernel).size(), 0u);
    EXPECT_EQ(rtnl::route_show(kernel).size(), 0u);
    EXPECT_EQ(rtnl::neigh_show(kernel).size(), 0u);
    EXPECT_FALSE(rtnl::can_reach(kernel, 0, ipv4(10, 0, 0, 2)));
    EXPECT_FALSE(rtnl::tcpdump_attach(kernel, "eth0", nullptr, &err));
    EXPECT_NE(err.find("DPDK"), std::string::npos);
}

TEST(RtNetlink, CaptureHookSeesTraffic)
{
    Kernel kernel;
    auto& nic = kernel.add_device<PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    int captured = 0;
    ASSERT_TRUE(rtnl::tcpdump_attach(kernel, "eth0",
                                     [&](const Device&, const net::Packet&, bool) { ++captured; }));
    nic.rx_from_wire(udp64());
    EXPECT_EQ(captured, 1);
}

} // namespace
} // namespace ovsx::kern
