#include <gtest/gtest.h>

#include "kern/kernel.h"
#include "kern/nic.h"
#include "kern/ovs_kmod.h"
#include "kern/stack.h"
#include "kern/tap.h"
#include "net/builder.h"
#include "net/checksum.h"
#include "net/headers.h"

namespace ovsx::kern {
namespace {

using net::ipv4;

net::Packet udp64(std::uint16_t sport = 1000)
{
    net::UdpSpec spec;
    spec.src_mac = net::MacAddr::from_id(1);
    spec.dst_mac = net::MacAddr::from_id(2);
    spec.src_ip = ipv4(10, 0, 0, 1);
    spec.dst_ip = ipv4(10, 0, 0, 2);
    spec.src_port = sport;
    spec.dst_port = 2000;
    return net::build_udp(spec);
}

class KmodTest : public ::testing::Test {
protected:
    void SetUp() override
    {
        nic0 = &kernel.add_device<PhysicalDevice>("eth0", net::MacAddr::from_id(1));
        nic1 = &kernel.add_device<PhysicalDevice>("eth1", net::MacAddr::from_id(2));
        dp = &kernel.ovs_datapath();
        p0 = dp->add_port(*nic0);
        p1 = dp->add_port(*nic1);
        nic1->connect_wire([this](net::Packet&& p) { out1.push_back(std::move(p)); });
        nic0->connect_wire([this](net::Packet&& p) { out0.push_back(std::move(p)); });
    }

    // Exact-match flow on in_port + 5-tuple.
    net::FlowMask tuple_mask()
    {
        net::FlowMask m;
        m.bits.in_port = 0xffffffff;
        m.bits.nw_src = 0xffffffff;
        m.bits.nw_dst = 0xffffffff;
        m.bits.nw_proto = 0xff;
        m.bits.tp_src = 0xffff;
        m.bits.tp_dst = 0xffff;
        return m;
    }

    Kernel kernel;
    PhysicalDevice* nic0 = nullptr;
    PhysicalDevice* nic1 = nullptr;
    OvsKernelDatapath* dp = nullptr;
    std::uint32_t p0 = 0, p1 = 0;
    std::vector<net::Packet> out0, out1;
};

TEST_F(KmodTest, MissWithoutHandlerIsLost)
{
    nic0->rx_from_wire(udp64());
    EXPECT_EQ(dp->misses(), 1u);
    EXPECT_EQ(dp->lost(), 1u);
    EXPECT_TRUE(out1.empty());
}

TEST_F(KmodTest, InstalledFlowForwards)
{
    net::Packet probe = udp64();
    probe.meta().in_port = p0;
    const auto key = net::parse_flow(probe);
    dp->flow_put(key, tuple_mask(), {OdpAction::output(p1)});

    nic0->rx_from_wire(udp64());
    EXPECT_EQ(dp->hits(), 1u);
    ASSERT_EQ(out1.size(), 1u);
    EXPECT_EQ(dp->flow_count(), 1u);
}

TEST_F(KmodTest, UpcallHandlerInstallsFlowLikeVswitchd)
{
    // Model the ovs-vswitchd slow path: on miss, install the flow and
    // re-inject the packet.
    dp->set_upcall_handler([this](std::uint32_t, net::Packet&& pkt, const net::FlowKey& key,
                                  sim::ExecContext& ctx) {
        dp->flow_put(key, tuple_mask(), {OdpAction::output(p1)});
        dp->execute(std::move(pkt), {OdpAction::output(p1)}, ctx);
    });

    nic0->rx_from_wire(udp64());
    EXPECT_EQ(dp->misses(), 1u);
    EXPECT_EQ(out1.size(), 1u);

    // Second packet of the same flow hits the installed flow.
    nic0->rx_from_wire(udp64());
    EXPECT_EQ(dp->hits(), 1u);
    EXPECT_EQ(out1.size(), 2u);

    // A different flow misses again.
    nic0->rx_from_wire(udp64(1001));
    EXPECT_EQ(dp->misses(), 2u);
}

TEST_F(KmodTest, MaskedFlowCoversManyMicroflows)
{
    // A megaflow matching only in_port forwards everything cheaply.
    net::Packet probe = udp64();
    probe.meta().in_port = p0;
    net::FlowMask mask;
    mask.bits.in_port = 0xffffffff;
    dp->flow_put(net::parse_flow(probe), mask, {OdpAction::output(p1)});

    for (std::uint16_t s = 0; s < 100; ++s) nic0->rx_from_wire(udp64(s));
    EXPECT_EQ(dp->hits(), 100u);
    EXPECT_EQ(out1.size(), 100u);
    EXPECT_EQ(dp->mask_count(), 1u);
}

TEST_F(KmodTest, MoreMasksMeanMoreProbesAndCost)
{
    // Install flows under increasingly many distinct masks and observe
    // the lookup cost growing — the megaflow-cache design pressure.
    net::Packet probe = udp64();
    probe.meta().in_port = p0;
    const auto key = net::parse_flow(probe);

    net::FlowMask m1;
    m1.bits.in_port = 0xffffffff;
    net::FlowMask m2 = m1;
    m2.bits.nw_dst = 0xffffffff;
    net::FlowMask m3 = m2;
    m3.bits.tp_dst = 0xffff;
    // The matching flow lives under the least specific mask, so probes
    // walk through the more specific subtables first.
    net::FlowKey other = key;
    other.tp_dst = 9;
    dp->flow_put(other, m3, {OdpAction::drop()});
    other.nw_dst = ipv4(9, 9, 9, 9);
    dp->flow_put(other, m2, {OdpAction::drop()});
    dp->flow_put(key, m1, {OdpAction::output(p1)});
    EXPECT_EQ(dp->mask_count(), 3u);

    const auto before = nic0->softirq_ctx(0).total_busy();
    nic0->rx_from_wire(udp64());
    const auto cost3 = nic0->softirq_ctx(0).total_busy() - before;
    EXPECT_EQ(out1.size(), 1u);

    dp->flow_flush();
    dp->flow_put(key, m1, {OdpAction::output(p1)});
    const auto before1 = nic0->softirq_ctx(0).total_busy();
    nic0->rx_from_wire(udp64());
    const auto cost1 = nic0->softirq_ctx(0).total_busy() - before1;
    EXPECT_GT(cost3, cost1);
}

TEST_F(KmodTest, VlanActions)
{
    net::Packet probe = udp64();
    probe.meta().in_port = p0;
    net::FlowMask mask;
    mask.bits.in_port = 0xffffffff;
    dp->flow_put(net::parse_flow(probe), mask,
                 {OdpAction::push_vlan(42), OdpAction::output(p1)});
    nic0->rx_from_wire(udp64());
    ASSERT_EQ(out1.size(), 1u);
    const auto key = net::parse_flow(out1[0]);
    EXPECT_EQ(key.vlan_tci & 0xfff, 42);
    EXPECT_EQ(key.nw_dst, ipv4(10, 0, 0, 2)); // inner payload intact
}

TEST_F(KmodTest, SetFieldRewritesAndRepairsChecksums)
{
    net::Packet probe = udp64();
    probe.meta().in_port = p0;
    net::FlowMask mask;
    mask.bits.in_port = 0xffffffff;

    net::FlowKey rewrite;
    rewrite.nw_dst = ipv4(99, 99, 99, 99);
    net::FlowMask rmask;
    rmask.bits.nw_dst = 0xffffffff;
    dp->flow_put(net::parse_flow(probe), mask,
                 {OdpAction::set_field(rewrite, rmask), OdpAction::output(p1)});
    nic0->rx_from_wire(udp64());
    ASSERT_EQ(out1.size(), 1u);
    const auto key = net::parse_flow(out1[0]);
    EXPECT_EQ(key.nw_dst, ipv4(99, 99, 99, 99));
    EXPECT_EQ(net::internet_checksum({out1[0].data() + 14, 20}), 0);
    EXPECT_TRUE(net::verify_l4_csum(out1[0], 14));
}

TEST_F(KmodTest, CtRecircPipeline)
{
    // The NSX-style pipeline: ct() then recirculate, matching ct_state
    // on the second pass (§5.1's three-lookup structure).
    net::Packet probe = udp64();
    probe.meta().in_port = p0;
    auto key0 = net::parse_flow(probe);

    net::FlowMask pass1;
    pass1.bits.in_port = 0xffffffff;
    CtSpec ct;
    ct.zone = 7;
    ct.commit = true;
    dp->flow_put(key0, pass1, {OdpAction::conntrack(ct), OdpAction::recirc(1)});

    net::FlowKey key1 = key0;
    key1.recirc_id = 1;
    key1.ct_state = net::kCtStateTracked | net::kCtStateNew;
    key1.ct_zone = 7;
    net::FlowMask pass2;
    pass2.bits.in_port = 0xffffffff;
    pass2.bits.recirc_id = 0xffffffff;
    pass2.bits.ct_state = 0xff;
    pass2.bits.ct_zone = 0xffff;
    dp->flow_put(key1, pass2, {OdpAction::output(p1)});

    // Established continuation.
    net::FlowKey key2 = key1;
    key2.ct_state = net::kCtStateTracked | net::kCtStateEstablished;
    dp->flow_put(key2, pass2, {OdpAction::output(p1)});

    nic0->rx_from_wire(udp64());
    ASSERT_EQ(out1.size(), 1u);
    EXPECT_EQ(kernel.conntrack().size(), 1u);

    // Second packet follows the established path.
    nic0->rx_from_wire(udp64());
    EXPECT_EQ(out1.size(), 2u);
    EXPECT_EQ(dp->hits(), 4u); // 2 packets x 2 lookups
}

TEST_F(KmodTest, MulticastOutputClones)
{
    net::Packet probe = udp64();
    probe.meta().in_port = p0;
    net::FlowMask mask;
    mask.bits.in_port = 0xffffffff;
    dp->flow_put(net::parse_flow(probe), mask,
                 {OdpAction::output(p1), OdpAction::output(p0)});
    nic0->rx_from_wire(udp64());
    EXPECT_EQ(out1.size(), 1u);
    EXPECT_EQ(out0.size(), 1u);
}

TEST_F(KmodTest, FlowDelete)
{
    net::Packet probe = udp64();
    probe.meta().in_port = p0;
    const auto key = net::parse_flow(probe);
    dp->flow_put(key, tuple_mask(), {OdpAction::output(p1)});
    EXPECT_EQ(dp->flow_count(), 1u);
    EXPECT_TRUE(dp->flow_del(key, tuple_mask()));
    EXPECT_EQ(dp->flow_count(), 0u);
    EXPECT_FALSE(dp->flow_del(key, tuple_mask()));
    nic0->rx_from_wire(udp64());
    EXPECT_EQ(dp->misses(), 1u);
}

TEST_F(KmodTest, GeneveTunnelRoundTripBetweenDatapaths)
{
    // Host A encapsulates out its NIC; host B decapsulates into its
    // datapath — the inter-host NSX path of Fig. 8(a).
    Kernel hostb("hostb");
    auto& b_nic = hostb.add_device<PhysicalDevice>("eth0", net::MacAddr::from_id(20));
    auto& b_tap = hostb.add_device<TapDevice>("tap0", net::MacAddr::from_id(21));
    auto& bdp = hostb.ovs_datapath();
    bdp.add_port(b_nic); // underlay port feeds the stack? No: datapath owns it.
    const auto b_tun = bdp.add_tunnel_port("geneve0", net::TunnelType::Geneve,
                                           ipv4(172, 16, 0, 2));
    const auto b_vm = bdp.add_port(b_tap);

    // Host B: tunneled traffic must reach its stack. Its NIC port flow
    // sends outer traffic to the "userspace"... in the kernel model, the
    // datapath forwards tunnel UDP to the local stack via a flow that
    // outputs to the stack — model this with an upcall-installed flow
    // that calls into the stack directly.
    bdp.set_upcall_handler([&](std::uint32_t, net::Packet&& pkt, const net::FlowKey& key,
                               sim::ExecContext& ctx) {
        // Outer packet destined to our tunnel endpoint: hand to stack.
        if (key.tp_dst == net::kGenevePort) {
            hostb.stack().rx(b_nic, std::move(pkt), ctx);
        }
    });
    hostb.stack().add_address(b_nic.ifindex(), ipv4(172, 16, 0, 2), 24);

    // Flow on B: tunnel port -> VM tap.
    net::FlowMask tun_mask;
    tun_mask.bits.in_port = 0xffffffff;
    net::FlowKey tun_key;
    tun_key.in_port = b_tun;
    bdp.flow_put(tun_key, tun_mask, {OdpAction::output(b_vm)});

    int vm_got = 0;
    b_tap.set_fd_rx([&](net::Packet&& pkt, sim::ExecContext&) {
        ++vm_got;
        // Inner frame intact after decap.
        EXPECT_EQ(net::parse_flow(pkt).nw_dst, ipv4(10, 0, 0, 2));
    });

    // Host A: flow encapsulates traffic from eth0 into the tunnel.
    const auto a_tun = dp->add_tunnel_port("geneve0", net::TunnelType::Geneve,
                                           ipv4(172, 16, 0, 1));
    kernel.stack().add_address(nic1->ifindex(), ipv4(172, 16, 0, 1), 24);
    kernel.stack().add_neighbor(ipv4(172, 16, 0, 2), b_nic.mac(), nic1->ifindex());
    net::TunnelKey tkey;
    tkey.tun_id = 5001;
    tkey.ip_dst = ipv4(172, 16, 0, 2);
    net::Packet probe = udp64();
    probe.meta().in_port = p0;
    net::FlowMask mask;
    mask.bits.in_port = 0xffffffff;
    dp->flow_put(net::parse_flow(probe), mask,
                 {OdpAction::set_tunnel(tkey), OdpAction::output(a_tun)});

    // Wire A's eth1 to B's NIC.
    nic1->connect_wire([&](net::Packet&& p) { b_nic.rx_from_wire(std::move(p)); });

    nic0->rx_from_wire(udp64());
    EXPECT_EQ(vm_got, 1);
}

// Burst ingress: receive_batch admits the whole vector at once but must
// be observationally identical to N receive() calls — same verdicts in
// arrival order, same flow stats, mixed hits/misses handled per packet.
TEST_F(KmodTest, ReceiveBatchMatchesScalarReceivePerPacket)
{
    // Flow for sport 1000 only; sport 2000 packets miss and upcall.
    dp->flow_put(net::parse_flow([&] {
                     net::Packet probe = udp64(1000);
                     probe.meta().in_port = p0;
                     return probe;
                 }()),
                 tuple_mask(), {OdpAction::output(p1)});

    std::vector<std::uint16_t> upcall_sports;
    dp->set_upcall_handler([&](std::uint32_t, net::Packet&& pkt, const net::FlowKey& key,
                               sim::ExecContext&) { upcall_sports.push_back(key.tp_src); });

    // Hit, miss, hit, miss, hit — the batch must split verdicts
    // per-packet, not per-burst.
    std::vector<net::Packet> burst;
    for (const std::uint16_t sport : {1000, 2000, 1000, 2001, 1000}) {
        net::Packet pkt = udp64(sport);
        pkt.meta().in_port = p0;
        burst.push_back(std::move(pkt));
    }
    sim::ExecContext softirq{"softirq", sim::CpuClass::Softirq};
    dp->receive_batch(p0, std::move(burst), softirq);

    EXPECT_EQ(out1.size(), 3u);
    EXPECT_EQ(dp->hits(), 3u);
    EXPECT_EQ(dp->misses(), 2u);
    EXPECT_EQ(upcall_sports, (std::vector<std::uint16_t>{2000, 2001})); // arrival order

    // The same traffic delivered one packet at a time lands identically.
    out1.clear();
    upcall_sports.clear();
    for (const std::uint16_t sport : {1000, 2000, 1000, 2001, 1000}) {
        net::Packet pkt = udp64(sport);
        pkt.meta().in_port = p0;
        dp->receive(p0, std::move(pkt), softirq);
    }
    EXPECT_EQ(out1.size(), 3u);
    EXPECT_EQ(dp->hits(), 6u);
    EXPECT_EQ(dp->misses(), 4u);
    EXPECT_EQ(upcall_sports, (std::vector<std::uint16_t>{2000, 2001}));

    // An empty burst is legal and a no-op.
    dp->receive_batch(p0, {}, softirq);
    EXPECT_EQ(dp->hits(), 6u);
    EXPECT_EQ(dp->misses(), 4u);
}

} // namespace
} // namespace ovsx::kern
