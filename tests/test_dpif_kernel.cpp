#include <gtest/gtest.h>

#include "kern/kernel.h"
#include "kern/nic.h"
#include "kern/virtio.h"
#include "net/builder.h"
#include "ovs/dpif_kernel.h"
#include "ovs/dpif_netdev.h"
#include "ovs/netdev_afxdp.h"
#include "ovs/vswitch.h"

namespace ovsx::ovs {
namespace {

using net::ipv4;

net::Packet udp64(std::uint16_t sport = 1000)
{
    net::UdpSpec spec;
    spec.src_ip = ipv4(10, 0, 0, 1);
    spec.dst_ip = ipv4(10, 0, 0, 2);
    spec.src_port = sport;
    spec.dst_port = 2000;
    return net::build_udp(spec);
}

// The traditional split architecture driven through the same VSwitch /
// ofproto control plane as the AF_XDP datapath — the point of the Dpif
// abstraction.
TEST(DpifKernelTest, VSwitchDrivesTheKernelModule)
{
    kern::Kernel host("host");
    auto& nic0 = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    auto& nic1 = host.add_device<kern::PhysicalDevice>("eth1", net::MacAddr::from_id(2));
    std::uint64_t forwarded = 0;
    nic1.connect_wire([&](net::Packet&&) { ++forwarded; });

    auto& kdp = host.ovs_datapath();
    const auto p0 = kdp.add_port(nic0);
    const auto p1 = kdp.add_port(nic1);

    VSwitch vswitch(std::make_unique<DpifKernel>(kdp));
    Match m;
    m.key.in_port = p0;
    m.mask.bits.in_port = 0xffffffff;
    vswitch.ofproto().add_rule({.table = 0, .priority = 1, .match = m,
                                .actions = {OfAction::output(p1)}});

    // First packet: kernel upcall -> ofproto xlate -> kernel flow_put +
    // re-inject. Later packets hit the kernel flow table directly.
    nic0.rx_from_wire(udp64());
    EXPECT_EQ(vswitch.upcalls_handled(), 1u);
    EXPECT_EQ(forwarded, 1u);
    EXPECT_EQ(kdp.flow_count(), 1u);

    for (std::uint16_t s = 0; s < 50; ++s) nic0.rx_from_wire(udp64(s));
    EXPECT_EQ(forwarded, 51u);
    EXPECT_EQ(vswitch.upcalls_handled(), 1u); // megaflow covered them all
    EXPECT_EQ(kdp.hits(), 50u);
    // All datapath work was kernel softirq — no userspace PMD exists.
    EXPECT_GT(nic0.softirq_ctx(0).busy(sim::CpuClass::Softirq), 0);
}

TEST(DpifKernelTest, FlowFlushForcesReUpcall)
{
    kern::Kernel host("host");
    auto& nic0 = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    auto& nic1 = host.add_device<kern::PhysicalDevice>("eth1", net::MacAddr::from_id(2));
    nic1.connect_wire([](net::Packet&&) {});
    auto& kdp = host.ovs_datapath();
    const auto p0 = kdp.add_port(nic0);
    const auto p1 = kdp.add_port(nic1);

    VSwitch vswitch(std::make_unique<DpifKernel>(kdp));
    Match m;
    m.key.in_port = p0;
    m.mask.bits.in_port = 0xffffffff;
    vswitch.ofproto().add_rule({.table = 0, .priority = 1, .match = m,
                                .actions = {OfAction::output(p1)}});

    nic0.rx_from_wire(udp64());
    EXPECT_EQ(vswitch.upcalls_handled(), 1u);
    vswitch.dpif().flow_flush(); // e.g. a revalidation after rule changes
    EXPECT_EQ(vswitch.dpif().flow_count(), 0u);
    nic0.rx_from_wire(udp64());
    EXPECT_EQ(vswitch.upcalls_handled(), 2u);
}

TEST(DpifKernelTest, SameRulesDifferentDatapaths)
{
    // The same ofproto pipeline drives either datapath provider — the
    // architectural claim behind "OVS with AF_XDP needs no NSX changes"
    // (§4: NSX accesses features via OVSDB/OpenFlow, not the kernel).
    for (const bool use_kernel : {true, false}) {
        kern::Kernel host("host");
        auto& nic0 = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
        auto& nic1 = host.add_device<kern::PhysicalDevice>("eth1", net::MacAddr::from_id(2));
        std::uint64_t forwarded = 0;
        nic1.connect_wire([&](net::Packet&&) { ++forwarded; });

        std::unique_ptr<Dpif> dpif;
        std::uint32_t p0, p1;
        DpifNetdev* nd = nullptr;
        int pmd = -1;
        if (use_kernel) {
            auto& kdp = host.ovs_datapath();
            p0 = kdp.add_port(nic0);
            p1 = kdp.add_port(nic1);
            dpif = std::make_unique<DpifKernel>(kdp);
        } else {
            auto owned = std::make_unique<DpifNetdev>(host);
            nd = owned.get();
            p0 = nd->add_port(std::make_unique<NetdevAfxdp>(nic0));
            p1 = nd->add_port(std::make_unique<NetdevAfxdp>(nic1));
            pmd = nd->add_pmd("pmd0");
            nd->pmd_assign(pmd, p0, 0);
            dpif = std::move(owned);
        }
        VSwitch vswitch(std::move(dpif));
        Match m;
        m.key.in_port = p0;
        m.mask.bits.in_port = 0xffffffff;
        vswitch.ofproto().add_rule({.table = 0, .priority = 1, .match = m,
                                    .actions = {OfAction::output(p1)}});

        for (int i = 0; i < 10; ++i) nic0.rx_from_wire(udp64());
        if (nd) {
            while (nd->pmd_poll_once(pmd) > 0) {
            }
        }
        EXPECT_EQ(forwarded, 10u) << (use_kernel ? "kernel" : "afxdp");
    }
}

TEST(VhostChannelTest, RingFullDropsAreCounted)
{
    kern::Kernel host("host");
    kern::VhostUserChannel chan(host.costs(), {}, /*ring_size=*/4);
    sim::ExecContext guest("vcpu", sim::CpuClass::Guest);
    // The backend never polls: the guest's 5th packet finds no slot.
    for (int i = 0; i < 6; ++i) chan.guest_tx(udp64(), guest);
    EXPECT_EQ(chan.drops(), 2u);
    // Draining restores capacity.
    sim::ExecContext pmd("pmd", sim::CpuClass::User);
    while (chan.backend_rx(pmd)) {
    }
    EXPECT_TRUE(chan.guest_tx(udp64(), guest));
    EXPECT_EQ(chan.drops(), 2u);
}

TEST(VhostChannelTest, KickChargedOnlyForInterruptGuests)
{
    kern::Kernel host("host");
    kern::VirtioFeatures polling;
    polling.guest_polling = true;
    kern::VhostUserChannel poll_chan(host.costs(), polling);
    kern::VhostUserChannel irq_chan(host.costs(), {});
    poll_chan.set_guest_rx([](net::Packet&&, sim::ExecContext&) {});
    irq_chan.set_guest_rx([](net::Packet&&, sim::ExecContext&) {});

    sim::ExecContext c1("a", sim::CpuClass::User), c2("b", sim::CpuClass::User);
    poll_chan.backend_tx(udp64(), c1);
    irq_chan.backend_tx(udp64(), c2);
    EXPECT_GT(c2.total_busy(), c1.total_busy()); // the eventfd kick
}

} // namespace
} // namespace ovsx::ovs
