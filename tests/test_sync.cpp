// Concurrency-correctness toolchain tests: the sync primitives (epoch
// reclamation, capability-annotated mutexes) and the runtime lockset /
// lock-order checkers. Negative tests seed a real race and a real ABBA
// inversion through deterministic single-OS-thread replays (the
// logical-thread override seam), so the checkers must fire identically
// on every run — the determinism test pins that down by diffing two
// full replays.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "net/builder.h"
#include "ovs/ct.h"
#include "ovs/megaflow.h"
#include "san/lockset.h"
#include "san/report.h"
#include "sim/context.h"
#include "sync/epoch.h"
#include "sync/mutex.h"

namespace ovsx {
namespace {

using net::ipv4;
using san::ScopedCollect;
using san::ScopedHardened;

net::FlowKey key_for(std::uint16_t sport)
{
    net::UdpSpec spec;
    spec.src_ip = ipv4(10, 0, 0, 1);
    spec.dst_ip = ipv4(10, 0, 0, 2);
    spec.src_port = sport;
    spec.dst_port = 2000;
    net::Packet p = net::build_udp(spec);
    p.meta().in_port = 1;
    return net::parse_flow(p);
}

net::FlowMask exact_5tuple_mask() { return net::FlowMask::exact(); }

// ---- sync::Mutex primitives --------------------------------------------

TEST(SyncMutex, LockGuardExcludesConcurrentMutation)
{
    sync::Mutex mu{"test.counter"};
    std::uint64_t counter = 0;
    std::vector<std::thread> threads;
    constexpr int kThreads = 4;
    constexpr int kIters = 20000;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                sync::LockGuard guard(mu);
                ++counter;
            }
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(SyncMutex, SharedMutexAllowsParallelReaders)
{
    sync::SharedMutex mu{"test.rw"};
    std::atomic<int> inside{0};
    std::atomic<int> max_readers{0};
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            sync::SharedLockGuard guard(mu);
            const int now = inside.fetch_add(1) + 1;
            int seen = max_readers.load();
            while (now > seen && !max_readers.compare_exchange_weak(seen, now)) {
            }
            // Hold the shared lock until every reader is inside (bounded
            // spin, so a regression to exclusive locking fails the EXPECT
            // below instead of hanging the test).
            for (int spin = 0; spin < 200000 && inside.load() < kThreads; ++spin) {
                std::this_thread::yield();
            }
        });
    }
    for (auto& th : threads) th.join();
    // All four readers must have held the shared lock simultaneously.
    EXPECT_EQ(max_readers.load(), kThreads);
}

// ---- epoch-based reclamation -------------------------------------------

TEST(SyncEpoch, RetiredCallbackRunsAfterTwoAdvances)
{
    sync::EpochDomain dom("test.epoch");
    bool freed = false;
    dom.retire([&] { freed = true; });
    EXPECT_EQ(dom.pending(), 1u);
    dom.try_advance(); // epoch R+1: grace not yet proven
    EXPECT_FALSE(freed);
    dom.try_advance(); // epoch R+2: no reader can still see the object
    EXPECT_TRUE(freed);
    EXPECT_EQ(dom.pending(), 0u);
}

TEST(SyncEpoch, PinnedReaderBlocksAdvance)
{
    sync::EpochDomain dom("test.epoch");
    bool freed = false;
    {
        sync::EpochGuard guard(dom);
        EXPECT_TRUE(dom.this_thread_pinned());
        dom.retire([&] { freed = true; });
        const std::uint64_t before = dom.epoch();
        // A reader pinned at the current epoch E permits E -> E+1 (it
        // entered after the retire's unlink)...
        dom.try_advance();
        EXPECT_EQ(dom.epoch(), before + 1);
        // ...but blocks the second advance: the pin at E stalls E+1 ->
        // E+2, so the callback's grace period cannot complete.
        dom.try_advance();
        EXPECT_EQ(dom.epoch(), before + 1);
        EXPECT_FALSE(freed);
    }
    EXPECT_FALSE(dom.this_thread_pinned());
    dom.synchronize(); // unpinned: both advances go through
    EXPECT_TRUE(freed);
}

TEST(SyncEpoch, GuardsNestWithoutDoubleUnpin)
{
    sync::EpochDomain dom("test.epoch");
    {
        sync::EpochGuard outer(dom);
        {
            sync::EpochGuard inner(dom);
            EXPECT_TRUE(dom.this_thread_pinned());
        }
        // Inner guard released; outer still pins.
        EXPECT_TRUE(dom.this_thread_pinned());
    }
    EXPECT_FALSE(dom.this_thread_pinned());
}

TEST(SyncEpoch, MultiThreadedRetireStress)
{
    sync::EpochDomain dom("test.epoch.mt");
    std::atomic<std::uint64_t> freed{0};
    constexpr int kWriters = 2;
    constexpr int kReaders = 2;
    constexpr int kRetires = 500;
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    for (int r = 0; r < kReaders; ++r) {
        threads.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                sync::EpochGuard guard(dom);
                std::this_thread::yield();
            }
        });
    }
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&] {
            for (int i = 0; i < kRetires; ++i) {
                dom.retire([&] { freed.fetch_add(1, std::memory_order_relaxed); });
                dom.try_advance();
            }
        });
    }
    for (int w = 0; w < kWriters; ++w) threads[kReaders + w].join();
    stop.store(true);
    for (int r = 0; r < kReaders; ++r) threads[r].join();
    dom.synchronize();
    EXPECT_EQ(freed.load(), static_cast<std::uint64_t>(kWriters) * kRetires);
    EXPECT_EQ(dom.pending(), 0u);
}

// ---- lockset: clean paths stay silent ----------------------------------

TEST(Lockset, LockedTableHammeringIsSilent)
{
    ScopedHardened hardened;
    san::lockset::reset();
    ScopedCollect collect;
    ovs::MegaflowCache mfc;
    const net::FlowMask mask = exact_5tuple_mask();
    // Real threads through the locked public API: every access runs
    // under ovs.megaflow, so the candidate set never empties.
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < 200; ++i) {
                const auto key = key_for(static_cast<std::uint16_t>(t * 1000 + i + 1));
                mfc.insert(key, mask, {kern::OdpAction::output(1)});
                mfc.lookup(key);
            }
        });
    }
    for (auto& th : threads) th.join();
    // Worker-thread violations would abort (hardened, no collector on
    // those threads); reaching here plus an empty main-thread collector
    // means the clean path stayed silent.
    EXPECT_TRUE(collect.violations().empty());
    EXPECT_EQ(mfc.flow_count(), 4u * 200u);
    const auto st = san::lockset::stats();
    EXPECT_GT(st.acquisitions, 0u);
    EXPECT_GT(st.accesses, 0u);
}

TEST(Lockset, SingleThreadInitializationWithoutLocksIsSilent)
{
    ScopedHardened hardened;
    san::lockset::reset();
    ScopedCollect collect;
    // One logical thread touching an object without locks is the normal
    // init pattern (Eraser's first-thread grace): no refinement yet.
    san::lockset::ScopedThread t1(101);
    int obj = 0;
    for (int i = 0; i < 4; ++i) OVSX_SAN_ACCESS(obj);
    EXPECT_TRUE(collect.violations().empty());
}

// ---- lockset: seeded negatives must fire -------------------------------

TEST(Lockset, SeededUnguardedMegaflowProbeFiresLocksetRace)
{
    ScopedHardened hardened;
    san::lockset::reset();
    ScopedCollect collect;
    ovs::MegaflowCache mfc;
    const net::FlowMask mask = exact_5tuple_mask();
    {
        // Logical thread 1 uses the locked API (accesses under
        // ovs.megaflow)...
        san::lockset::ScopedThread t1(201);
        mfc.insert(key_for(1), mask, {kern::OdpAction::output(1)});
        mfc.lookup(key_for(1));
    }
    {
        // ...logical thread 2 probes through the deliberately unguarded
        // test seam: candidate set intersects to empty on a write.
        san::lockset::ScopedThread t2(202);
        (void)mfc.test_seam_unguarded_probe();
    }
    ASSERT_FALSE(collect.violations().empty());
    const auto& v = collect.violations()[0];
    EXPECT_EQ(v.checker, "lockset-race");
    EXPECT_NE(v.message.find("ovs.megaflow"), std::string::npos) << v.to_string();
}

TEST(Lockset, SeededRaceOnPlainObjectFires)
{
    ScopedHardened hardened;
    san::lockset::reset();
    ScopedCollect collect;
    sync::Mutex mu{"test.obj.mu"};
    int obj = 0;
    {
        san::lockset::ScopedThread t1(301);
        sync::LockGuard guard(mu);
        OVSX_SAN_ACCESS(obj);
    }
    {
        san::lockset::ScopedThread t2(302);
        OVSX_SAN_ACCESS(obj); // no lock held: C(obj) -> {} on a write
    }
    ASSERT_EQ(collect.violations().size(), 1u);
    EXPECT_EQ(collect.violations()[0].checker, "lockset-race");
}

TEST(Lockset, RaceReportedOncePerObject)
{
    ScopedHardened hardened;
    san::lockset::reset();
    ScopedCollect collect;
    int obj = 0;
    {
        san::lockset::ScopedThread t1(401);
        OVSX_SAN_ACCESS(obj);
    }
    {
        san::lockset::ScopedThread t2(402);
        OVSX_SAN_ACCESS(obj);
        OVSX_SAN_ACCESS(obj);
        OVSX_SAN_ACCESS(obj);
    }
    EXPECT_EQ(collect.violations().size(), 1u);
}

TEST(Lockset, SeededAbbaFiresLockOrderInversion)
{
    ScopedHardened hardened;
    san::lockset::reset();
    ScopedCollect collect;
    sync::Mutex a{"test.order.A"};
    sync::Mutex b{"test.order.B"};
    // Sequential replay of the classic ABBA on one thread: both locks
    // are free at each step so nothing actually deadlocks, but the
    // acquisition DAG still records A->B then B->A and closes a cycle.
    {
        sync::LockGuard ga(a);
        sync::LockGuard gb(b);
    }
    EXPECT_TRUE(collect.violations().empty());
    {
        sync::LockGuard gb(b);
        sync::LockGuard ga(a); // inversion: edge B->A closes the cycle
    }
    ASSERT_FALSE(collect.violations().empty());
    const auto& v = collect.violations()[0];
    EXPECT_EQ(v.checker, "lock-order-inversion");
    EXPECT_NE(v.message.find("test.order.A"), std::string::npos) << v.to_string();
    EXPECT_NE(v.message.find("test.order.B"), std::string::npos) << v.to_string();
}

TEST(Lockset, RecursiveAcquireFires)
{
    ScopedHardened hardened;
    san::lockset::reset();
    ScopedCollect collect;
    // Feed the acquisition stream directly: actually double-locking a
    // sync::Mutex would deadlock the test for real.
    san::lockset::on_acquire(9001, "test.recursive", true);
    san::lockset::on_acquire(9001, "test.recursive", true);
    san::lockset::on_release(9001);
    san::lockset::on_release(9001);
    ASSERT_FALSE(collect.violations().empty());
    EXPECT_EQ(collect.violations()[0].checker, "recursive-acquire");
}

// ---- determinism: identical replay, identical violations ---------------

std::vector<std::string> run_seeded_scenario()
{
    san::lockset::reset();
    ScopedCollect collect;
    sync::Mutex a{"det.A"};
    sync::Mutex b{"det.B"};
    int obj = 0;
    {
        san::lockset::ScopedThread t1(501);
        sync::LockGuard guard(a);
        OVSX_SAN_ACCESS(obj);
    }
    {
        san::lockset::ScopedThread t2(502);
        OVSX_SAN_ACCESS(obj);
    }
    {
        sync::LockGuard ga(a);
        sync::LockGuard gb(b);
    }
    {
        sync::LockGuard gb(b);
        sync::LockGuard ga(a);
    }
    std::vector<std::string> out;
    for (const auto& v : collect.violations()) out.push_back(v.checker + ": " + v.message);
    std::sort(out.begin(), out.end());
    return out;
}

TEST(Lockset, DeterministicReplayYieldsIdenticalViolations)
{
    ScopedHardened hardened;
    const auto first = run_seeded_scenario();
    const auto second = run_seeded_scenario();
    ASSERT_FALSE(first.empty());
    // Both the race and the inversion, byte-identical across runs.
    EXPECT_EQ(first, second);
    bool has_race = false;
    bool has_inversion = false;
    for (const auto& s : first) {
        if (s.rfind("lockset-race", 0) == 0) has_race = true;
        if (s.rfind("lock-order-inversion", 0) == 0) has_inversion = true;
    }
    EXPECT_TRUE(has_race);
    EXPECT_TRUE(has_inversion);
}

// ---- gating ------------------------------------------------------------

TEST(Lockset, NoTrackingWhenHardenedOff)
{
    san::set_hardened(false);
    san::lockset::reset();
    ScopedCollect collect;
    sync::Mutex mu{"test.off"};
    int obj = 0;
    {
        sync::LockGuard guard(mu);
        OVSX_SAN_ACCESS(obj);
    }
    {
        san::lockset::ScopedThread t2(601);
        OVSX_SAN_ACCESS(obj);
    }
    EXPECT_TRUE(collect.violations().empty());
    const auto st = san::lockset::stats();
    EXPECT_EQ(st.accesses, 0u);
    EXPECT_EQ(st.tracked_objects, 0u);
}

// ---- cross-table: conntrack under the locked API stays silent ----------

TEST(Lockset, ConntrackProcessUnderLockIsSilent)
{
    ScopedHardened hardened;
    san::lockset::reset();
    ScopedCollect collect;
    ovs::UserspaceConntrack ct;
    sim::ExecContext ctx{"pmd", sim::CpuClass::User};
    kern::CtSpec spec;
    spec.zone = 1;
    spec.commit = true;
    for (std::uint16_t i = 1; i <= 8; ++i) {
        net::UdpSpec us;
        us.src_ip = ipv4(10, 0, 0, 1);
        us.dst_ip = ipv4(10, 0, 0, 2);
        us.src_port = i;
        us.dst_port = 53;
        net::Packet pkt = net::build_udp(us);
        const net::FlowKey key = net::parse_flow(pkt);
        ct.process(pkt, key, spec, ctx);
    }
    EXPECT_EQ(ct.size(), 8u);
    EXPECT_TRUE(collect.violations().empty());
}

} // namespace
} // namespace ovsx
