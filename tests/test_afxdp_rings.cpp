#include <gtest/gtest.h>

#include <thread>

#include "afxdp/ring.h"
#include "afxdp/umem.h"
#include "afxdp/xsk.h"
#include "net/builder.h"

namespace ovsx::afxdp {
namespace {

TEST(SpscRing, BasicProduceConsume)
{
    SpscRing<int> ring(8);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), 8u);
    EXPECT_TRUE(ring.produce(1));
    EXPECT_TRUE(ring.produce(2));
    EXPECT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring.consume().value(), 1);
    EXPECT_EQ(ring.consume().value(), 2);
    EXPECT_FALSE(ring.consume().has_value());
}

TEST(SpscRing, FullRingRejects)
{
    SpscRing<int> ring(4);
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.produce(i));
    EXPECT_TRUE(ring.full());
    EXPECT_FALSE(ring.produce(99));
    EXPECT_EQ(ring.consume().value(), 0);
    EXPECT_TRUE(ring.produce(99)); // room again
}

TEST(SpscRing, RequiresPowerOfTwo)
{
    EXPECT_THROW(SpscRing<int>(3), std::invalid_argument);
    EXPECT_THROW(SpscRing<int>(0), std::invalid_argument);
    EXPECT_NO_THROW(SpscRing<int>(16));
}

TEST(SpscRing, BatchOperations)
{
    SpscRing<int> ring(8);
    const int items[6] = {1, 2, 3, 4, 5, 6};
    EXPECT_EQ(ring.produce_batch(items, 6), 6u);
    EXPECT_EQ(ring.produce_batch(items, 6), 2u); // only room for 2 more
    int out[8] = {};
    EXPECT_EQ(ring.consume_batch(out, 8), 8u);
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[5], 6);
    EXPECT_EQ(out[6], 1); // wrapped batch
}

TEST(SpscRing, IndexWraparound)
{
    SpscRing<int> ring(4);
    for (int round = 0; round < 1000; ++round) {
        ASSERT_TRUE(ring.produce(round));
        ASSERT_EQ(ring.consume().value(), round);
    }
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, ConcurrentProducerConsumer)
{
    // Real two-thread stress: every item must arrive exactly once, in order.
    SpscRing<std::uint64_t> ring(1024);
    constexpr std::uint64_t kCount = 50000;
    std::thread producer([&] {
        for (std::uint64_t i = 0; i < kCount;) {
            if (ring.produce(i)) {
                ++i;
            } else {
                std::this_thread::yield();
            }
        }
    });
    std::uint64_t expected = 0;
    while (expected < kCount) {
        if (auto v = ring.consume()) {
            ASSERT_EQ(*v, expected);
            ++expected;
        } else {
            std::this_thread::yield();
        }
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

TEST(Umem, GeometryAndFrames)
{
    Umem umem(64, 2048);
    EXPECT_EQ(umem.chunk_count(), 64u);
    EXPECT_TRUE(umem.valid(0));
    EXPECT_TRUE(umem.valid(2048));
    EXPECT_FALSE(umem.valid(1));          // not chunk aligned
    EXPECT_FALSE(umem.valid(64 * 2048));  // past the end
    auto f = umem.frame(2048);
    EXPECT_EQ(f.size(), 2048u);
    f[0] = 0xab;
    EXPECT_EQ(umem.frame(2048)[0], 0xab);
    EXPECT_THROW(umem.frame(3), std::out_of_range);
}

TEST(Umem, BadGeometryRejected)
{
    EXPECT_THROW(Umem(0, 2048), std::invalid_argument);
    EXPECT_THROW(Umem(16, 32), std::invalid_argument);
}

class XskTest : public ::testing::Test {
protected:
    net::Packet sample()
    {
        net::UdpSpec spec;
        spec.src_ip = net::ipv4(1, 1, 1, 1);
        spec.dst_ip = net::ipv4(2, 2, 2, 2);
        spec.src_port = 10;
        spec.dst_port = 20;
        return net::build_udp(spec);
    }

    Umem umem{64};
    XskSocket sock{umem};
    sim::ExecContext softirq{"softirq", sim::CpuClass::Softirq};
};

TEST_F(XskTest, DeliverRequiresFillFrames)
{
    // No fill frames posted: delivery fails (drop).
    EXPECT_FALSE(sock.kernel_deliver(sample(), sim::CostModel::baseline(), softirq));
    EXPECT_EQ(sock.rx_dropped_no_frame, 1u);

    // Post a frame and retry.
    umem.fill().produce(0);
    EXPECT_TRUE(sock.kernel_deliver(sample(), sim::CostModel::baseline(), softirq));
    EXPECT_EQ(sock.rx_delivered, 1u);

    auto desc = sock.rx().consume();
    ASSERT_TRUE(desc.has_value());
    EXPECT_EQ(desc->addr, 0u);
    EXPECT_EQ(desc->len, sample().size());
    // The frame holds the packet bytes.
    auto frame = umem.frame(desc->addr);
    const auto pkt = sample();
    EXPECT_EQ(0, std::memcmp(frame.data(), pkt.data(), pkt.size()));
}

TEST_F(XskTest, TxCollectRoundTrip)
{
    // Userspace posts a TX descriptor...
    const auto pkt = sample();
    auto frame = umem.frame(4 * 2048);
    std::memcpy(frame.data(), pkt.data(), pkt.size());
    sock.tx().produce({4 * 2048, static_cast<std::uint32_t>(pkt.size()), 0});

    // ...the kernel collects and completes it.
    auto collected = sock.kernel_collect_tx(sim::CostModel::baseline(), softirq);
    ASSERT_TRUE(collected.has_value());
    EXPECT_EQ(collected->size(), pkt.size());
    EXPECT_EQ(0, std::memcmp(collected->data(), pkt.data(), pkt.size()));
    EXPECT_EQ(umem.comp().consume().value(), 4u * 2048u);
    EXPECT_EQ(sock.tx_completed, 1u);
    EXPECT_FALSE(sock.kernel_collect_tx(sim::CostModel::baseline(), softirq).has_value());
}

TEST_F(XskTest, CopyModeChargesMore)
{
    XskSocket zc{umem, 2048, BindMode::ZeroCopy};
    XskSocket cp{umem, 2048, BindMode::Copy};
    sim::ExecContext c1{"s1", sim::CpuClass::Softirq};
    sim::ExecContext c2{"s2", sim::CpuClass::Softirq};
    umem.fill().produce(0);
    zc.kernel_deliver(sample(), sim::CostModel::baseline(), c1);
    umem.fill().produce(2048);
    cp.kernel_deliver(sample(), sim::CostModel::baseline(), c2);
    EXPECT_GT(c2.total_busy(), c1.total_busy());
}

} // namespace
} // namespace ovsx::afxdp
