#include <gtest/gtest.h>

#include "gen/ct_corpus.h"
#include "kern/conntrack.h"
#include "net/headers.h"
#include "net/builder.h"

namespace ovsx::kern {
namespace {

using net::ipv4;

class ConntrackTest : public ::testing::Test {
protected:
    net::Packet packet(std::uint32_t src, std::uint32_t dst, std::uint16_t sport,
                       std::uint16_t dport, std::uint8_t flags = net::kTcpAck)
    {
        net::TcpSpec spec;
        spec.src_ip = src;
        spec.dst_ip = dst;
        spec.src_port = sport;
        spec.dst_port = dport;
        spec.flags = flags;
        return net::build_tcp(spec);
    }

    CtResult run(net::Packet& pkt, std::uint16_t zone, bool commit)
    {
        const auto key = net::parse_flow(pkt);
        return ct.process(pkt, key, zone, commit, ctx);
    }

    Conntrack ct;
    sim::ExecContext ctx{"softirq", sim::CpuClass::Softirq};
};

TEST_F(ConntrackTest, NewThenEstablished)
{
    auto p1 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    auto r1 = run(p1, 0, /*commit=*/true);
    EXPECT_TRUE(r1.state & net::kCtStateTracked);
    EXPECT_TRUE(r1.state & net::kCtStateNew);
    EXPECT_FALSE(r1.state & net::kCtStateEstablished);
    EXPECT_EQ(ct.size(), 1u);

    auto p2 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80);
    auto r2 = run(p2, 0, false);
    EXPECT_TRUE(r2.state & net::kCtStateEstablished);
    EXPECT_FALSE(r2.state & net::kCtStateNew);
    EXPECT_EQ(ct.size(), 1u); // same connection
}

TEST_F(ConntrackTest, ReplyDirectionIsRecognized)
{
    auto p1 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    run(p1, 0, true);
    auto p2 = packet(ipv4(2, 2, 2, 2), ipv4(1, 1, 1, 1), 80, 1000, net::kTcpSyn | net::kTcpAck);
    auto r2 = run(p2, 0, false);
    EXPECT_TRUE(r2.state & net::kCtStateReply);
    EXPECT_TRUE(r2.state & net::kCtStateEstablished);
    EXPECT_EQ(ct.size(), 1u);
}

TEST_F(ConntrackTest, UncommittedStaysNew)
{
    auto p1 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    run(p1, 0, /*commit=*/false);
    auto p2 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80);
    auto r2 = run(p2, 0, false);
    // Without commit the connection is never confirmed -> still NEW.
    EXPECT_TRUE(r2.state & net::kCtStateNew);
}

TEST_F(ConntrackTest, ZonesSeparateConnections)
{
    auto p1 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    run(p1, /*zone=*/1, true);
    auto p2 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    auto r2 = run(p2, /*zone=*/2, true);
    EXPECT_TRUE(r2.state & net::kCtStateNew); // zone 2 has no such connection
    EXPECT_EQ(ct.size(), 2u);
    EXPECT_EQ(ct.zone_count(1), 1u);
    EXPECT_EQ(ct.zone_count(2), 1u);
}

TEST_F(ConntrackTest, ZoneLimitEnforced)
{
    // The per-zone connection limit feature the paper cites as a 600-line
    // kernel patch plus 700 lines of backports (§2.1.1).
    ct.set_zone_limit(5, 2);
    for (int i = 0; i < 2; ++i) {
        auto p = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), static_cast<std::uint16_t>(1000 + i),
                        80, net::kTcpSyn);
        auto r = run(p, 5, true);
        EXPECT_TRUE(r.state & net::kCtStateNew);
    }
    auto p = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1002, 80, net::kTcpSyn);
    auto r = run(p, 5, true);
    EXPECT_TRUE(r.state & net::kCtStateInvalid);
    EXPECT_EQ(ct.zone_count(5), 2u);
    // Existing connections keep working.
    auto p2 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80);
    EXPECT_TRUE(run(p2, 5, false).state & net::kCtStateEstablished);
}

TEST_F(ConntrackTest, NonTrackableProtocolIsInvalid)
{
    net::Packet p = net::build_arp(true, net::MacAddr::from_id(1), ipv4(1, 1, 1, 1),
                                   net::MacAddr(), ipv4(2, 2, 2, 2));
    auto key = net::parse_flow(p);
    key.nw_proto = 47; // GRE
    auto r = ct.process(p, key, 0, true, ctx);
    EXPECT_TRUE(r.state & net::kCtStateInvalid);
    EXPECT_EQ(ct.size(), 0u);
}

TEST_F(ConntrackTest, LaterFragmentsAreInvalid)
{
    auto p = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80);
    auto key = net::parse_flow(p);
    key.nw_frag = net::kFragAny | net::kFragLater;
    auto r = ct.process(p, key, 0, true, ctx);
    EXPECT_TRUE(r.state & net::kCtStateInvalid);
}

TEST_F(ConntrackTest, ExpiryRemovesIdleConnections)
{
    auto p1 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    auto key = net::parse_flow(p1);
    ct.process(p1, key, 0, true, ctx, /*now=*/100);
    auto p2 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 2000, 80, net::kTcpSyn);
    auto key2 = net::parse_flow(p2);
    ct.process(p2, key2, 0, true, ctx, /*now=*/5000);
    EXPECT_EQ(ct.size(), 2u);
    EXPECT_EQ(ct.expire_idle(/*cutoff=*/1000), 1u);
    EXPECT_EQ(ct.size(), 1u);
    EXPECT_EQ(ct.zone_count(0), 1u);
    // The expired tuple is gone from the index too.
    EXPECT_EQ(ct.find(CtTuple::from_key(key, 0)), nullptr);
    EXPECT_NE(ct.find(CtTuple::from_key(key2, 0)), nullptr);
}

TEST_F(ConntrackTest, MarkIsVisibleToSubsequentPackets)
{
    auto p1 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    auto r1 = run(p1, 0, true);
    ASSERT_NE(r1.entry, nullptr);
    r1.entry->mark = 0xbeef;

    auto p2 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80);
    run(p2, 0, false);
    EXPECT_EQ(p2.meta().ct_mark, 0xbeefu);
}

TEST_F(ConntrackTest, MetadataWrittenToPacket)
{
    auto p = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    run(p, 7, true);
    EXPECT_EQ(p.meta().ct_zone, 7);
    EXPECT_TRUE(p.meta().ct_state & net::kCtStateTracked);
}

TEST_F(ConntrackTest, RstMidHandshakeTearsDownEntry)
{
    auto seq = gen::ct_rst_mid_handshake();
    auto r1 = run(seq[0], 0, true); // SYN
    EXPECT_TRUE(r1.state & net::kCtStateNew);
    EXPECT_EQ(ct.size(), 1u);

    auto r2 = run(seq[1], 0, false); // RST from the server
    EXPECT_TRUE(r2.state & net::kCtStateReply);
    EXPECT_EQ(ct.size(), 0u); // entry gone

    auto r3 = run(seq[2], 0, true); // fresh SYN on the same tuple
    EXPECT_TRUE(r3.state & net::kCtStateNew);
    EXPECT_FALSE(r3.state & net::kCtStateEstablished);
    EXPECT_EQ(ct.size(), 1u);
}

TEST_F(ConntrackTest, RstOnUnknownTupleIsInvalid)
{
    auto p = packet(ipv4(9, 9, 9, 9), ipv4(8, 8, 8, 8), 5555, 80, net::kTcpRst);
    auto r = run(p, 0, false);
    EXPECT_TRUE(r.state & net::kCtStateInvalid);
    EXPECT_EQ(ct.size(), 0u);
}

TEST_F(ConntrackTest, IcmpErrorRelatedToTrackedConnection)
{
    auto seq = gen::ct_icmp_related();
    auto r1 = run(seq[0], 0, true); // the UDP datagram being cited
    ASSERT_NE(r1.entry, nullptr);
    const std::uint64_t pkts_before = r1.entry->packets;

    auto r2 = run(seq[1], 0, false); // ICMP port-unreachable citing it
    EXPECT_TRUE(r2.state & net::kCtStateRelated);
    EXPECT_FALSE(r2.state & net::kCtStateNew);
    EXPECT_FALSE(r2.state & net::kCtStateInvalid);
    // Related errors must not bump the cited connection's counters.
    const gen::CtCorpusTuple t;
    const auto* e = ct.find(CtTuple{t.client_ip, t.server_ip, t.client_port, t.server_port, 17, 0});
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->packets, pkts_before);
}

TEST_F(ConntrackTest, IcmpErrorCitingUnknownTupleIsInvalid)
{
    auto p = gen::ct_icmp_unrelated();
    auto r = run(p, 0, false);
    EXPECT_TRUE(r.state & net::kCtStateInvalid);
    EXPECT_FALSE(r.state & net::kCtStateRelated);
}

TEST_F(ConntrackTest, ExpiryUnderVirtualTime)
{
    auto p1 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    ct.process(p1, net::parse_flow(p1), 0, true, ctx, 1'000'000);
    auto p2 = packet(ipv4(3, 3, 3, 3), ipv4(4, 4, 4, 4), 1001, 80, net::kTcpSyn);
    ct.process(p2, net::parse_flow(p2), 0, true, ctx, 10'000'000);
    EXPECT_EQ(ct.size(), 2u);

    // Only the first connection is idle past the cutoff.
    EXPECT_EQ(ct.expire_idle(5'000'000), 1u);
    EXPECT_EQ(ct.size(), 1u);
    EXPECT_EQ(ct.zone_count(0), 1u);
    EXPECT_EQ(ct.expire_idle(20'000'000), 1u);
    EXPECT_TRUE(ct.snapshot().empty());
}

} // namespace
} // namespace ovsx::kern
