#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gen/ct_corpus.h"
#include "kern/conntrack.h"
#include "net/headers.h"
#include "net/builder.h"

namespace ovsx::kern {
namespace {

using net::ipv4;

class ConntrackTest : public ::testing::Test {
protected:
    net::Packet packet(std::uint32_t src, std::uint32_t dst, std::uint16_t sport,
                       std::uint16_t dport, std::uint8_t flags = net::kTcpAck)
    {
        net::TcpSpec spec;
        spec.src_ip = src;
        spec.dst_ip = dst;
        spec.src_port = sport;
        spec.dst_port = dport;
        spec.flags = flags;
        return net::build_tcp(spec);
    }

    CtResult run(net::Packet& pkt, std::uint16_t zone, bool commit)
    {
        const auto key = net::parse_flow(pkt);
        return ct.process(pkt, key, zone, commit, ctx);
    }

    Conntrack ct;
    sim::ExecContext ctx{"softirq", sim::CpuClass::Softirq};
};

TEST_F(ConntrackTest, NewThenEstablished)
{
    auto p1 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    auto r1 = run(p1, 0, /*commit=*/true);
    EXPECT_TRUE(r1.state & net::kCtStateTracked);
    EXPECT_TRUE(r1.state & net::kCtStateNew);
    EXPECT_FALSE(r1.state & net::kCtStateEstablished);
    EXPECT_EQ(ct.size(), 1u);

    auto p2 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80);
    auto r2 = run(p2, 0, false);
    EXPECT_TRUE(r2.state & net::kCtStateEstablished);
    EXPECT_FALSE(r2.state & net::kCtStateNew);
    EXPECT_EQ(ct.size(), 1u); // same connection
}

TEST_F(ConntrackTest, ReplyDirectionIsRecognized)
{
    auto p1 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    run(p1, 0, true);
    auto p2 = packet(ipv4(2, 2, 2, 2), ipv4(1, 1, 1, 1), 80, 1000, net::kTcpSyn | net::kTcpAck);
    auto r2 = run(p2, 0, false);
    EXPECT_TRUE(r2.state & net::kCtStateReply);
    EXPECT_TRUE(r2.state & net::kCtStateEstablished);
    EXPECT_EQ(ct.size(), 1u);
}

TEST_F(ConntrackTest, UncommittedStaysNew)
{
    auto p1 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    run(p1, 0, /*commit=*/false);
    auto p2 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80);
    auto r2 = run(p2, 0, false);
    // Without commit the connection is never confirmed -> still NEW.
    EXPECT_TRUE(r2.state & net::kCtStateNew);
}

TEST_F(ConntrackTest, ZonesSeparateConnections)
{
    auto p1 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    run(p1, /*zone=*/1, true);
    auto p2 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    auto r2 = run(p2, /*zone=*/2, true);
    EXPECT_TRUE(r2.state & net::kCtStateNew); // zone 2 has no such connection
    EXPECT_EQ(ct.size(), 2u);
    EXPECT_EQ(ct.zone_count(1), 1u);
    EXPECT_EQ(ct.zone_count(2), 1u);
}

TEST_F(ConntrackTest, ZoneLimitEnforced)
{
    // The per-zone connection limit feature the paper cites as a 600-line
    // kernel patch plus 700 lines of backports (§2.1.1).
    ct.set_zone_limit(5, 2);
    for (int i = 0; i < 2; ++i) {
        auto p = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), static_cast<std::uint16_t>(1000 + i),
                        80, net::kTcpSyn);
        auto r = run(p, 5, true);
        EXPECT_TRUE(r.state & net::kCtStateNew);
    }
    auto p = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1002, 80, net::kTcpSyn);
    auto r = run(p, 5, true);
    EXPECT_TRUE(r.state & net::kCtStateInvalid);
    EXPECT_EQ(ct.zone_count(5), 2u);
    // Existing connections keep working.
    auto p2 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80);
    EXPECT_TRUE(run(p2, 5, false).state & net::kCtStateEstablished);
}

TEST_F(ConntrackTest, NonTrackableProtocolIsInvalid)
{
    net::Packet p = net::build_arp(true, net::MacAddr::from_id(1), ipv4(1, 1, 1, 1),
                                   net::MacAddr(), ipv4(2, 2, 2, 2));
    auto key = net::parse_flow(p);
    key.nw_proto = 47; // GRE
    auto r = ct.process(p, key, 0, true, ctx);
    EXPECT_TRUE(r.state & net::kCtStateInvalid);
    EXPECT_EQ(ct.size(), 0u);
}

TEST_F(ConntrackTest, LaterFragmentsAreInvalid)
{
    auto p = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80);
    auto key = net::parse_flow(p);
    key.nw_frag = net::kFragAny | net::kFragLater;
    auto r = ct.process(p, key, 0, true, ctx);
    EXPECT_TRUE(r.state & net::kCtStateInvalid);
}

TEST_F(ConntrackTest, ExpiryRemovesIdleConnections)
{
    auto p1 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    auto key = net::parse_flow(p1);
    ct.process(p1, key, 0, true, ctx, /*now=*/100);
    auto p2 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 2000, 80, net::kTcpSyn);
    auto key2 = net::parse_flow(p2);
    ct.process(p2, key2, 0, true, ctx, /*now=*/5000);
    EXPECT_EQ(ct.size(), 2u);
    EXPECT_EQ(ct.expire_idle(/*cutoff=*/1000), 1u);
    EXPECT_EQ(ct.size(), 1u);
    EXPECT_EQ(ct.zone_count(0), 1u);
    // The expired tuple is gone from the index too.
    EXPECT_EQ(ct.find(CtTuple::from_key(key, 0)), nullptr);
    EXPECT_NE(ct.find(CtTuple::from_key(key2, 0)), nullptr);
}

TEST_F(ConntrackTest, MarkIsVisibleToSubsequentPackets)
{
    auto p1 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    auto r1 = run(p1, 0, true);
    ASSERT_NE(r1.entry, nullptr);
    r1.entry->mark = 0xbeef;

    auto p2 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80);
    run(p2, 0, false);
    EXPECT_EQ(p2.meta().ct_mark, 0xbeefu);
}

TEST_F(ConntrackTest, MetadataWrittenToPacket)
{
    auto p = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    run(p, 7, true);
    EXPECT_EQ(p.meta().ct_zone, 7);
    EXPECT_TRUE(p.meta().ct_state & net::kCtStateTracked);
}

TEST_F(ConntrackTest, RstMidHandshakeTearsDownEntry)
{
    auto seq = gen::ct_rst_mid_handshake();
    auto r1 = run(seq[0], 0, true); // SYN
    EXPECT_TRUE(r1.state & net::kCtStateNew);
    EXPECT_EQ(ct.size(), 1u);

    auto r2 = run(seq[1], 0, false); // RST from the server
    EXPECT_TRUE(r2.state & net::kCtStateReply);
    EXPECT_EQ(ct.size(), 0u); // entry gone

    auto r3 = run(seq[2], 0, true); // fresh SYN on the same tuple
    EXPECT_TRUE(r3.state & net::kCtStateNew);
    EXPECT_FALSE(r3.state & net::kCtStateEstablished);
    EXPECT_EQ(ct.size(), 1u);
}

TEST_F(ConntrackTest, RstOnUnknownTupleIsInvalid)
{
    auto p = packet(ipv4(9, 9, 9, 9), ipv4(8, 8, 8, 8), 5555, 80, net::kTcpRst);
    auto r = run(p, 0, false);
    EXPECT_TRUE(r.state & net::kCtStateInvalid);
    EXPECT_EQ(ct.size(), 0u);
}

TEST_F(ConntrackTest, IcmpErrorRelatedToTrackedConnection)
{
    auto seq = gen::ct_icmp_related();
    auto r1 = run(seq[0], 0, true); // the UDP datagram being cited
    ASSERT_NE(r1.entry, nullptr);
    const std::uint64_t pkts_before = r1.entry->packets;

    auto r2 = run(seq[1], 0, false); // ICMP port-unreachable citing it
    EXPECT_TRUE(r2.state & net::kCtStateRelated);
    EXPECT_FALSE(r2.state & net::kCtStateNew);
    EXPECT_FALSE(r2.state & net::kCtStateInvalid);
    // Related errors must not bump the cited connection's counters.
    const gen::CtCorpusTuple t;
    const auto* e = ct.find(CtTuple{t.client_ip, t.server_ip, t.client_port, t.server_port, 17, 0});
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->packets, pkts_before);
}

TEST_F(ConntrackTest, IcmpErrorCitingUnknownTupleIsInvalid)
{
    auto p = gen::ct_icmp_unrelated();
    auto r = run(p, 0, false);
    EXPECT_TRUE(r.state & net::kCtStateInvalid);
    EXPECT_FALSE(r.state & net::kCtStateRelated);
}

TEST_F(ConntrackTest, ExpiryUnderVirtualTime)
{
    auto p1 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    ct.process(p1, net::parse_flow(p1), 0, true, ctx, 1'000'000);
    auto p2 = packet(ipv4(3, 3, 3, 3), ipv4(4, 4, 4, 4), 1001, 80, net::kTcpSyn);
    ct.process(p2, net::parse_flow(p2), 0, true, ctx, 10'000'000);
    EXPECT_EQ(ct.size(), 2u);

    // Only the first connection is idle past the cutoff.
    EXPECT_EQ(ct.expire_idle(5'000'000), 1u);
    EXPECT_EQ(ct.size(), 1u);
    EXPECT_EQ(ct.zone_count(0), 1u);
    EXPECT_EQ(ct.expire_idle(20'000'000), 1u);
    EXPECT_TRUE(ct.snapshot().empty());
}

// ---- NAT ----------------------------------------------------------------

TEST_F(ConntrackTest, SnatRewritesAndUnNats)
{
    kern::CtSpec nat;
    nat.zone = 1;
    nat.commit = true;
    nat.nat = NatSpec::src(ipv4(5, 5, 5, 5));

    auto p1 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    ct.process(p1, net::parse_flow(p1), nat, ctx);
    EXPECT_EQ(net::parse_flow(p1).nw_src, ipv4(5, 5, 5, 5));
    EXPECT_TRUE(net::verify_l4_csum(p1, 14));

    // Reply arrives addressed to the NAT ip; conntrack restores it.
    kern::CtSpec check{.zone = 1, .commit = false};
    auto p2 = packet(ipv4(2, 2, 2, 2), ipv4(5, 5, 5, 5), 80, 1000, net::kTcpSyn | net::kTcpAck);
    const auto r = ct.process(p2, net::parse_flow(p2), check, ctx);
    EXPECT_TRUE(r.state & net::kCtStateReply);
    EXPECT_EQ(net::parse_flow(p2).nw_dst, ipv4(1, 1, 1, 1));
    EXPECT_TRUE(net::verify_l4_csum(p2, 14));
}

TEST_F(ConntrackTest, DnatRewritesDestination)
{
    kern::CtSpec nat;
    nat.zone = 2;
    nat.commit = true;
    nat.nat = NatSpec::dst(ipv4(10, 9, 9, 9), 8080);

    auto p1 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    ct.process(p1, net::parse_flow(p1), nat, ctx);
    const auto k1 = net::parse_flow(p1);
    EXPECT_EQ(k1.nw_dst, ipv4(10, 9, 9, 9));
    EXPECT_EQ(k1.tp_dst, 8080);

    kern::CtSpec check{.zone = 2, .commit = false};
    auto p2 = packet(ipv4(10, 9, 9, 9), ipv4(1, 1, 1, 1), 8080, 1000, net::kTcpAck);
    const auto r = ct.process(p2, net::parse_flow(p2), check, ctx);
    EXPECT_TRUE(r.state & net::kCtStateReply);
    const auto k2 = net::parse_flow(p2);
    EXPECT_EQ(k2.nw_src, ipv4(2, 2, 2, 2));
    EXPECT_EQ(k2.tp_src, 80);
}

TEST_F(ConntrackTest, NatPortRangeAllocatesDeterministically)
{
    kern::CtSpec nat;
    nat.commit = true;
    nat.nat = NatSpec::src(ipv4(5, 5, 5, 5), 40000, 40001);

    // Same server, different clients: each new connection takes the
    // first free port of the range, in order.
    auto p1 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    ct.process(p1, net::parse_flow(p1), nat, ctx);
    EXPECT_EQ(net::parse_flow(p1).tp_src, 40000);
    auto p2 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1001, 80, net::kTcpSyn);
    ct.process(p2, net::parse_flow(p2), nat, ctx);
    EXPECT_EQ(net::parse_flow(p2).tp_src, 40001);

    // Range exhausted: untrackable, and nothing is inserted.
    auto p3 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1002, 80, net::kTcpSyn);
    const auto r3 = ct.process(p3, net::parse_flow(p3), nat, ctx);
    EXPECT_TRUE(r3.state & net::kCtStateInvalid);
    EXPECT_EQ(ct.size(), 2u);
    EXPECT_EQ(ct.zone_count(0), 2u);
    EXPECT_EQ(ct.nat_binding_count(), 2u);
}

// The satellite bug: expiry used to erase orig.reversed() from the
// index, which for a NATed connection is NOT the reply tuple — the
// translated tuple (and its allocated port) leaked forever. Expiry, RST
// teardown and flush must all release the port for reallocation, and
// the san table audit must agree at every step.
TEST_F(ConntrackTest, NatPortReleasedOnExpiryRstAndFlush)
{
    san::ScopedHardened hardened;
    san::ScopedCollect collect;
    kern::CtSpec nat;
    nat.commit = true;
    nat.nat = NatSpec::src(ipv4(5, 5, 5, 5), 40000, 40000); // width-1 range

    auto p1 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    ct.process(p1, net::parse_flow(p1), nat, ctx, /*now=*/1000);
    ct.san_check(OVSX_SITE);

    // While the binding is live, the sole port is taken.
    auto p2 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1001, 80, net::kTcpSyn);
    EXPECT_TRUE(ct.process(p2, net::parse_flow(p2), nat, ctx, 1500).state &
                net::kCtStateInvalid);

    // Expiry must drop the translated reply tuple from the index...
    EXPECT_EQ(ct.expire_idle(2000), 1u);
    ct.san_check(OVSX_SITE);
    EXPECT_EQ(ct.nat_binding_count(), 0u);
    EXPECT_EQ(ct.find(CtTuple{ipv4(2, 2, 2, 2), ipv4(5, 5, 5, 5), 80, 40000, 6, 0}), nullptr);

    // ...so the port can be reallocated.
    auto p3 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1002, 80, net::kTcpSyn);
    EXPECT_TRUE(ct.process(p3, net::parse_flow(p3), nat, ctx, 3000).state & net::kCtStateNew);
    EXPECT_EQ(net::parse_flow(p3).tp_src, 40000);
    ct.san_check(OVSX_SITE);

    // RST teardown releases it too (reply-direction RST, de-NATed).
    auto rst = packet(ipv4(2, 2, 2, 2), ipv4(5, 5, 5, 5), 80, 40000,
                      net::kTcpRst | net::kTcpAck);
    ct.process(rst, net::parse_flow(rst), kern::CtSpec{.zone = 0, .commit = false}, ctx, 3500);
    EXPECT_EQ(ct.size(), 0u);
    EXPECT_EQ(ct.zone_count(0), 0u);
    ct.san_check(OVSX_SITE);

    auto p4 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1003, 80, net::kTcpSyn);
    EXPECT_TRUE(ct.process(p4, net::parse_flow(p4), nat, ctx, 4000).state & net::kCtStateNew);
    ct.flush();
    ct.san_check(OVSX_SITE);
    EXPECT_EQ(ct.nat_binding_count(), 0u);

    EXPECT_TRUE(collect.take().empty());
}

TEST_F(ConntrackTest, UncommittedCtDoesNotBindNat)
{
    san::ScopedHardened hardened;
    san::ScopedCollect collect;
    kern::CtSpec nat;
    nat.commit = false; // ct(nat) without commit: no binding, no rewrite
    nat.nat = NatSpec::src(ipv4(5, 5, 5, 5), 40000, 40000);

    auto p1 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    ct.process(p1, net::parse_flow(p1), nat, ctx, 100);
    EXPECT_EQ(net::parse_flow(p1).nw_src, ipv4(1, 1, 1, 1));
    EXPECT_EQ(ct.nat_binding_count(), 0u);
    ct.san_check(OVSX_SITE);

    // The unconfirmed entry holds no port, so a committed connection can
    // take it; expiring the unconfirmed entry leaks nothing.
    EXPECT_EQ(ct.expire_idle(200), 1u);
    ct.san_check(OVSX_SITE);
    EXPECT_TRUE(collect.take().empty());
}

TEST_F(ConntrackTest, MarkFromSpecAppliedOnCommit)
{
    kern::CtSpec spec;
    spec.commit = true;
    spec.set_mark = true;
    spec.mark = 42;
    auto p1 = packet(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    ct.process(p1, net::parse_flow(p1), spec, ctx);
    EXPECT_EQ(p1.meta().ct_mark, 42u);

    const auto snap = ct.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].mark, 42u);
    EXPECT_FALSE(snap[0].nat);
    EXPECT_EQ(snap[0].reply, snap[0].orig.reversed());
}

// ---- tuple hash quality -------------------------------------------------

TEST_F(ConntrackTest, HashSeparatesReverseZoneAndFoldedVariants)
{
    const CtTuple::Hash h;
    const CtTuple t{ipv4(10, 0, 0, 1), ipv4(10, 0, 0, 2), 1234, 80, 6, 0};
    EXPECT_NE(h(t), h(t.reversed()));
    CtTuple zswap = t;
    zswap.zone = 1;
    EXPECT_NE(h(t), h(zswap));

    // The old XOR-fold collided these systematically: src bit 16 lands
    // on the same folded bit as sport bit 0.
    CtTuple a{0x00010000u, ipv4(10, 0, 0, 2), 0, 80, 6, 0};
    CtTuple b{0x00000000u, ipv4(10, 0, 0, 2), 1, 80, 6, 0};
    EXPECT_NE(h(a), h(b));
}

TEST_F(ConntrackTest, HashCollisionRateOverFuzzCorpusTuples)
{
    // Tuples shaped like the fuzzer's corpus (8 flow ips x 6 ports x 2
    // zones x 2 protos), plus every reverse — the exact population the
    // conntrack index hashes in the differential soak.
    const std::uint16_t ports[] = {53, 80, 443, 1234, 5001, 8080};
    std::vector<CtTuple> tuples;
    for (std::uint32_t s = 0; s < 8; ++s) {
        for (std::uint32_t d = 0; d < 8; ++d) {
            for (std::uint16_t sp : ports) {
                for (std::uint16_t zone = 0; zone < 2; ++zone) {
                    for (std::uint8_t proto : {std::uint8_t{6}, std::uint8_t{17}}) {
                        const CtTuple t{0x0a000001u + s, 0x0a000001u + d,
                                        static_cast<std::uint16_t>(10000 + sp), sp, proto, zone};
                        tuples.push_back(t);
                        tuples.push_back(t.reversed());
                    }
                }
            }
        }
    }
    std::sort(tuples.begin(), tuples.end());
    tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());

    const CtTuple::Hash h;
    std::vector<std::size_t> hashes;
    hashes.reserve(tuples.size());
    for (const auto& t : tuples) hashes.push_back(h(t));
    std::sort(hashes.begin(), hashes.end());
    const auto dup = std::adjacent_find(hashes.begin(), hashes.end());
    // Full 64-bit hashes over a few thousand structured tuples must not
    // collide at all; the old fold collided hundreds of pairs.
    EXPECT_EQ(dup, hashes.end()) << tuples.size() << " tuples";
}

} // namespace
} // namespace ovsx::kern
