#include <gtest/gtest.h>

#include "net/builder.h"
#include "net/flow.h"
#include "net/hash.h"
#include "net/headers.h"

namespace ovsx::net {
namespace {

Packet sample_udp()
{
    UdpSpec spec;
    spec.src_mac = MacAddr::from_id(1);
    spec.dst_mac = MacAddr::from_id(2);
    spec.src_ip = ipv4(10, 0, 0, 1);
    spec.dst_ip = ipv4(10, 0, 0, 2);
    spec.src_port = 1111;
    spec.dst_port = 2222;
    return build_udp(spec);
}

TEST(FlowKey, ParseUdp)
{
    Packet p = sample_udp();
    p.meta().in_port = 5;
    const FlowKey key = parse_flow(p);
    EXPECT_EQ(key.in_port, 5u);
    EXPECT_EQ(key.dl_src, MacAddr::from_id(1));
    EXPECT_EQ(key.dl_dst, MacAddr::from_id(2));
    EXPECT_EQ(key.dl_type, static_cast<std::uint16_t>(EtherType::Ipv4));
    EXPECT_EQ(key.nw_src, ipv4(10, 0, 0, 1));
    EXPECT_EQ(key.nw_dst, ipv4(10, 0, 0, 2));
    EXPECT_EQ(key.nw_proto, 17);
    EXPECT_EQ(key.tp_src, 1111);
    EXPECT_EQ(key.tp_dst, 2222);
    EXPECT_EQ(key.vlan_tci, 0);
}

TEST(FlowKey, ParseTcpFlags)
{
    TcpSpec spec;
    spec.src_ip = ipv4(1, 1, 1, 1);
    spec.dst_ip = ipv4(2, 2, 2, 2);
    spec.src_port = 80;
    spec.dst_port = 12345;
    spec.flags = kTcpSyn | kTcpAck;
    const Packet p = build_tcp(spec);
    const FlowKey key = parse_flow(p);
    EXPECT_EQ(key.nw_proto, 6);
    EXPECT_EQ(key.tcp_flags, kTcpSyn | kTcpAck);
}

TEST(FlowKey, ParseVlan)
{
    UdpSpec spec;
    spec.src_ip = ipv4(1, 1, 1, 1);
    spec.dst_ip = ipv4(2, 2, 2, 2);
    spec.vlan_tci = 42;
    const Packet p = build_udp(spec);
    const FlowKey key = parse_flow(p);
    EXPECT_EQ(key.vlan_tci & 0x0fff, 42);
    EXPECT_NE(key.vlan_tci & 0x1000, 0); // "present" bit
    EXPECT_EQ(key.dl_type, static_cast<std::uint16_t>(EtherType::Ipv4));
    EXPECT_EQ(key.nw_proto, 17);
}

TEST(FlowKey, ParseArp)
{
    const Packet p =
        build_arp(true, MacAddr::from_id(3), ipv4(10, 0, 0, 3), MacAddr(), ipv4(10, 0, 0, 4));
    const FlowKey key = parse_flow(p);
    EXPECT_EQ(key.dl_type, static_cast<std::uint16_t>(EtherType::Arp));
    EXPECT_EQ(key.nw_src, ipv4(10, 0, 0, 3));
    EXPECT_EQ(key.nw_dst, ipv4(10, 0, 0, 4));
    EXPECT_EQ(key.nw_proto, 1); // request
}

TEST(FlowKey, TruncatedPacketParsesPartially)
{
    Packet p = sample_udp();
    p.truncate(20); // cuts into the IPv4 header
    const FlowKey key = parse_flow(p);
    EXPECT_EQ(key.dl_type, static_cast<std::uint16_t>(EtherType::Ipv4));
    EXPECT_EQ(key.nw_src, 0u); // L3 not parseable
}

TEST(FlowKey, RuntPacketYieldsEmptyKey)
{
    Packet p(6); // shorter than an Ethernet header
    const FlowKey key = parse_flow(p);
    EXPECT_EQ(key.dl_type, 0);
}

TEST(FlowKey, MetadataCarriedThrough)
{
    Packet p = sample_udp();
    p.meta().tunnel.tun_id = 77;
    p.meta().tunnel.ip_src = ipv4(172, 16, 0, 1);
    p.meta().tunnel.ip_dst = ipv4(172, 16, 0, 2);
    p.meta().recirc_id = 3;
    p.meta().ct_state = kCtStateTracked | kCtStateEstablished;
    p.meta().ct_zone = 9;
    const FlowKey key = parse_flow(p);
    EXPECT_EQ(key.tun_id, 77u);
    EXPECT_EQ(key.tun_src, ipv4(172, 16, 0, 1));
    EXPECT_EQ(key.recirc_id, 3u);
    EXPECT_EQ(key.ct_state, kCtStateTracked | kCtStateEstablished);
    EXPECT_EQ(key.ct_zone, 9);
}

TEST(FlowKey, HashAndEquality)
{
    Packet a = sample_udp();
    Packet b = sample_udp();
    const FlowKey ka = parse_flow(a);
    const FlowKey kb = parse_flow(b);
    EXPECT_EQ(ka, kb);
    EXPECT_EQ(ka.hash(), kb.hash());

    b.meta().in_port = 9;
    const FlowKey kc = parse_flow(b);
    EXPECT_FALSE(ka == kc);
    EXPECT_NE(ka.hash(), kc.hash());
    EXPECT_NE(ka.hash(1), ka.hash(2)); // basis changes the hash
}

TEST(FlowMask, ApplyAndMatch)
{
    Packet p = sample_udp();
    const FlowKey key = parse_flow(p);

    FlowMask mask; // starts as match-all (nothing significant)
    EXPECT_EQ(mask.apply(key), FlowKey());
    EXPECT_TRUE(mask.matches(key, FlowKey()));

    mask.bits.nw_dst = 0xffffff00; // /24 on destination
    FlowKey masked = mask.apply(key);
    EXPECT_EQ(masked.nw_dst, ipv4(10, 0, 0, 0));
    EXPECT_TRUE(mask.matches(key, masked));

    FlowKey other = key;
    other.nw_dst = ipv4(10, 0, 0, 99); // same /24
    EXPECT_TRUE(mask.matches(other, masked));
    other.nw_dst = ipv4(10, 0, 1, 99); // different /24
    EXPECT_FALSE(mask.matches(other, masked));
}

TEST(FlowMask, ExactMatchesOnlyIdentical)
{
    Packet p = sample_udp();
    const FlowKey key = parse_flow(p);
    const FlowMask mask = FlowMask::exact();
    const FlowKey masked = mask.apply(key);
    EXPECT_EQ(masked, key);
    FlowKey other = key;
    other.tp_src ^= 1;
    EXPECT_FALSE(mask.matches(other, masked));
}

TEST(FlowMask, ExactBytesOrdering)
{
    FlowMask narrow;
    narrow.bits.nw_dst = 0xffffffff;
    FlowMask wide;
    wide.bits.nw_dst = 0xffffffff;
    wide.bits.nw_src = 0xffffffff;
    wide.bits.tp_dst = 0xffff;
    EXPECT_GT(wide.exact_bytes(), narrow.exact_bytes());
    EXPECT_EQ(FlowMask::none().exact_bytes(), 0);
}

TEST(RxHash, StableAndSpreads)
{
    const auto h1 = rxhash_5tuple(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 17, 1000, 2000);
    const auto h2 = rxhash_5tuple(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 17, 1000, 2000);
    EXPECT_EQ(h1, h2);
    // Different flows land on different hashes (with overwhelming probability).
    int distinct = 0;
    std::uint32_t prev = 0;
    for (std::uint16_t port = 0; port < 100; ++port) {
        const auto h = rxhash_5tuple(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 17, port, 2000);
        if (h != prev) ++distinct;
        prev = h;
    }
    EXPECT_GT(distinct, 95);
}

TEST(FlowKey, ToStringMentionsSalientFields)
{
    Packet p = sample_udp();
    p.meta().in_port = 4;
    const FlowKey key = parse_flow(p);
    const std::string s = key.to_string();
    EXPECT_NE(s.find("in_port=4"), std::string::npos);
    EXPECT_NE(s.find("10.0.0.1"), std::string::npos);
    EXPECT_NE(s.find("proto=17"), std::string::npos);
}

} // namespace
} // namespace ovsx::net
