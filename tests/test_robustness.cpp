// Failure injection and fuzz-style robustness: random bytes through the
// parsers, decapsulators, datapaths and the eBPF verifier/VM must never
// crash, and verifier-accepted programs must never fault at runtime
// (the soundness property the whole eBPF safety story rests on).
#include <gtest/gtest.h>

#include "ebpf/programs.h"
#include "ebpf/verifier.h"
#include "ebpf/vm.h"
#include "kern/kernel.h"
#include "kern/nic.h"
#include "net/builder.h"
#include "net/flow.h"
#include "net/tunnel.h"
#include "ovs/dpif_netdev.h"
#include "ovs/netdev_afxdp.h"
#include "sim/rng.h"

namespace ovsx {
namespace {

net::Packet random_packet(sim::Rng& rng, std::size_t max_len = 256)
{
    const std::size_t len = rng.below(max_len + 1);
    net::Packet pkt(len);
    for (std::size_t i = 0; i < len; ++i) {
        pkt.data()[i] = static_cast<std::uint8_t>(rng.next());
    }
    return pkt;
}

TEST(Robustness, ParserNeverCrashesOnGarbage)
{
    sim::Rng rng(1);
    for (int i = 0; i < 5000; ++i) {
        net::Packet pkt = random_packet(rng);
        const auto key = net::parse_flow(pkt);
        // Whatever was parsed must be internally consistent: L4 fields
        // require an L3 protocol.
        if (key.tp_src || key.tp_dst) {
            EXPECT_TRUE(key.nw_proto == 6 || key.nw_proto == 17);
        }
        (void)net::locate_headers(pkt);
    }
}

TEST(Robustness, DecapNeverCrashesOnGarbage)
{
    sim::Rng rng(2);
    for (int i = 0; i < 5000; ++i) {
        net::Packet pkt = random_packet(rng);
        const std::size_t before = pkt.size();
        auto res = net::decapsulate_auto(pkt);
        if (!res) {
            EXPECT_EQ(pkt.size(), before); // rejection must not consume bytes
        }
    }
}

TEST(Robustness, XdpProgramsSurviveGarbage)
{
    kern::Kernel host;
    auto l2 = std::make_shared<ebpf::Map>(ebpf::MapType::Hash, "l2", 8, 4, 64);
    ebpf::Vm vm;
    sim::Rng rng(3);
    const ebpf::Program progs[] = {ebpf::xdp_parse_drop(), ebpf::xdp_parse_lookup_drop(l2),
                                   ebpf::xdp_swap_macs_tx()};
    for (int i = 0; i < 2000; ++i) {
        net::Packet pkt = random_packet(rng, 128);
        for (const auto& prog : progs) {
            const auto res = vm.run_xdp(prog, pkt);
            // Verified programs must never abort, no matter the input.
            EXPECT_NE(res.action, ebpf::XdpAction::Aborted) << prog.name << ": " << res.fault;
        }
    }
}

TEST(Robustness, DatapathSurvivesGarbageFromTheWire)
{
    kern::Kernel host;
    auto& nic0 = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    auto& nic1 = host.add_device<kern::PhysicalDevice>("eth1", net::MacAddr::from_id(2));
    std::uint64_t out = 0;
    nic1.connect_wire([&](net::Packet&&) { ++out; });

    ovs::DpifNetdev dpif(host);
    const auto p0 = dpif.add_port(std::make_unique<ovs::NetdevAfxdp>(nic0));
    const auto p1 = dpif.add_port(std::make_unique<ovs::NetdevAfxdp>(nic1));
    net::FlowKey key;
    key.in_port = p0;
    net::FlowMask mask;
    mask.bits.in_port = 0xffffffff;
    mask.bits.recirc_id = 0xffffffff;
    dpif.flow_put(key, mask, {kern::OdpAction::output(p1)});
    const int pmd = dpif.add_pmd("pmd0");
    dpif.pmd_assign(pmd, p0, 0);

    sim::Rng rng(4);
    for (int i = 0; i < 2000; ++i) {
        nic0.rx_from_wire(random_packet(rng, 192));
        if ((i & 31) == 31) {
            while (dpif.pmd_poll_once(pmd) > 0) {
            }
        }
    }
    while (dpif.pmd_poll_once(pmd) > 0) {
    }
    EXPECT_GT(out, 0u); // wildcard flow forwards even garbage
}

TEST(Robustness, VerifierSoundOnRandomPrograms)
{
    // Generate random (mostly invalid) programs. The verifier must never
    // crash; anything it ACCEPTS must then run to completion in the VM
    // without a runtime fault — that's the soundness contract.
    sim::Rng rng(5);
    int accepted = 0, faulted_after_accept = 0;
    ebpf::Vm vm;
    for (int trial = 0; trial < 3000; ++trial) {
        ebpf::Program prog;
        prog.name = "fuzz";
        const int n = 1 + static_cast<int>(rng.below(24));
        for (int i = 0; i < n; ++i) {
            ebpf::Insn insn;
            insn.op = static_cast<ebpf::Op>(rng.below(static_cast<std::uint64_t>(
                static_cast<int>(ebpf::Op::Exit) + 1)));
            insn.dst = static_cast<std::uint8_t>(rng.below(12)); // incl. invalid r11
            insn.src = static_cast<std::uint8_t>(rng.below(12));
            insn.off = static_cast<std::int16_t>(rng.next());
            insn.imm = static_cast<std::int64_t>(rng.next() % 512) - 256;
            prog.insns.push_back(insn);
        }
        prog.insns.push_back({ebpf::Op::Exit, 0, 0, 0, 0});

        const auto verdict = ebpf::verify(prog);
        if (!verdict.ok) continue;
        ++accepted;
        net::Packet pkt = random_packet(rng, 96);
        const auto res = vm.run_xdp(prog, pkt);
        if (res.action == ebpf::XdpAction::Aborted &&
            res.fault.find("memory") != std::string::npos) {
            ++faulted_after_accept;
        }
    }
    EXPECT_EQ(faulted_after_accept, 0) << "verifier accepted a memory-unsafe program";
    // Sanity: random programs are occasionally trivially valid.
    EXPECT_GE(accepted, 0);
}

TEST(Robustness, TruncatedTunnelsAtEveryLength)
{
    // Encapsulate, then truncate the outer packet to every possible
    // length: decap must reject or produce a consistent inner packet,
    // never crash.
    net::UdpSpec spec;
    spec.src_ip = net::ipv4(1, 1, 1, 1);
    spec.dst_ip = net::ipv4(2, 2, 2, 2);
    net::Packet base = net::build_udp(spec);
    net::TunnelKey key;
    key.tun_id = 7;
    key.ip_src = net::ipv4(172, 16, 0, 1);
    key.ip_dst = net::ipv4(172, 16, 0, 2);
    net::EncapParams params;
    params.outer_src_mac = net::MacAddr::from_id(1);
    params.outer_dst_mac = net::MacAddr::from_id(2);
    net::encapsulate(base, net::TunnelType::Geneve, key, params);

    for (std::size_t len = 0; len <= base.size(); ++len) {
        net::Packet pkt = net::Packet::from_bytes(base.bytes().subspan(0, len));
        (void)net::decapsulate_auto(pkt);
        (void)net::parse_flow(pkt);
    }
}

TEST(Robustness, MeterlessAndFlowlessDatapathsDropCleanly)
{
    kern::Kernel host;
    auto& nic = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    ovs::DpifNetdev dpif(host);
    const auto p0 = dpif.add_port(std::make_unique<ovs::NetdevAfxdp>(nic));
    (void)p0;
    const int pmd = dpif.add_pmd("pmd0");
    dpif.pmd_assign(pmd, p0, 0);
    // No flows, no upcall handler: everything must drop, counted.
    net::UdpSpec spec;
    spec.src_ip = net::ipv4(1, 1, 1, 1);
    spec.dst_ip = net::ipv4(2, 2, 2, 2);
    for (int i = 0; i < 10; ++i) nic.rx_from_wire(net::build_udp(spec));
    while (dpif.pmd_poll_once(pmd) > 0) {
    }
    EXPECT_EQ(dpif.dropped(), 10u);
    EXPECT_EQ(dpif.upcalls(), 10u);
}

// ---- AF_XDP option matrix: every combination must forward correctly ----

class AfxdpMatrix : public ::testing::TestWithParam<int> {};

TEST_P(AfxdpMatrix, ForwardsCorrectlyUnderAnyOptionCombo)
{
    const int bits = GetParam();
    ovs::AfxdpOptions opts;
    opts.pmd_mode = true;
    opts.lock = (bits & 1) ? ovs::AfxdpOptions::Lock::Mutex : ovs::AfxdpOptions::Lock::Spinlock;
    opts.lock_batching = (bits & 2) != 0;
    opts.metadata_prealloc = (bits & 4) != 0;
    opts.csum_offload = (bits & 8) != 0;

    kern::Kernel host;
    auto& nic0 = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    auto& nic1 = host.add_device<kern::PhysicalDevice>("eth1", net::MacAddr::from_id(2));
    std::vector<net::Packet> out;
    nic1.connect_wire([&](net::Packet&& p) { out.push_back(std::move(p)); });

    ovs::DpifNetdev dpif(host);
    const auto p0 = dpif.add_port(std::make_unique<ovs::NetdevAfxdp>(nic0, opts));
    const auto p1 = dpif.add_port(std::make_unique<ovs::NetdevAfxdp>(nic1, opts));
    net::FlowKey key;
    key.in_port = p0;
    net::FlowMask mask;
    mask.bits.in_port = 0xffffffff;
    mask.bits.recirc_id = 0xffffffff;
    dpif.flow_put(key, mask, {kern::OdpAction::output(p1)});
    const int pmd = dpif.add_pmd("pmd0");
    dpif.pmd_assign(pmd, p0, 0);

    net::UdpSpec spec;
    spec.src_ip = net::ipv4(10, 0, 0, 1);
    spec.dst_ip = net::ipv4(10, 0, 0, 2);
    spec.src_port = 42;
    spec.dst_port = 4242;
    const net::Packet original = net::build_udp(spec);
    for (int i = 0; i < 100; ++i) {
        nic0.rx_from_wire(net::build_udp(spec));
        while (dpif.pmd_poll_once(pmd) > 0) {
        }
    }
    ASSERT_EQ(out.size(), 100u);
    // Bytes survive the umem round trips unmodified.
    EXPECT_EQ(0, std::memcmp(out[0].data(), original.data(), original.size()));
}

INSTANTIATE_TEST_SUITE_P(AllCombos, AfxdpMatrix, ::testing::Range(0, 16));

} // namespace
} // namespace ovsx
