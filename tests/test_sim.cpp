#include <gtest/gtest.h>

#include "sim/context.h"
#include "sim/costs.h"
#include "sim/histogram.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace ovsx::sim {
namespace {

TEST(SimTime, RateFromCost)
{
    EXPECT_DOUBLE_EQ(rate_from_cost(100), 1e7);
    EXPECT_DOUBLE_EQ(rate_from_cost(0), 0.0);
    EXPECT_DOUBLE_EQ(mpps(14'880'000.0), 14.88);
}

TEST(SimTime, LineRate64B10G)
{
    // 10GbE line rate at 64B frames is the classic 14.88 Mpps.
    EXPECT_NEAR(line_rate_pps(10.0, 64) / 1e6, 14.88, 0.01);
}

TEST(SimTime, LineRate1518B25G)
{
    // The paper quotes ~2.1 Mpps for 1518B at 25 Gbps.
    EXPECT_NEAR(line_rate_pps(25.0, 1518) / 1e6, 2.03, 0.05);
}

TEST(ExecContext, ChargesDefaultClass)
{
    ExecContext ctx("pmd0", CpuClass::User);
    ctx.charge(100);
    ctx.charge(CpuClass::System, 50);
    EXPECT_EQ(ctx.busy(CpuClass::User), 100);
    EXPECT_EQ(ctx.busy(CpuClass::System), 50);
    EXPECT_EQ(ctx.busy(CpuClass::Softirq), 0);
    EXPECT_EQ(ctx.total_busy(), 150);
}

TEST(ExecContext, CountersAccumulate)
{
    ExecContext ctx("x", CpuClass::User);
    ctx.count("ring_ops", 3);
    ctx.count("ring_ops");
    EXPECT_EQ(ctx.counter("ring_ops"), 4u);
    EXPECT_EQ(ctx.counter("missing"), 0u);
}

TEST(ExecContext, ResetClearsEverything)
{
    ExecContext ctx("x", CpuClass::Guest);
    ctx.charge(7);
    ctx.count("c");
    ctx.reset();
    EXPECT_EQ(ctx.total_busy(), 0);
    EXPECT_EQ(ctx.counter("c"), 0u);
}

TEST(CpuUsage, NormalizesByElapsed)
{
    ExecContext a("a", CpuClass::Softirq);
    a.charge(500);
    ExecContext b("b", CpuClass::User);
    b.charge(1000);
    CpuUsage u;
    u.add(a, 1000);
    u.add(b, 1000);
    EXPECT_DOUBLE_EQ(u.softirq, 0.5);
    EXPECT_DOUBLE_EQ(u.user, 1.0);
    EXPECT_DOUBLE_EQ(u.total(), 1.5);
}

TEST(CostModel, CopyAndCsumScaleWithBytes)
{
    const auto& m = CostModel::baseline();
    EXPECT_EQ(m.copy(0), 0);
    EXPECT_GT(m.copy(1500), m.copy(64));
    EXPECT_NEAR(static_cast<double>(m.csum(1000)), m.csum_per_byte * 1000, 1.0);
}

TEST(Histogram, Percentiles)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i) h.add(i * 10);
    EXPECT_EQ(h.percentile(50), 500);
    EXPECT_EQ(h.percentile(90), 900);
    EXPECT_EQ(h.percentile(99), 990);
    EXPECT_EQ(h.percentile(0), 10);
    EXPECT_EQ(h.percentile(100), 1000);
    EXPECT_EQ(h.min(), 10);
    EXPECT_EQ(h.max(), 1000);
    EXPECT_DOUBLE_EQ(h.mean(), 505.0);
}

TEST(Histogram, SingleSample)
{
    Histogram h;
    h.add(42);
    EXPECT_EQ(h.percentile(50), 42);
    EXPECT_EQ(h.percentile(99), 42);
    // Edges route through the shared nearest-rank rule.
    EXPECT_EQ(h.percentile(0), 42);
    EXPECT_EQ(h.percentile(-3), 42);
    EXPECT_EQ(h.percentile(100), 42);
    EXPECT_EQ(h.percentile(400), 42);
}

TEST(Histogram, EmptyAnswersZeroEverywhere)
{
    Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.percentile(50), 0);
    EXPECT_EQ(h.percentile(0), 0);
    EXPECT_EQ(h.percentile(100), 0);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123), c(124);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.below(17), 17u);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(99);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

} // namespace
} // namespace ovsx::sim
