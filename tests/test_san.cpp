// Negative corpus for ovsx::san: every checker class must FIRE on its
// bug pattern, with provenance naming the faulting call site — and the
// clean paths must stay silent under full hardening. Resurrected bugs
// from PR 1 (corrupt-IHL checksum OOB, dpif-ebpf action-shadow leak)
// are reproduced through test-only seams and must be caught.
#include <gtest/gtest.h>

#include <string>

#include "gen/fuzz.h"
#include "kern/kernel.h"
#include "kern/nic.h"
#include "net/builder.h"
#include "net/headers.h"
#include "net/packet.h"
#include "ovs/dpif_ebpf.h"
#include "san/audit.h"
#include "san/frame_tracker.h"
#include "san/packet_ledger.h"
#include "san/report.h"

namespace ovsx {
namespace {

using san::ScopedCollect;
using san::ScopedHardened;

net::Packet udp64()
{
    net::UdpSpec s;
    s.src_mac = net::MacAddr::from_id(1);
    s.dst_mac = net::MacAddr::from_id(2);
    s.src_ip = 0x0a000001;
    s.dst_ip = 0x0a000002;
    s.src_port = 1000;
    s.dst_port = 80;
    return net::build_udp(s);
}

bool site_in(const san::Violation& v, const char* file)
{
    return std::string(v.site.file).find(file) != std::string::npos;
}

// ---- checked packet access ---------------------------------------------

TEST(SanPacket, CheckedReadOobFiresWithFaultingSite)
{
    ScopedHardened hardened;
    ScopedCollect collect;
    net::Packet pkt = udp64();
    const auto span = pkt.checked_read(pkt.size() - 4, 16, OVSX_SITE);
    EXPECT_TRUE(span.empty());
    ASSERT_EQ(collect.violations().size(), 1u);
    EXPECT_EQ(collect.violations()[0].checker, "packet-oob-read");
    EXPECT_TRUE(site_in(collect.violations()[0], "test_san.cpp"))
        << collect.violations()[0].to_string();
}

TEST(SanPacket, CheckedWriteOobFiresWithFaultingSite)
{
    ScopedHardened hardened;
    ScopedCollect collect;
    net::Packet pkt = udp64();
    const auto span = pkt.checked_write(pkt.size(), 1, OVSX_SITE);
    EXPECT_TRUE(span.empty());
    ASSERT_EQ(collect.violations().size(), 1u);
    EXPECT_EQ(collect.violations()[0].checker, "packet-oob-write");
    EXPECT_TRUE(site_in(collect.violations()[0], "test_san.cpp"));
}

TEST(SanPacket, InBoundsAccessIsSilent)
{
    ScopedHardened hardened;
    ScopedCollect collect;
    net::Packet pkt = udp64();
    EXPECT_FALSE(pkt.checked_read(0, pkt.size(), OVSX_SITE).empty());
    EXPECT_NE(pkt.checked_header_at<net::Ipv4Header>(14, OVSX_SITE), nullptr);
    EXPECT_TRUE(collect.violations().empty());
}

// PR 1's corrupt-IHL checksum bug, resurrected behind a test seam: the
// unguarded refresh sums ihl_bytes() past the frame end, and the
// checked accessor must catch it — naming builder.cpp, the site of the
// faulting read, not the checker internals.
TEST(SanPacket, ResurrectedIhlChecksumBugIsCaught)
{
    ScopedHardened hardened;
    ScopedCollect collect;
    net::Packet pkt = udp64();
    // Corrupt the IHL nibble: claim a 60-byte IPv4 header in a 64-byte
    // frame (14 + 60 > 64).
    pkt.data()[14] = 0x4F;
    net::test_seams::refresh_ipv4_csum_without_ihl_guard(pkt, 14);
    ASSERT_EQ(collect.violations().size(), 1u);
    EXPECT_EQ(collect.violations()[0].checker, "packet-oob-read");
    EXPECT_TRUE(site_in(collect.violations()[0], "builder.cpp"))
        << collect.violations()[0].to_string();
}

// ---- skb lifecycle ledger ----------------------------------------------

TEST(SanSkb, UseAfterFreeFires)
{
    ScopedHardened hardened;
    ScopedCollect collect;
    const auto id = san::skb_acquire("test-rx", san::SkbState::Driver, OVSX_SITE);
    ASSERT_NE(id, 0u);
    san::skb_free(id, OVSX_SITE);
    san::skb_transition(id, san::SkbState::Datapath, OVSX_SITE);
    ASSERT_EQ(collect.violations().size(), 1u);
    EXPECT_EQ(collect.violations()[0].checker, "skb-use-after-free");
    // The ownership trail must be attached, oldest first.
    EXPECT_FALSE(collect.violations()[0].history.empty());
    san::skb_retire(id);
}

TEST(SanSkb, DoubleFreeFires)
{
    ScopedHardened hardened;
    ScopedCollect collect;
    const auto id = san::skb_acquire("test-rx", san::SkbState::Driver, OVSX_SITE);
    san::skb_free(id, OVSX_SITE);
    san::skb_free(id, OVSX_SITE);
    ASSERT_EQ(collect.violations().size(), 1u);
    EXPECT_EQ(collect.violations()[0].checker, "skb-double-free");
    san::skb_retire(id);
}

TEST(SanSkb, DoubleTxFires)
{
    ScopedHardened hardened;
    ScopedCollect collect;
    const auto id = san::skb_acquire("test-rx", san::SkbState::Driver, OVSX_SITE);
    san::skb_transition(id, san::SkbState::Datapath, OVSX_SITE);
    san::skb_transition(id, san::SkbState::Tx, OVSX_SITE);
    san::skb_transition(id, san::SkbState::Tx, OVSX_SITE);
    ASSERT_EQ(collect.violations().size(), 1u);
    EXPECT_EQ(collect.violations()[0].checker, "skb-double-tx");
    san::skb_retire(id);
}

TEST(SanSkb, TeardownLeakFires)
{
    ScopedHardened hardened;
    ScopedCollect collect;
    const auto first = san::skb_next_id();
    const auto id = san::skb_acquire("test-rx", san::SkbState::Driver, OVSX_SITE);
    const auto leaks = san::skb_leak_check_since(first, OVSX_SITE);
    EXPECT_EQ(leaks, 1u);
    ASSERT_FALSE(collect.violations().empty());
    EXPECT_EQ(collect.violations()[0].checker, "skb-leak");
    san::skb_retire(id);
}

TEST(SanSkb, NormalLifecycleIsSilent)
{
    ScopedHardened hardened;
    ScopedCollect collect;
    const auto first = san::skb_next_id();
    const auto id = san::skb_acquire("test-rx", san::SkbState::Driver, OVSX_SITE);
    san::skb_transition(id, san::SkbState::Stack, OVSX_SITE);
    san::skb_transition(id, san::SkbState::Datapath, OVSX_SITE);
    san::skb_transition(id, san::SkbState::Tx, OVSX_SITE);
    san::skb_retire(id);
    EXPECT_EQ(san::skb_leak_check_since(first, OVSX_SITE), 0u);
    EXPECT_TRUE(collect.violations().empty());
}

// ---- umem frame tracker ------------------------------------------------

TEST(SanFrame, DoubleFillFires)
{
    ScopedHardened hardened;
    ScopedCollect collect;
    const auto scope = san::new_scope();
    san::frame_register(scope, 0x1000, san::FrameState::UserPool, OVSX_SITE);
    san::frame_transition(scope, 0x1000, san::FrameState::FillRing, OVSX_SITE);
    san::frame_transition(scope, 0x1000, san::FrameState::FillRing, OVSX_SITE);
    ASSERT_EQ(collect.violations().size(), 1u);
    EXPECT_EQ(collect.violations()[0].checker, "frame-double-fill");
    san::frame_release_scope(scope);
}

TEST(SanFrame, TeardownWithKernelOwnedFrameFires)
{
    ScopedHardened hardened;
    ScopedCollect collect;
    const auto scope = san::new_scope();
    san::frame_register(scope, 0x2000, san::FrameState::UserPool, OVSX_SITE);
    san::frame_transition(scope, 0x2000, san::FrameState::FillRing, OVSX_SITE);
    san::frame_transition(scope, 0x2000, san::FrameState::KernelRx, OVSX_SITE);
    EXPECT_EQ(san::frame_expect_quiesced(scope, OVSX_SITE), 1u);
    ASSERT_FALSE(collect.violations().empty());
    san::frame_release_scope(scope);
}

// ---- refcount & table audit --------------------------------------------

TEST(SanAudit, RefcountUnderflowFires)
{
    ScopedHardened hardened;
    ScopedCollect collect;
    const auto scope = san::new_scope();
    EXPECT_FALSE(san::ref_dec(scope, "test.ref", 7, OVSX_SITE));
    ASSERT_EQ(collect.violations().size(), 1u);
    EXPECT_EQ(collect.violations()[0].checker, "refcount-underflow");
}

TEST(SanAudit, DoubleAddAndSizeMismatchFire)
{
    ScopedHardened hardened;
    ScopedCollect collect;
    const auto scope = san::new_scope();
    san::audit_add(scope, "test.tbl", 1, OVSX_SITE);
    san::audit_add(scope, "test.tbl", 1, OVSX_SITE); // double add
    san::audit_expect_size(scope, "test.tbl", 3, OVSX_SITE); // population is 1
    ASSERT_EQ(collect.violations().size(), 2u);
    EXPECT_EQ(collect.violations()[0].checker, "audit-double-add");
    EXPECT_EQ(collect.violations()[1].checker, "audit-size-mismatch");
    san::audit_clear(scope, "test.tbl");
}

// PR 1's dpif-ebpf action-shadow leak, resurrected behind a test-only
// seam: re-putting an existing key without erasing the old shadow entry
// lets the map and the shadow drift apart — the table audit must flag
// the broken map↔shadow link at the next checkpoint.
TEST(SanAudit, ResurrectedEbpfShadowLeakIsCaught)
{
    ScopedHardened hardened;
    ScopedCollect collect;
    kern::Kernel kernel;
    auto& nic = kernel.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    {
        ovs::DpifEbpf dpif(kernel);
        dpif.add_port(nic);

        net::Packet pkt = udp64();
        pkt.meta().in_port = 1;
        const net::FlowKey key = net::parse_flow(pkt);

        dpif.set_test_skip_shadow_erase(true);
        dpif.flow_put(key, ovs::DpifEbpf::required_mask(), {kern::OdpAction::output(1)});
        dpif.flow_put(key, ovs::DpifEbpf::required_mask(), {kern::OdpAction::output(1)});
        dpif.san_check(OVSX_SITE);
        EXPECT_FALSE(collect.violations().empty());
        bool link_broken = false;
        for (const auto& v : collect.violations()) {
            if (v.checker == "audit-link-broken") link_broken = true;
        }
        EXPECT_TRUE(link_broken);
    }
    (void)collect.take(); // dpif teardown clears its audit scopes
}

// ---- end to end: the full stack is clean under hardening ---------------

TEST(SanEndToEnd, MultiQueueFuzzRunCleanUnderHardening)
{
    // fuzz_run forces hardened mode internally and folds any violation
    // (skb leaks, audit drift, OOB accesses) into report.unexplained.
    gen::FuzzConfig cfg;
    cfg.num_queues = 2;
    const gen::DiffReport report = gen::fuzz_run(/*seed=*/0xD00D, cfg, 500);
    EXPECT_TRUE(report.ok()) << report.summary();
}

} // namespace
} // namespace ovsx
