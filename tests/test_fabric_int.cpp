// Leaf–spine fabric with INT telemetry: bringup on every provider,
// Geneve-path delivery, trace-id continuity across encap/decap hosts,
// INT export into obs, identical appctl shapes, cross-provider
// differential, and small-scale degraded-link localization.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fabric/fabric.h"
#include "net/builder.h"
#include "obs/coverage.h"
#include "obs/int_export.h"

namespace ovsx::fabric {
namespace {

std::uint64_t counter(const char* name)
{
    const auto id = obs::coverage_find(name);
    return id ? obs::coverage_value(*id) : 0;
}

std::vector<std::uint8_t> expected_inner(std::size_t src, std::size_t dst)
{
    net::UdpSpec spec;
    spec.src_mac = Fabric::vm_mac(src);
    spec.dst_mac = Fabric::vm_mac(dst);
    spec.src_ip = Fabric::vm_ip(src);
    spec.dst_ip = Fabric::vm_ip(dst);
    spec.src_port = static_cast<std::uint16_t>(10000 + src);
    spec.dst_port = static_cast<std::uint16_t>(20000 + dst);
    spec.payload_len = 64;
    net::Packet pkt = net::build_udp(spec);
    return {pkt.data(), pkt.data() + pkt.size()};
}

FabricConfig small_config(std::vector<HostProvider> providers)
{
    FabricConfig cfg;
    cfg.hosts = providers.size();
    cfg.providers = std::move(providers);
    cfg.batch_size = 8;
    return cfg;
}

TEST(FabricInt, NetdevFabricDeliversByteIdenticalInnerFrames)
{
    obs::int_reset();
    Fabric fabric(small_config({HostProvider::Netdev, HostProvider::Netdev,
                                HostProvider::Netdev}));
    const std::uint64_t exported_before = counter("int.exported");
    fabric.send(0, 2, 20);

    ASSERT_EQ(fabric.delivered().size(), 20u);
    const auto want = expected_inner(0, 2);
    std::set<std::uint32_t> traces;
    for (const auto& d : fabric.delivered()) {
        EXPECT_EQ(d.dst_host, 2u);
        // Geneve encap/decap + INT attach/stamp/pop must leave the
        // inner frame byte-identical.
        EXPECT_EQ(d.bytes, want);
        traces.insert(d.trace_id);
    }
    // trace_id survives the cross-host journey: every injected id
    // arrives exactly once (ids are assigned 1..N in injection order).
    ASSERT_EQ(traces.size(), 20u);
    EXPECT_EQ(*traces.begin(), 1u);
    EXPECT_EQ(*traces.rbegin(), 20u);

    EXPECT_GE(counter("int.exported") - exported_before, 20u);
    EXPECT_GT(counter("int.stamped"), 0u);
    EXPECT_GT(counter("int.hops"), 0u);
}

TEST(FabricInt, ExportedChainMatchesTopology)
{
    obs::int_reset();
    // Four hosts on two leaves: h0 (leaf0) -> h3 (leaf1) crosses a
    // spine, h0 -> h2 stays on leaf0.
    Fabric fabric(small_config({HostProvider::Netdev, HostProvider::Netdev,
                                HostProvider::Netdev, HostProvider::Netdev}));
    fabric.send(0, 3, 10);
    fabric.send(0, 2, 10);

    auto chain_key = [&](std::size_t s, std::size_t d) {
        std::string key = "h" + std::to_string(s) + "->h" + std::to_string(d) + " via";
        for (const std::uint32_t id : fabric.expected_chain(s, d)) {
            key += " " + std::to_string(id);
        }
        return key;
    };
    const obs::Value shown = obs::int_paths_show();
    const obs::Value* paths = shown.find("paths");
    ASSERT_NE(paths, nullptr);
    EXPECT_NE(paths->find(chain_key(0, 3)), nullptr) << shown.to_json();
    EXPECT_NE(paths->find(chain_key(0, 2)), nullptr) << shown.to_json();
    // Cross-leaf path stamps host + leaf + spine + leaf.
    EXPECT_EQ(fabric.expected_chain(0, 3).size(), 4u);
    EXPECT_EQ(fabric.expected_chain(0, 2).size(), 2u);
}

TEST(FabricInt, MixedProvidersDeliverAndAnswerIdenticalAppctlShapes)
{
    obs::int_reset();
    Fabric fabric(small_config({HostProvider::Netdev, HostProvider::Kernel,
                                HostProvider::Ebpf}));
    for (std::size_t s = 0; s < 3; ++s) {
        for (std::size_t d = 0; d < 3; ++d) {
            if (s != d) fabric.send(s, d, 5);
        }
    }
    EXPECT_EQ(fabric.delivered().size(), 30u);

    // Every provider's appctl answers int/paths and fabric/show with
    // the exact same rendering (the registries are fabric-wide).
    const std::string paths0 = fabric.appctl(0).run("int/paths");
    const std::string show0 = fabric.appctl(0).run("fabric/show");
    for (std::size_t h = 1; h < 3; ++h) {
        EXPECT_EQ(fabric.appctl(h).run("int/paths"), paths0) << "host " << h;
        EXPECT_EQ(fabric.appctl(h).run("fabric/show"), show0) << "host " << h;
    }
    EXPECT_NE(paths0.find("via"), std::string::npos);
    EXPECT_NE(show0.find("leaf0"), std::string::npos);

    // Paths toward the eBPF host (h2) exported via the VTEP shim.
    const obs::Value shown = obs::int_paths_show();
    const obs::Value* paths = shown.find("paths");
    ASSERT_NE(paths, nullptr);
    bool to_ebpf = false;
    for (const auto& [key, val] : paths->members()) {
        if (key.find("->h2") != std::string::npos) to_ebpf = true;
        (void)val;
    }
    EXPECT_TRUE(to_ebpf) << shown.to_json();
}

TEST(FabricInt, LinkLoadCountersSeeTraffic)
{
    obs::int_reset();
    Fabric fabric(small_config({HostProvider::Netdev, HostProvider::Netdev,
                                HostProvider::Netdev}));
    fabric.send(0, 1, 8);
    bool h0_up = false;
    for (const auto& l : fabric.link_loads()) {
        if (l.a == "h0" && l.a_to_b > 0) h0_up = true;
    }
    EXPECT_TRUE(h0_up);
    // The rendering carries the same counters.
    const obs::Value shown = fabric.fabric_show();
    ASSERT_NE(shown.find("links"), nullptr);
    EXPECT_FALSE(shown.find("links")->items().empty());
}

TEST(FabricInt, FabricDifferentialZeroDivergence)
{
    obs::int_reset();
    const FabricDiffReport report = run_fabric_differential(3, 5, 8);
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.frames_sent, 30u);
}

TEST(FabricInt, DegradedLinkShowsUpInHopPercentiles)
{
    obs::int_reset();
    FabricConfig cfg = small_config({HostProvider::Netdev, HostProvider::Netdev,
                                     HostProvider::Netdev, HostProvider::Netdev});
    cfg.degraded = DegradedLink{"leaf0", "spine1", 2'000'000};
    Fabric fabric(cfg);
    // h1 (leaf1) hashes to spine1: h0->h1 crosses the slow wire;
    // h0->h3 rides spine1 too but from leaf0 only — degrade is
    // directional leaf0->spine1, so both h0->h1 and h0->h3 cross it;
    // h2->h0 (leaf0->leaf0) never touches a spine.
    fabric.send(0, 1, 30);
    fabric.send(2, 0, 30);

    std::int64_t spine_p99 = 0;
    std::int64_t leaf_local_p99 = 0;
    for (const auto& hop : obs::int_hop_percentiles()) {
        if (hop.switch_id == Fabric::spine_switch_id(1)) {
            spine_p99 = std::max(spine_p99, hop.p99_ns);
        }
        if (hop.path.find("h2->h0") != std::string::npos &&
            hop.switch_id == Fabric::leaf_switch_id(0)) {
            leaf_local_p99 = std::max(leaf_local_p99, hop.p99_ns);
        }
    }
    // The hop *after* the degraded wire carries the injected 2ms.
    EXPECT_GE(spine_p99, 2'000'000);
    EXPECT_LT(leaf_local_p99, 1'000'000);
}

TEST(FabricInt, NsxRulesetForwardsFabricTraffic)
{
    obs::int_reset();
    FabricConfig cfg = small_config({HostProvider::Netdev, HostProvider::Kernel});
    cfg.use_nsx = true;
    cfg.nsx_target_rules = 600; // base tables + a little ACL bulk
    Fabric fabric(cfg);
    fabric.send(0, 1, 10);
    fabric.send(1, 0, 10);
    EXPECT_EQ(fabric.delivered().size(), 20u);
}

TEST(FabricInt, IntDisabledStillDelivers)
{
    obs::int_reset();
    FabricConfig cfg = small_config({HostProvider::Netdev, HostProvider::Netdev});
    cfg.int_enabled = false;
    Fabric fabric(cfg);
    const std::uint64_t exported_before = counter("int.exported");
    fabric.send(0, 1, 6);
    EXPECT_EQ(fabric.delivered().size(), 6u);
    EXPECT_EQ(counter("int.exported"), exported_before);
}

TEST(FabricInt, TraceIdSurvivesGeneveEncapDecapAcrossHosts)
{
    obs::int_reset();
    Fabric fabric(small_config({HostProvider::Netdev, HostProvider::Kernel,
                                HostProvider::Netdev}));
    // Interleave pairs: trace ids are assigned in send order, so each
    // delivered frame's id identifies exactly which injection it was —
    // across encap at the source host, two or four Geneve transits, and
    // decap at the destination, on different provider kinds.
    fabric.send(0, 2, 3); // traces 1..3
    fabric.send(2, 1, 3); // traces 4..6
    fabric.send(1, 0, 3); // traces 7..9
    const auto& delivered = fabric.delivered();
    ASSERT_EQ(delivered.size(), 9u);
    for (const auto& f : delivered) {
        ASSERT_GE(f.trace_id, 1u);
        ASSERT_LE(f.trace_id, 9u);
        const std::size_t expect_dst = f.trace_id <= 3 ? 2 : f.trace_id <= 6 ? 1 : 0;
        EXPECT_EQ(f.dst_host, expect_dst) << "trace " << f.trace_id;
    }
}

TEST(FabricInt, DifferentialReportPrintsJourneyOnDivergence)
{
    obs::int_reset();
    // Trace 3 falls in pair index (3-1)/2 = 1 of the schedule, which is
    // h0 -> h2: dropping it from the netdev run must yield a divergence
    // whose text carries that pair's full cross-host switch journey.
    const FabricDiffReport report =
        run_fabric_differential(3, 2, 8, /*inject_drop_trace=*/3);
    ASSERT_FALSE(report.ok());
    const std::string summary = report.summary();
    EXPECT_NE(summary.find("trace 3"), std::string::npos) << summary;
    EXPECT_NE(summary.find("h0->h2 via"), std::string::npos) << summary;
    EXPECT_NE(summary.find("netdev=missing"), std::string::npos) << summary;
    EXPECT_NE(summary.find("delivered"), std::string::npos) << summary;
}

} // namespace
} // namespace ovsx::fabric
