#include <gtest/gtest.h>

#include "gen/ct_corpus.h"
#include "net/builder.h"
#include "net/headers.h"
#include "ovs/ct.h"

namespace ovsx::ovs {
namespace {

using net::ipv4;

class UserCtTest : public ::testing::Test {
protected:
    net::Packet tcp(std::uint32_t src, std::uint32_t dst, std::uint16_t sport,
                    std::uint16_t dport, std::uint8_t flags = net::kTcpAck)
    {
        net::TcpSpec spec;
        spec.src_ip = src;
        spec.dst_ip = dst;
        spec.src_port = sport;
        spec.dst_port = dport;
        spec.flags = flags;
        spec.payload_len = 16;
        return net::build_tcp(spec);
    }

    std::uint8_t run(net::Packet& pkt, const kern::CtSpec& spec)
    {
        const auto key = net::parse_flow(pkt);
        return ct.process(pkt, key, spec, ctx);
    }

    UserspaceConntrack ct;
    sim::ExecContext ctx{"pmd", sim::CpuClass::User};
};

TEST_F(UserCtTest, BasicStateMachine)
{
    kern::CtSpec commit{.zone = 0, .commit = true};
    auto p1 = tcp(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    EXPECT_TRUE(run(p1, commit) & net::kCtStateNew);

    kern::CtSpec check{.zone = 0, .commit = false};
    auto p2 = tcp(ipv4(2, 2, 2, 2), ipv4(1, 1, 1, 1), 80, 1000, net::kTcpSyn | net::kTcpAck);
    const auto s2 = run(p2, check);
    EXPECT_TRUE(s2 & net::kCtStateEstablished);
    EXPECT_TRUE(s2 & net::kCtStateReply);
    EXPECT_EQ(ct.size(), 1u);
}

TEST_F(UserCtTest, SnatRewritesAndUnNats)
{
    // SNAT 1.1.1.1 -> 5.5.5.5 on commit.
    kern::CtSpec nat;
    nat.zone = 1;
    nat.commit = true;
    nat.nat = kern::NatSpec::src(ipv4(5, 5, 5, 5));

    auto p1 = tcp(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    run(p1, nat);
    // Outbound packet leaves with the translated source.
    EXPECT_EQ(net::parse_flow(p1).nw_src, ipv4(5, 5, 5, 5));
    EXPECT_TRUE(net::verify_l4_csum(p1, 14));

    // Reply arrives addressed to the NAT IP; conntrack restores it.
    kern::CtSpec check{.zone = 1, .commit = false};
    auto p2 = tcp(ipv4(2, 2, 2, 2), ipv4(5, 5, 5, 5), 80, 1000, net::kTcpSyn | net::kTcpAck);
    const auto s = run(p2, check);
    EXPECT_TRUE(s & net::kCtStateReply);
    EXPECT_EQ(net::parse_flow(p2).nw_dst, ipv4(1, 1, 1, 1)); // de-NATed
    EXPECT_TRUE(net::verify_l4_csum(p2, 14));
}

TEST_F(UserCtTest, DnatRewritesDestination)
{
    kern::CtSpec nat;
    nat.zone = 2;
    nat.commit = true;
    nat.nat = kern::NatSpec::dst(ipv4(10, 9, 9, 9), 8080);

    auto p1 = tcp(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    run(p1, nat);
    const auto k1 = net::parse_flow(p1);
    EXPECT_EQ(k1.nw_dst, ipv4(10, 9, 9, 9));
    EXPECT_EQ(k1.tp_dst, 8080);

    // Reply from the real backend gets mapped back to the VIP.
    kern::CtSpec check{.zone = 2, .commit = false};
    auto p2 = tcp(ipv4(10, 9, 9, 9), ipv4(1, 1, 1, 1), 8080, 1000, net::kTcpAck);
    const auto s = run(p2, check);
    EXPECT_TRUE(s & net::kCtStateReply);
    const auto k2 = net::parse_flow(p2);
    EXPECT_EQ(k2.nw_src, ipv4(2, 2, 2, 2));
    EXPECT_EQ(k2.tp_src, 80);
}

TEST_F(UserCtTest, ZoneLimits)
{
    ct.set_zone_limit(9, 1);
    kern::CtSpec commit{.zone = 9, .commit = true};
    auto p1 = tcp(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    EXPECT_FALSE(run(p1, commit) & net::kCtStateInvalid);
    auto p2 = tcp(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1001, 80, net::kTcpSyn);
    EXPECT_TRUE(run(p2, commit) & net::kCtStateInvalid);
}

TEST_F(UserCtTest, MarkPersists)
{
    kern::CtSpec commit{.zone = 0, .commit = true};
    auto p1 = tcp(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    run(p1, commit);
    const auto tuple = CtTuple::from_key(net::parse_flow(p1), 0);
    EXPECT_TRUE(ct.set_mark(tuple, 77));

    kern::CtSpec check{.zone = 0, .commit = false};
    auto p2 = tcp(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80);
    run(p2, check);
    EXPECT_EQ(p2.meta().ct_mark, 77u);
}

TEST_F(UserCtTest, ExpiryAndFlush)
{
    kern::CtSpec commit{.zone = 0, .commit = true};
    for (std::uint16_t i = 0; i < 5; ++i) {
        auto p = tcp(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), static_cast<std::uint16_t>(1000 + i),
                     80, net::kTcpSyn);
        const auto key = net::parse_flow(p);
        ct.process(p, key, commit, ctx, /*now=*/i * sim::kSecond);
    }
    EXPECT_EQ(ct.size(), 5u);
    EXPECT_EQ(ct.expire_idle(2 * sim::kSecond), 2u);
    EXPECT_EQ(ct.size(), 3u);
    ct.flush();
    EXPECT_EQ(ct.size(), 0u);
    EXPECT_EQ(ct.zone_count(0), 0u);
}

TEST_F(UserCtTest, TcpFlagsAccumulate)
{
    kern::CtSpec commit{.zone = 0, .commit = true};
    auto p1 = tcp(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    run(p1, commit);
    auto p2 = tcp(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpFin);
    run(p2, kern::CtSpec{.zone = 0, .commit = false});
    const auto* e = ct.find(CtTuple::from_key(net::parse_flow(p1), 0));
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->tcp_flags_seen & net::kTcpSyn);
    EXPECT_TRUE(e->tcp_flags_seen & net::kTcpFin);
}

TEST_F(UserCtTest, RstMidHandshakeTearsDownEntry)
{
    kern::CtSpec commit{.zone = 0, .commit = true};
    auto seq = gen::ct_rst_mid_handshake();
    EXPECT_TRUE(run(seq[0], commit) & net::kCtStateNew);
    EXPECT_EQ(ct.size(), 1u);

    const auto s_rst = run(seq[1], kern::CtSpec{.zone = 0, .commit = false});
    EXPECT_TRUE(s_rst & net::kCtStateReply);
    EXPECT_EQ(ct.size(), 0u);

    const auto s_syn = run(seq[2], commit);
    EXPECT_TRUE(s_syn & net::kCtStateNew);
    EXPECT_FALSE(s_syn & net::kCtStateEstablished);
    EXPECT_EQ(ct.size(), 1u);
}

TEST_F(UserCtTest, RstOnUnknownTupleIsInvalid)
{
    auto p = tcp(ipv4(9, 9, 9, 9), ipv4(8, 8, 8, 8), 5555, 80, net::kTcpRst);
    EXPECT_TRUE(run(p, kern::CtSpec{.zone = 0, .commit = false}) & net::kCtStateInvalid);
    EXPECT_EQ(ct.size(), 0u);
}

TEST_F(UserCtTest, IcmpErrorRelatedToTrackedConnection)
{
    kern::CtSpec commit{.zone = 0, .commit = true};
    auto seq = gen::ct_icmp_related();
    run(seq[0], commit);

    const auto s = run(seq[1], kern::CtSpec{.zone = 0, .commit = false});
    EXPECT_TRUE(s & net::kCtStateRelated);
    EXPECT_FALSE(s & net::kCtStateNew);
    EXPECT_FALSE(s & net::kCtStateInvalid);

    const gen::CtCorpusTuple t;
    const auto* e = ct.find(CtTuple{t.client_ip, t.server_ip, t.client_port, t.server_port, 17, 0});
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->packets, 1u); // the error did not count as conn traffic
}

TEST_F(UserCtTest, IcmpErrorCitingUnknownTupleIsInvalid)
{
    auto p = gen::ct_icmp_unrelated();
    EXPECT_TRUE(run(p, kern::CtSpec{.zone = 0, .commit = false}) & net::kCtStateInvalid);
}

TEST_F(UserCtTest, ExpiryUnderVirtualTime)
{
    kern::CtSpec commit{.zone = 0, .commit = true};
    auto p1 = tcp(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1000, 80, net::kTcpSyn);
    ct.process(p1, net::parse_flow(p1), commit, ctx, 1'000'000);
    auto p2 = tcp(ipv4(3, 3, 3, 3), ipv4(4, 4, 4, 4), 1001, 80, net::kTcpSyn);
    ct.process(p2, net::parse_flow(p2), commit, ctx, 10'000'000);
    EXPECT_EQ(ct.size(), 2u);

    EXPECT_EQ(ct.expire_idle(5'000'000), 1u);
    EXPECT_EQ(ct.size(), 1u);
    EXPECT_EQ(ct.zone_count(0), 1u);
    EXPECT_EQ(ct.expire_idle(20'000'000), 1u);
    EXPECT_TRUE(ct.snapshot().empty());
}

// The userspace and kernel trackers must leave identical state behind for
// the same packet sequence — the invariant the differential harness's
// end-state diff depends on.
TEST_F(UserCtTest, SnapshotMatchesKernelTrackerOnCorpusSequences)
{
    kern::Conntrack kct;
    kern::CtSpec commit{.zone = 0, .commit = true};

    std::vector<net::Packet> seq;
    for (auto& p : gen::ct_handshake()) seq.push_back(std::move(p));
    for (auto& p : gen::ct_rst_mid_handshake()) seq.push_back(std::move(p));
    for (auto& p : gen::ct_icmp_related()) seq.push_back(std::move(p));
    seq.push_back(gen::ct_icmp_unrelated());

    for (auto& p : seq) {
        net::Packet copy = p;
        const auto key = net::parse_flow(p);
        ct.process(p, key, commit, ctx);
        kct.process(copy, net::parse_flow(copy), 0, true, ctx);
    }
    EXPECT_EQ(ct.snapshot(), kct.snapshot());
    EXPECT_FALSE(ct.snapshot().empty());
}

// Same invariant under NAT: identical SNAT specs (with a port range and
// a mark) must leave byte-identical packets and identical snapshots —
// NAT reply tuples, marks and allocation order included.
TEST_F(UserCtTest, NatSnapshotAndBytesMatchKernelTracker)
{
    kern::Conntrack kct;
    kern::CtSpec nat;
    nat.zone = 0;
    nat.commit = true;
    nat.set_mark = true;
    nat.mark = 9;
    nat.nat = kern::NatSpec::src(ipv4(5, 5, 5, 5), 40000, 40001);
    kern::CtSpec check{.zone = 0, .commit = false};

    auto run_both = [&](net::Packet& p, const kern::CtSpec& spec) {
        net::Packet copy = p;
        const auto s_u = ct.process(p, net::parse_flow(p), spec, ctx);
        const auto r_k = kct.process(copy, net::parse_flow(copy), spec, ctx);
        EXPECT_EQ(s_u, r_k.state);
        EXPECT_EQ(std::vector<std::uint8_t>(p.data(), p.data() + p.size()),
                  std::vector<std::uint8_t>(copy.data(), copy.data() + copy.size()));
        return s_u;
    };

    // Two clients behind the same SNAT ip: the second allocates the next
    // port; the third exhausts the two-port range and must be invalid in
    // BOTH trackers.
    for (std::uint16_t sp : {1000, 1001}) {
        auto p = tcp(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), sp, 80, net::kTcpSyn);
        EXPECT_TRUE(run_both(p, nat) & net::kCtStateNew);
        EXPECT_EQ(net::parse_flow(p).nw_src, ipv4(5, 5, 5, 5));
    }
    auto p3 = tcp(ipv4(1, 1, 1, 1), ipv4(2, 2, 2, 2), 1002, 80, net::kTcpSyn);
    EXPECT_TRUE(run_both(p3, nat) & net::kCtStateInvalid);

    // Replies to each allocated port de-NAT back to the right client.
    auto r1 = tcp(ipv4(2, 2, 2, 2), ipv4(5, 5, 5, 5), 80, 40000, net::kTcpSyn | net::kTcpAck);
    EXPECT_TRUE(run_both(r1, check) & net::kCtStateReply);
    EXPECT_EQ(net::parse_flow(r1).nw_dst, ipv4(1, 1, 1, 1));
    EXPECT_EQ(net::parse_flow(r1).tp_dst, 1000);
    EXPECT_EQ(r1.meta().ct_mark, 9u);
    auto r2 = tcp(ipv4(2, 2, 2, 2), ipv4(5, 5, 5, 5), 80, 40001, net::kTcpSyn | net::kTcpAck);
    EXPECT_TRUE(run_both(r2, check) & net::kCtStateReply);
    EXPECT_EQ(net::parse_flow(r2).tp_dst, 1001);

    const auto snap_u = ct.snapshot();
    EXPECT_EQ(snap_u, kct.snapshot());
    ASSERT_EQ(snap_u.size(), 2u);
    EXPECT_TRUE(snap_u[0].nat);
    EXPECT_EQ(snap_u[0].mark, 9u);
    EXPECT_EQ(snap_u[0].reply.dport, 40000);
    EXPECT_EQ(snap_u[1].reply.dport, 40001);
}

} // namespace
} // namespace ovsx::ovs
