#include <gtest/gtest.h>

#include "ebpf/programs.h"
#include "ebpf/verifier.h"
#include "ebpf/vm.h"
#include "net/builder.h"
#include "net/headers.h"

namespace ovsx::ebpf {
namespace {

net::Packet udp_to(std::uint32_t dst_ip, std::uint16_t dst_port, std::uint16_t src_port = 1000)
{
    net::UdpSpec spec;
    spec.src_mac = net::MacAddr::from_id(1);
    spec.dst_mac = net::MacAddr::from_id(2);
    spec.src_ip = net::ipv4(10, 0, 0, 1);
    spec.dst_ip = dst_ip;
    spec.src_port = src_port;
    spec.dst_port = dst_port;
    return net::build_udp(spec);
}

net::Packet tcp_to(std::uint16_t dst_port)
{
    net::TcpSpec spec;
    spec.src_mac = net::MacAddr::from_id(1);
    spec.dst_mac = net::MacAddr::from_id(2);
    spec.src_ip = net::ipv4(10, 0, 0, 1);
    spec.dst_ip = net::ipv4(10, 0, 0, 2);
    spec.src_port = 999;
    spec.dst_port = dst_port;
    return net::build_tcp(spec);
}

TEST(XdpPrograms, PassAndDrop)
{
    Vm vm;
    auto pass = xdp_pass_all();
    auto drop = xdp_drop_all();
    net::Packet p = udp_to(net::ipv4(10, 0, 0, 2), 80);
    EXPECT_EQ(vm.run_xdp(pass, p).action, XdpAction::Pass);
    EXPECT_EQ(vm.run_xdp(drop, p).action, XdpAction::Drop);
}

TEST(XdpPrograms, ComplexityLadderTable5)
{
    // Table 5's premise: instruction count (and so cost) increases
    // monotonically from task A to task D.
    Vm vm;
    auto l2 = std::make_shared<Map>(MapType::Hash, "l2", 8, 4, 128);
    // Populate the entry task C will hit (dst MAC of the test packet).
    std::uint8_t key[8] = {};
    const auto mac = net::MacAddr::from_id(2);
    std::copy(mac.bytes.begin(), mac.bytes.end(), key);
    const std::uint32_t port_no = 3;
    ASSERT_TRUE(l2->update(key, {reinterpret_cast<const std::uint8_t*>(&port_no), 4}));

    auto a = xdp_drop_all();
    auto b = xdp_parse_drop();
    auto c = xdp_parse_lookup_drop(l2);
    auto d = xdp_swap_macs_tx();

    net::Packet pa = udp_to(net::ipv4(10, 0, 0, 2), 80);
    net::Packet pb = udp_to(net::ipv4(10, 0, 0, 2), 80);
    net::Packet pc = udp_to(net::ipv4(10, 0, 0, 2), 80);
    net::Packet pd = udp_to(net::ipv4(10, 0, 0, 2), 80);

    const auto ra = vm.run_xdp(a, pa);
    const auto rb = vm.run_xdp(b, pb);
    const auto rc = vm.run_xdp(c, pc);
    const auto rd = vm.run_xdp(d, pd);

    EXPECT_EQ(ra.action, XdpAction::Drop);
    EXPECT_EQ(rb.action, XdpAction::Drop);
    EXPECT_EQ(rc.action, XdpAction::Drop);
    EXPECT_EQ(rd.action, XdpAction::Tx);

    EXPECT_LT(ra.insns, rb.insns);
    EXPECT_LT(rb.insns, rc.insns);
    EXPECT_LT(ra.cost, rb.cost);
    EXPECT_LT(rb.cost, rc.cost);
    // Task D's cost advantage over C comes from skipping the map lookup;
    // its end-to-end rate is still lowest because XDP_TX pays the TX path
    // (charged by the driver model, not the VM).
    EXPECT_GT(rd.insns, rb.insns);
    EXPECT_EQ(rc.map_lookups, 1u);
}

TEST(XdpPrograms, SwapMacsActuallySwaps)
{
    Vm vm;
    auto prog = xdp_swap_macs_tx();
    net::Packet p = udp_to(net::ipv4(10, 0, 0, 2), 80);
    const auto src_before = p.header_at<net::EthernetHeader>(0)->src;
    const auto dst_before = p.header_at<net::EthernetHeader>(0)->dst;
    ASSERT_EQ(vm.run_xdp(prog, p).action, XdpAction::Tx);
    EXPECT_EQ(p.header_at<net::EthernetHeader>(0)->src, dst_before);
    EXPECT_EQ(p.header_at<net::EthernetHeader>(0)->dst, src_before);
}

TEST(XdpPrograms, ParseDropDropsNonIpv4Too)
{
    Vm vm;
    auto prog = xdp_parse_drop();
    net::Packet arp = net::build_arp(true, net::MacAddr::from_id(1), net::ipv4(10, 0, 0, 1),
                                     net::MacAddr(), net::ipv4(10, 0, 0, 2));
    EXPECT_EQ(vm.run_xdp(prog, arp).action, XdpAction::Drop);
}

TEST(XdpPrograms, RedirectToXskFollowsQueueBinding)
{
    auto xsk = std::make_shared<Map>(MapType::XskMap, "xsks", 4, 4, 16);
    const std::uint32_t q2 = 2;
    ASSERT_TRUE(xsk->update_kv(q2, std::uint32_t{1}));
    auto prog = xdp_redirect_to_xsk(xsk);

    Vm vm;
    net::Packet p = udp_to(net::ipv4(10, 0, 0, 2), 80);
    EXPECT_EQ(vm.run_xdp(prog, p, 1, /*queue=*/2).action, XdpAction::Redirect);
    EXPECT_EQ(vm.run_xdp(prog, p, 1, /*queue=*/3).action, XdpAction::Pass); // no socket
}

TEST(XdpPrograms, ContainerBypassRedirectsKnownIps)
{
    auto ip_table = std::make_shared<Map>(MapType::Hash, "ip", 4, 4, 64);
    auto dev = std::make_shared<Map>(MapType::DevMap, "dev", 4, 4, 16);
    auto xsk = std::make_shared<Map>(MapType::XskMap, "xsk", 4, 4, 16);

    // Container IP 10.0.0.2 lives behind devmap slot 3 -> ifindex 42.
    const std::uint32_t container_ip_wire = net::host_to_be32(net::ipv4(10, 0, 0, 2));
    ASSERT_TRUE(ip_table->update_kv(container_ip_wire, std::uint32_t{3}));
    const std::uint32_t slot3 = 3;
    ASSERT_TRUE(dev->update_kv(slot3, std::uint32_t{42}));
    const std::uint32_t q0 = 0;
    ASSERT_TRUE(xsk->update_kv(q0, std::uint32_t{1}));

    auto prog = xdp_container_bypass(ip_table, dev, xsk);
    ASSERT_TRUE(verify(prog).ok);

    Vm vm;
    net::Packet hit = udp_to(net::ipv4(10, 0, 0, 2), 80);
    auto res = vm.run_xdp(prog, hit, 1, 0);
    EXPECT_EQ(res.action, XdpAction::Redirect);
    EXPECT_EQ(res.redirect_map->type(), MapType::DevMap);
    EXPECT_EQ(res.redirect_key, 3u);

    net::Packet miss = udp_to(net::ipv4(10, 0, 0, 99), 80);
    auto res2 = vm.run_xdp(prog, miss, 1, 0);
    EXPECT_EQ(res2.action, XdpAction::Redirect);
    EXPECT_EQ(res2.redirect_map->type(), MapType::XskMap);
}

TEST(XdpPrograms, L4LbRewritesAndBounces)
{
    auto backends = std::make_shared<Map>(MapType::Array, "be", 4, 4, 8);
    auto xsk = std::make_shared<Map>(MapType::XskMap, "xsk", 4, 4, 16);
    const std::uint32_t q0 = 0;
    ASSERT_TRUE(xsk->update_kv(q0, std::uint32_t{1}));
    // Backends in slots 1..4 (wire byte order).
    for (std::uint32_t i = 1; i <= 4; ++i) {
        const std::uint32_t ip_wire = net::host_to_be32(net::ipv4(10, 0, 1, static_cast<std::uint8_t>(i)));
        ASSERT_TRUE(backends->update_kv(i, ip_wire));
    }

    auto prog = xdp_l4_lb(8080, backends, xsk);
    ASSERT_TRUE(verify(prog).ok);

    Vm vm;
    net::Packet vip_pkt = udp_to(net::ipv4(10, 0, 0, 100), 8080, /*src_port=*/1001);
    auto res = vm.run_xdp(prog, vip_pkt, 1, 0);
    EXPECT_EQ(res.action, XdpAction::Tx);
    const auto* ip = vip_pkt.header_at<net::Ipv4Header>(14);
    // dst rewritten into the 10.0.1.x backend range
    EXPECT_EQ(ip->dst() & 0xffffff00, net::ipv4(10, 0, 1, 0));

    net::Packet other = udp_to(net::ipv4(10, 0, 0, 100), 443);
    auto res2 = vm.run_xdp(prog, other, 1, 0);
    EXPECT_EQ(res2.action, XdpAction::Redirect); // to OVS via XSK
}

TEST(XdpPrograms, SteeringSendsMgmtToStack)
{
    auto xsk = std::make_shared<Map>(MapType::XskMap, "xsk", 4, 4, 16);
    const std::uint32_t q0 = 0;
    ASSERT_TRUE(xsk->update_kv(q0, std::uint32_t{1}));
    auto prog = xdp_steer_mgmt_to_stack(22, xsk);
    ASSERT_TRUE(verify(prog).ok);

    Vm vm;
    net::Packet ssh = tcp_to(22);
    EXPECT_EQ(vm.run_xdp(prog, ssh, 1, 0).action, XdpAction::Pass);
    net::Packet data = tcp_to(8000);
    EXPECT_EQ(vm.run_xdp(prog, data, 1, 0).action, XdpAction::Redirect);
    net::Packet udp = udp_to(net::ipv4(10, 0, 0, 2), 22);
    EXPECT_EQ(vm.run_xdp(prog, udp, 1, 0).action, XdpAction::Redirect); // UDP is not mgmt
}

TEST(XdpPrograms, AllProgramsSurviveRuntPackets)
{
    // Defensive: every canned program must handle a 10-byte runt without
    // aborting (bounds checks route it to the fallback path).
    auto l2 = std::make_shared<Map>(MapType::Hash, "l2", 8, 4, 16);
    auto xsk = std::make_shared<Map>(MapType::XskMap, "x", 4, 4, 4);
    auto dev = std::make_shared<Map>(MapType::DevMap, "d", 4, 4, 4);
    auto ip = std::make_shared<Map>(MapType::Hash, "ip", 4, 4, 16);
    auto be = std::make_shared<Map>(MapType::Array, "b", 4, 4, 8);

    Vm vm;
    for (const auto& prog :
         {xdp_parse_drop(), xdp_parse_lookup_drop(l2), xdp_swap_macs_tx(),
          xdp_container_bypass(ip, dev, xsk), xdp_l4_lb(80, be, xsk),
          xdp_steer_mgmt_to_stack(22, xsk)}) {
        net::Packet runt(10);
        const auto res = vm.run_xdp(prog, runt, 1, 0);
        EXPECT_NE(res.action, XdpAction::Aborted) << prog.name << ": " << res.fault;
    }
}

} // namespace
} // namespace ovsx::ebpf
