#include <gtest/gtest.h>

#include "kern/kernel.h"
#include "kern/nic.h"
#include "kern/stack.h"
#include "ovs/netlink_cache.h"

namespace ovsx::ovs {
namespace {

using net::ipv4;

class NetlinkCacheTest : public ::testing::Test {
protected:
    kern::Kernel host{"host"};
};

TEST_F(NetlinkCacheTest, SnapshotsExistingState)
{
    auto& nic = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    host.stack().add_address(nic.ifindex(), ipv4(172, 16, 0, 1), 24);
    host.stack().add_neighbor(ipv4(172, 16, 0, 2), net::MacAddr::from_id(9), nic.ifindex());

    NetlinkCache cache(host);
    const auto hop = cache.resolve(ipv4(172, 16, 0, 2));
    ASSERT_TRUE(hop.has_value());
    EXPECT_EQ(hop->ifindex, nic.ifindex());
    EXPECT_EQ(hop->src_ip, ipv4(172, 16, 0, 1));
    EXPECT_EQ(hop->src_mac, nic.mac());
    EXPECT_EQ(hop->dst_mac, net::MacAddr::from_id(9));
}

TEST_F(NetlinkCacheTest, RefreshesOnKernelChanges)
{
    auto& nic = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    NetlinkCache cache(host);
    EXPECT_FALSE(cache.resolve(ipv4(172, 16, 0, 2)).has_value());
    const auto before = cache.refreshes();

    // Control-plane updates propagate through the change listeners, the
    // mechanism §4 describes (no per-packet kernel calls).
    host.stack().add_address(nic.ifindex(), ipv4(172, 16, 0, 1), 24);
    host.stack().add_neighbor(ipv4(172, 16, 0, 2), net::MacAddr::from_id(9), nic.ifindex());
    EXPECT_GT(cache.refreshes(), before);
    EXPECT_TRUE(cache.resolve(ipv4(172, 16, 0, 2)).has_value());
}

TEST_F(NetlinkCacheTest, GatewayRoutesResolveViaNextHop)
{
    auto& nic = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    host.stack().add_address(nic.ifindex(), ipv4(172, 16, 0, 1), 24);
    host.stack().add_route(0, 0, ipv4(172, 16, 0, 254), nic.ifindex());
    host.stack().add_neighbor(ipv4(172, 16, 0, 254), net::MacAddr::from_id(0xfe),
                              nic.ifindex());

    NetlinkCache cache(host);
    const auto hop = cache.resolve(ipv4(8, 8, 8, 8));
    ASSERT_TRUE(hop.has_value());
    EXPECT_EQ(hop->dst_mac, net::MacAddr::from_id(0xfe)); // gateway MAC, not dest
}

TEST_F(NetlinkCacheTest, LongestPrefixWinsInTheReplica)
{
    auto& nic0 = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    auto& nic1 = host.add_device<kern::PhysicalDevice>("eth1", net::MacAddr::from_id(2));
    host.stack().add_address(nic0.ifindex(), ipv4(10, 0, 0, 1), 8);
    host.stack().add_address(nic1.ifindex(), ipv4(10, 1, 0, 1), 16);
    host.stack().add_neighbor(ipv4(10, 1, 2, 3), net::MacAddr::from_id(7), nic1.ifindex());
    host.stack().add_neighbor(ipv4(10, 2, 2, 3), net::MacAddr::from_id(8), nic0.ifindex());

    NetlinkCache cache(host);
    EXPECT_EQ(cache.resolve(ipv4(10, 1, 2, 3))->ifindex, nic1.ifindex());
    EXPECT_EQ(cache.resolve(ipv4(10, 2, 2, 3))->ifindex, nic0.ifindex());
}

TEST_F(NetlinkCacheTest, MissingNeighborMarksStale)
{
    auto& nic = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    host.stack().add_address(nic.ifindex(), ipv4(172, 16, 0, 1), 24);
    NetlinkCache cache(host);
    EXPECT_FALSE(cache.resolve(ipv4(172, 16, 0, 99)).has_value());
    EXPECT_TRUE(cache.stale()); // signals an ARP resolution is needed
    host.stack().add_neighbor(ipv4(172, 16, 0, 99), net::MacAddr::from_id(5), nic.ifindex());
    EXPECT_TRUE(cache.resolve(ipv4(172, 16, 0, 99)).has_value());
    EXPECT_FALSE(cache.stale());
}

TEST_F(NetlinkCacheTest, UnroutableReturnsNothing)
{
    NetlinkCache cache(host);
    EXPECT_FALSE(cache.resolve(ipv4(203, 0, 113, 1)).has_value());
}

} // namespace
} // namespace ovsx::ovs
