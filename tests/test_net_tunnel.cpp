#include <gtest/gtest.h>

#include "net/builder.h"
#include "net/checksum.h"
#include "net/headers.h"
#include "net/int_hdr.h"
#include "net/tunnel.h"
#include "san/report.h"

namespace ovsx::net {
namespace {

Packet inner_packet()
{
    UdpSpec spec;
    spec.src_mac = MacAddr::from_id(10);
    spec.dst_mac = MacAddr::from_id(20);
    spec.src_ip = ipv4(192, 168, 1, 1);
    spec.dst_ip = ipv4(192, 168, 1, 2);
    spec.src_port = 1000;
    spec.dst_port = 2000;
    return build_udp(spec);
}

TunnelKey tunnel_key()
{
    TunnelKey key;
    key.tun_id = 5001;
    key.ip_src = ipv4(172, 16, 0, 1);
    key.ip_dst = ipv4(172, 16, 0, 2);
    key.ttl = 64;
    return key;
}

EncapParams encap_params()
{
    EncapParams p;
    p.outer_src_mac = MacAddr::from_id(100);
    p.outer_dst_mac = MacAddr::from_id(200);
    p.udp_src_port = 50000;
    return p;
}

class TunnelRoundTrip : public ::testing::TestWithParam<TunnelType> {};

TEST_P(TunnelRoundTrip, EncapDecapPreservesInnerFrame)
{
    const TunnelType type = GetParam();
    Packet pkt = inner_packet();
    const std::vector<std::uint8_t> original(pkt.bytes().begin(), pkt.bytes().end());

    const auto added = encapsulate(pkt, type, tunnel_key(), encap_params());
    EXPECT_EQ(added, encap_overhead(type));
    EXPECT_EQ(pkt.size(), original.size() + added);

    // Outer headers are sane.
    const auto* eth = pkt.header_at<EthernetHeader>(0);
    EXPECT_EQ(eth->src, MacAddr::from_id(100));
    EXPECT_EQ(eth->ether_type(), static_cast<std::uint16_t>(EtherType::Ipv4));
    const auto* ip = pkt.header_at<Ipv4Header>(14);
    EXPECT_EQ(ip->src(), ipv4(172, 16, 0, 1));
    EXPECT_EQ(ip->total_len(), pkt.size() - 14);
    EXPECT_EQ(internet_checksum({pkt.data() + 14, 20}), 0); // valid outer IP csum

    auto res = decapsulate(pkt, type);
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->type, type);
    EXPECT_EQ(res->key.ip_src, ipv4(172, 16, 0, 1));
    EXPECT_EQ(res->key.ip_dst, ipv4(172, 16, 0, 2));
    if (type != TunnelType::Erspan) {
        EXPECT_EQ(res->key.tun_id, 5001u);
    } else {
        EXPECT_EQ(res->key.tun_id, 5001u & 0x3ff); // 10-bit session id
    }

    ASSERT_EQ(pkt.size(), original.size());
    EXPECT_EQ(std::vector<std::uint8_t>(pkt.bytes().begin(), pkt.bytes().end()), original);
}

INSTANTIATE_TEST_SUITE_P(AllTunnelTypes, TunnelRoundTrip,
                         ::testing::Values(TunnelType::Geneve, TunnelType::Vxlan,
                                           TunnelType::Gre, TunnelType::Erspan),
                         [](const auto& info) { return to_string(info.param); });

TEST(Tunnel, GeneveUsesWellKnownPort)
{
    Packet pkt = inner_packet();
    encapsulate(pkt, TunnelType::Geneve, tunnel_key(), encap_params());
    const auto* udp = pkt.header_at<UdpHeader>(34);
    EXPECT_EQ(udp->dst(), kGenevePort);
    EXPECT_EQ(udp->src(), 50000);
}

TEST(Tunnel, GeneveOptionalUdpChecksum)
{
    Packet pkt = inner_packet();
    auto params = encap_params();
    params.udp_csum = true;
    encapsulate(pkt, TunnelType::Geneve, tunnel_key(), params);
    EXPECT_TRUE(verify_l4_csum(pkt, 14));
}

TEST(Tunnel, AutoDetectsType)
{
    for (const auto type : {TunnelType::Geneve, TunnelType::Vxlan, TunnelType::Gre}) {
        Packet pkt = inner_packet();
        encapsulate(pkt, type, tunnel_key(), encap_params());
        auto res = decapsulate_auto(pkt);
        ASSERT_TRUE(res.has_value()) << to_string(type);
        EXPECT_EQ(res->type, type);
    }
}

TEST(Tunnel, NonTunnelPacketIsRejected)
{
    Packet pkt = inner_packet(); // plain UDP to port 2000
    EXPECT_FALSE(decapsulate_auto(pkt).has_value());
    EXPECT_FALSE(decapsulate(pkt, TunnelType::Geneve).has_value());
    // Rejection must not consume any bytes.
    EXPECT_EQ(pkt.size(), inner_packet().size());
}

TEST(Tunnel, WrongExpectedTypeIsRejected)
{
    Packet pkt = inner_packet();
    encapsulate(pkt, TunnelType::Vxlan, tunnel_key(), encap_params());
    EXPECT_FALSE(decapsulate(pkt, TunnelType::Geneve).has_value());
}

TEST(Tunnel, TruncatedTunnelHeaderIsRejected)
{
    Packet pkt = inner_packet();
    encapsulate(pkt, TunnelType::Geneve, tunnel_key(), encap_params());
    pkt.truncate(40); // cut inside the Geneve header
    EXPECT_FALSE(decapsulate_auto(pkt).has_value());
}

TEST(Tunnel, OverheadMatchesKnownSizes)
{
    EXPECT_EQ(encap_overhead(TunnelType::Geneve), 14u + 20u + 8u + 8u);
    EXPECT_EQ(encap_overhead(TunnelType::Vxlan), 14u + 20u + 8u + 8u);
    EXPECT_EQ(encap_overhead(TunnelType::Gre), 14u + 20u + 4u + 4u);
    EXPECT_EQ(encap_overhead(TunnelType::Erspan), 14u + 20u + 4u + 4u + 8u);
}

TEST(Tunnel, NestedEncapsulation)
{
    // Geneve-in-GRE: decapsulating twice recovers the original frame.
    Packet pkt = inner_packet();
    const std::vector<std::uint8_t> original(pkt.bytes().begin(), pkt.bytes().end());
    encapsulate(pkt, TunnelType::Geneve, tunnel_key(), encap_params());
    TunnelKey outer = tunnel_key();
    outer.tun_id = 9;
    encapsulate(pkt, TunnelType::Gre, outer, encap_params());

    auto first = decapsulate_auto(pkt);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->type, TunnelType::Gre);
    EXPECT_EQ(first->key.tun_id, 9u);
    auto second = decapsulate_auto(pkt);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->type, TunnelType::Geneve);
    EXPECT_EQ(std::vector<std::uint8_t>(pkt.bytes().begin(), pkt.bytes().end()), original);
}

// ---- Geneve option-area hardening and the INT option ---------------------

constexpr std::size_t kGeneveHdrOff =
    sizeof(EthernetHeader) + sizeof(Ipv4Header) + sizeof(UdpHeader);

Packet geneve_with_int(std::uint8_t max_hops = 4)
{
    Packet pkt = inner_packet();
    encapsulate(pkt, TunnelType::Geneve, tunnel_key(), encap_params());
    EXPECT_TRUE(int_attach(pkt, max_hops));
    return pkt;
}

TEST(GeneveOptions, OptLenPastPacketEndIsRejected)
{
    Packet pkt = inner_packet();
    encapsulate(pkt, TunnelType::Geneve, tunnel_key(), encap_params());
    // Claim a huge options area: the whole remaining packet plus more.
    auto* gnv = pkt.checked_header_at<GeneveHeader>(kGeneveHdrOff, OVSX_SITE);
    ASSERT_NE(gnv, nullptr);
    gnv->ver_optlen = static_cast<std::uint8_t>((gnv->ver_optlen & 0xc0) | 0x3f);
    EXPECT_FALSE(decapsulate(pkt, TunnelType::Geneve).has_value());
    EXPECT_FALSE(int_find(pkt).has_value());
}

TEST(GeneveOptions, TruncatedOptionAreaIsRejected)
{
    Packet pkt = geneve_with_int();
    // Cut inside the options area: the Geneve header survives but its
    // advertised option bytes do not.
    pkt.truncate(kGeneveHdrOff + sizeof(GeneveHeader) + 2);
    EXPECT_FALSE(decapsulate(pkt, TunnelType::Geneve).has_value());
    EXPECT_FALSE(int_find(pkt).has_value());
}

TEST(GeneveOptions, OversizedTlvBodyIsRejected)
{
    Packet pkt = geneve_with_int();
    // The lone TLV claims a body larger than the option area it sits in.
    const std::size_t opt_off = kGeneveHdrOff + sizeof(GeneveHeader);
    auto* opt = pkt.checked_header_at<GeneveOptionHeader>(opt_off, OVSX_SITE);
    ASSERT_NE(opt, nullptr);
    opt->set_body_len_bytes(sizeof(IntMetadata) + 3 * sizeof(IntHopRecord));
    EXPECT_FALSE(decapsulate(pkt, TunnelType::Geneve).has_value());
    EXPECT_FALSE(int_find(pkt).has_value());
}

TEST(GeneveOptions, HopCountLengthMismatchIsRejected)
{
    Packet pkt = geneve_with_int();
    ASSERT_TRUE(int_stamp(pkt, {7, kIntTierHost, kIntTierHost, 1, 10}));
    // Metadata now claims two hops while the TLV holds bytes for one.
    const std::size_t meta_off =
        kGeneveHdrOff + sizeof(GeneveHeader) + sizeof(GeneveOptionHeader);
    auto* meta = pkt.checked_header_at<IntMetadata>(meta_off, OVSX_SITE);
    ASSERT_NE(meta, nullptr);
    meta->hop_count = 2;
    EXPECT_FALSE(int_find(pkt).has_value());
    EXPECT_TRUE(int_read(pkt).empty());
    // The raw-region parser applies the same consistency check.
    auto res = decapsulate(pkt, TunnelType::Geneve);
    ASSERT_TRUE(res.has_value()); // tunnel itself is fine, the option is not
    EXPECT_TRUE(int_parse_options(res->geneve_opts).empty());
}

TEST(GeneveOptions, IntAttachStampStripRoundTrip)
{
    Packet pkt = inner_packet();
    encapsulate(pkt, TunnelType::Geneve, tunnel_key(), encap_params());
    const std::vector<std::uint8_t> encapped(pkt.bytes().begin(), pkt.bytes().end());

    ASSERT_TRUE(int_attach(pkt, 4));
    EXPECT_FALSE(int_attach(pkt, 4)); // at most one INT option per frame
    ASSERT_TRUE(int_stamp(pkt, {101, kIntTierHost, kIntTierLeaf, 3, 1000}));
    ASSERT_TRUE(int_stamp(pkt, {202, kIntTierLeaf, kIntTierSpine, 8, 2500}));

    const auto hops = int_read(pkt);
    ASSERT_EQ(hops.size(), 2u);
    EXPECT_EQ(hops[0].switch_id, 101u);
    EXPECT_EQ(hops[0].egress_tier, kIntTierLeaf);
    EXPECT_EQ(hops[1].switch_id, 202u);
    EXPECT_EQ(hops[1].occupancy, 8u);
    EXPECT_EQ(hops[1].latency_ticks, 2500u);

    // Stripping restores the exact pre-INT encapsulated frame, modulo
    // the outer UDP checksum which attaching legitimately cleared.
    ASSERT_TRUE(int_strip(pkt));
    Packet ref = Packet::from_bytes(encapped);
    auto* udp = ref.checked_header_at<UdpHeader>(
        sizeof(EthernetHeader) + sizeof(Ipv4Header), OVSX_SITE);
    ASSERT_NE(udp, nullptr);
    udp->csum_be = 0;
    EXPECT_EQ(std::vector<std::uint8_t>(pkt.bytes().begin(), pkt.bytes().end()),
              std::vector<std::uint8_t>(ref.bytes().begin(), ref.bytes().end()));
}

TEST(GeneveOptions, StampPastMaxHopsSetsTruncatedFlag)
{
    Packet pkt = geneve_with_int(/*max_hops=*/1);
    ASSERT_TRUE(int_stamp(pkt, {1, kIntTierHost, kIntTierHost, 0, 16}));
    EXPECT_FALSE(int_stamp(pkt, {2, kIntTierLeaf, kIntTierLeaf, 0, 32}));

    const auto loc = int_find(pkt);
    ASSERT_TRUE(loc.has_value());
    EXPECT_EQ(loc->hop_count, 1u);
    EXPECT_NE(loc->flags & kIntFlagTruncated, 0);

    auto res = decapsulate(pkt, TunnelType::Geneve);
    ASSERT_TRUE(res.has_value());
    bool truncated = false;
    const auto hops = int_parse_options(res->geneve_opts, &truncated);
    ASSERT_EQ(hops.size(), 1u);
    EXPECT_TRUE(truncated);
}

TEST(GeneveOptions, DecapSurfacesOptionsAndInnerFrameIsUntouched)
{
    Packet pkt = inner_packet();
    const std::vector<std::uint8_t> original(pkt.bytes().begin(), pkt.bytes().end());
    encapsulate(pkt, TunnelType::Geneve, tunnel_key(), encap_params());
    ASSERT_TRUE(int_attach(pkt, 4));
    ASSERT_TRUE(int_stamp(pkt, {42, kIntTierHost, kIntTierLeaf, 1, 64}));

    auto res = decapsulate(pkt, TunnelType::Geneve);
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->key.tun_id, tunnel_key().tun_id);
    const auto hops = int_parse_options(res->geneve_opts);
    ASSERT_EQ(hops.size(), 1u);
    EXPECT_EQ(hops[0].switch_id, 42u);
    EXPECT_EQ(std::vector<std::uint8_t>(pkt.bytes().begin(), pkt.bytes().end()), original);
}

} // namespace
} // namespace ovsx::net
