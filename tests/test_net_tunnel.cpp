#include <gtest/gtest.h>

#include "net/builder.h"
#include "net/checksum.h"
#include "net/headers.h"
#include "net/tunnel.h"

namespace ovsx::net {
namespace {

Packet inner_packet()
{
    UdpSpec spec;
    spec.src_mac = MacAddr::from_id(10);
    spec.dst_mac = MacAddr::from_id(20);
    spec.src_ip = ipv4(192, 168, 1, 1);
    spec.dst_ip = ipv4(192, 168, 1, 2);
    spec.src_port = 1000;
    spec.dst_port = 2000;
    return build_udp(spec);
}

TunnelKey tunnel_key()
{
    TunnelKey key;
    key.tun_id = 5001;
    key.ip_src = ipv4(172, 16, 0, 1);
    key.ip_dst = ipv4(172, 16, 0, 2);
    key.ttl = 64;
    return key;
}

EncapParams encap_params()
{
    EncapParams p;
    p.outer_src_mac = MacAddr::from_id(100);
    p.outer_dst_mac = MacAddr::from_id(200);
    p.udp_src_port = 50000;
    return p;
}

class TunnelRoundTrip : public ::testing::TestWithParam<TunnelType> {};

TEST_P(TunnelRoundTrip, EncapDecapPreservesInnerFrame)
{
    const TunnelType type = GetParam();
    Packet pkt = inner_packet();
    const std::vector<std::uint8_t> original(pkt.bytes().begin(), pkt.bytes().end());

    const auto added = encapsulate(pkt, type, tunnel_key(), encap_params());
    EXPECT_EQ(added, encap_overhead(type));
    EXPECT_EQ(pkt.size(), original.size() + added);

    // Outer headers are sane.
    const auto* eth = pkt.header_at<EthernetHeader>(0);
    EXPECT_EQ(eth->src, MacAddr::from_id(100));
    EXPECT_EQ(eth->ether_type(), static_cast<std::uint16_t>(EtherType::Ipv4));
    const auto* ip = pkt.header_at<Ipv4Header>(14);
    EXPECT_EQ(ip->src(), ipv4(172, 16, 0, 1));
    EXPECT_EQ(ip->total_len(), pkt.size() - 14);
    EXPECT_EQ(internet_checksum({pkt.data() + 14, 20}), 0); // valid outer IP csum

    auto res = decapsulate(pkt, type);
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->type, type);
    EXPECT_EQ(res->key.ip_src, ipv4(172, 16, 0, 1));
    EXPECT_EQ(res->key.ip_dst, ipv4(172, 16, 0, 2));
    if (type != TunnelType::Erspan) {
        EXPECT_EQ(res->key.tun_id, 5001u);
    } else {
        EXPECT_EQ(res->key.tun_id, 5001u & 0x3ff); // 10-bit session id
    }

    ASSERT_EQ(pkt.size(), original.size());
    EXPECT_EQ(std::vector<std::uint8_t>(pkt.bytes().begin(), pkt.bytes().end()), original);
}

INSTANTIATE_TEST_SUITE_P(AllTunnelTypes, TunnelRoundTrip,
                         ::testing::Values(TunnelType::Geneve, TunnelType::Vxlan,
                                           TunnelType::Gre, TunnelType::Erspan),
                         [](const auto& info) { return to_string(info.param); });

TEST(Tunnel, GeneveUsesWellKnownPort)
{
    Packet pkt = inner_packet();
    encapsulate(pkt, TunnelType::Geneve, tunnel_key(), encap_params());
    const auto* udp = pkt.header_at<UdpHeader>(34);
    EXPECT_EQ(udp->dst(), kGenevePort);
    EXPECT_EQ(udp->src(), 50000);
}

TEST(Tunnel, GeneveOptionalUdpChecksum)
{
    Packet pkt = inner_packet();
    auto params = encap_params();
    params.udp_csum = true;
    encapsulate(pkt, TunnelType::Geneve, tunnel_key(), params);
    EXPECT_TRUE(verify_l4_csum(pkt, 14));
}

TEST(Tunnel, AutoDetectsType)
{
    for (const auto type : {TunnelType::Geneve, TunnelType::Vxlan, TunnelType::Gre}) {
        Packet pkt = inner_packet();
        encapsulate(pkt, type, tunnel_key(), encap_params());
        auto res = decapsulate_auto(pkt);
        ASSERT_TRUE(res.has_value()) << to_string(type);
        EXPECT_EQ(res->type, type);
    }
}

TEST(Tunnel, NonTunnelPacketIsRejected)
{
    Packet pkt = inner_packet(); // plain UDP to port 2000
    EXPECT_FALSE(decapsulate_auto(pkt).has_value());
    EXPECT_FALSE(decapsulate(pkt, TunnelType::Geneve).has_value());
    // Rejection must not consume any bytes.
    EXPECT_EQ(pkt.size(), inner_packet().size());
}

TEST(Tunnel, WrongExpectedTypeIsRejected)
{
    Packet pkt = inner_packet();
    encapsulate(pkt, TunnelType::Vxlan, tunnel_key(), encap_params());
    EXPECT_FALSE(decapsulate(pkt, TunnelType::Geneve).has_value());
}

TEST(Tunnel, TruncatedTunnelHeaderIsRejected)
{
    Packet pkt = inner_packet();
    encapsulate(pkt, TunnelType::Geneve, tunnel_key(), encap_params());
    pkt.truncate(40); // cut inside the Geneve header
    EXPECT_FALSE(decapsulate_auto(pkt).has_value());
}

TEST(Tunnel, OverheadMatchesKnownSizes)
{
    EXPECT_EQ(encap_overhead(TunnelType::Geneve), 14u + 20u + 8u + 8u);
    EXPECT_EQ(encap_overhead(TunnelType::Vxlan), 14u + 20u + 8u + 8u);
    EXPECT_EQ(encap_overhead(TunnelType::Gre), 14u + 20u + 4u + 4u);
    EXPECT_EQ(encap_overhead(TunnelType::Erspan), 14u + 20u + 4u + 4u + 8u);
}

TEST(Tunnel, NestedEncapsulation)
{
    // Geneve-in-GRE: decapsulating twice recovers the original frame.
    Packet pkt = inner_packet();
    const std::vector<std::uint8_t> original(pkt.bytes().begin(), pkt.bytes().end());
    encapsulate(pkt, TunnelType::Geneve, tunnel_key(), encap_params());
    TunnelKey outer = tunnel_key();
    outer.tun_id = 9;
    encapsulate(pkt, TunnelType::Gre, outer, encap_params());

    auto first = decapsulate_auto(pkt);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->type, TunnelType::Gre);
    EXPECT_EQ(first->key.tun_id, 9u);
    auto second = decapsulate_auto(pkt);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->type, TunnelType::Geneve);
    EXPECT_EQ(std::vector<std::uint8_t>(pkt.bytes().begin(), pkt.bytes().end()), original);
}

} // namespace
} // namespace ovsx::net
