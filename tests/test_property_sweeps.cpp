// Parameterized property sweeps over the core data structures.
#include <gtest/gtest.h>

#include <thread>

#include "afxdp/ring.h"
#include "gen/fuzz.h"
#include "kern/conntrack.h"
#include "net/builder.h"
#include "net/headers.h"
#include "net/tunnel.h"
#include "ovs/emc.h"
#include "sim/rng.h"

namespace ovsx {
namespace {

// ---- SPSC rings across capacities -------------------------------------

class RingSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RingSweep, TwoThreadFifoAtAnyCapacity)
{
    afxdp::SpscRing<std::uint64_t> ring(GetParam());
    // Modest count with yields: this host may be single-core, where a
    // full/empty ring otherwise burns a whole scheduler quantum per item.
    constexpr std::uint64_t kCount = 4000;
    std::thread producer([&] {
        for (std::uint64_t i = 0; i < kCount;) {
            if (ring.produce(i)) {
                ++i;
            } else {
                std::this_thread::yield();
            }
        }
    });
    std::uint64_t expected = 0;
    while (expected < kCount) {
        if (auto v = ring.consume()) {
            ASSERT_EQ(*v, expected);
            ++expected;
        } else {
            std::this_thread::yield();
        }
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

TEST_P(RingSweep, NeverExceedsCapacity)
{
    afxdp::SpscRing<int> ring(GetParam());
    std::uint32_t accepted = 0;
    for (std::uint32_t i = 0; i < GetParam() * 2; ++i) {
        if (ring.produce(static_cast<int>(i))) ++accepted;
    }
    EXPECT_EQ(accepted, GetParam());
    EXPECT_TRUE(ring.full());
}

INSTANTIATE_TEST_SUITE_P(Capacities, RingSweep, ::testing::Values(2u, 8u, 64u, 1024u),
                         [](const auto& info) { return "cap" + std::to_string(info.param); });

// ---- conntrack across trackable protocols ------------------------------

class CtProtoSweep : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(CtProtoSweep, FullLifecyclePerProtocol)
{
    const std::uint8_t proto = GetParam();
    kern::Conntrack ct;
    sim::ExecContext ctx("x", sim::CpuClass::Softirq);

    net::FlowKey key;
    key.nw_src = net::ipv4(1, 1, 1, 1);
    key.nw_dst = net::ipv4(2, 2, 2, 2);
    key.nw_proto = proto;
    key.tp_src = 1000;
    key.tp_dst = 2000;
    net::Packet pkt(64);

    auto r1 = ct.process(pkt, key, 0, /*commit=*/true, ctx, 0);
    EXPECT_TRUE(r1.state & net::kCtStateNew) << int(proto);

    net::FlowKey reply;
    reply.nw_src = key.nw_dst;
    reply.nw_dst = key.nw_src;
    reply.nw_proto = proto;
    reply.tp_src = key.tp_dst;
    reply.tp_dst = key.tp_src;
    auto r2 = ct.process(pkt, reply, 0, false, ctx, 1);
    EXPECT_TRUE(r2.state & net::kCtStateReply) << int(proto);
    EXPECT_TRUE(r2.state & net::kCtStateEstablished) << int(proto);
    EXPECT_EQ(ct.size(), 1u);
    EXPECT_EQ(ct.expire_idle(2), 1u);
}

INSTANTIATE_TEST_SUITE_P(Protocols, CtProtoSweep,
                         ::testing::Values(std::uint8_t{1}, std::uint8_t{6}, std::uint8_t{17}),
                         [](const auto& info) {
                             switch (info.param) {
                             case 1: return std::string("icmp");
                             case 6: return std::string("tcp");
                             default: return std::string("udp");
                             }
                         });

// ---- tunnels across payload sizes ---------------------------------------

struct TunnelSizeCase {
    net::TunnelType type;
    std::size_t payload;
};

class TunnelSizeSweep : public ::testing::TestWithParam<TunnelSizeCase> {};

TEST_P(TunnelSizeSweep, RoundTripAtEverySize)
{
    const auto& param = GetParam();
    net::UdpSpec spec;
    spec.src_ip = net::ipv4(1, 1, 1, 1);
    spec.dst_ip = net::ipv4(2, 2, 2, 2);
    spec.payload_len = param.payload;
    net::Packet pkt = net::build_udp(spec);
    const std::vector<std::uint8_t> original(pkt.bytes().begin(), pkt.bytes().end());

    net::TunnelKey key;
    key.tun_id = 42;
    key.ip_src = net::ipv4(172, 16, 0, 1);
    key.ip_dst = net::ipv4(172, 16, 0, 2);
    net::EncapParams params;
    params.outer_src_mac = net::MacAddr::from_id(1);
    params.outer_dst_mac = net::MacAddr::from_id(2);

    net::encapsulate(pkt, param.type, key, params);
    auto res = net::decapsulate(pkt, param.type);
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(std::vector<std::uint8_t>(pkt.bytes().begin(), pkt.bytes().end()), original);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TunnelSizeSweep,
    ::testing::Values(TunnelSizeCase{net::TunnelType::Geneve, 1},
                      TunnelSizeCase{net::TunnelType::Geneve, 1448},
                      TunnelSizeCase{net::TunnelType::Geneve, 8972},
                      TunnelSizeCase{net::TunnelType::Vxlan, 18},
                      TunnelSizeCase{net::TunnelType::Vxlan, 1448},
                      TunnelSizeCase{net::TunnelType::Gre, 18},
                      TunnelSizeCase{net::TunnelType::Gre, 1448},
                      TunnelSizeCase{net::TunnelType::Erspan, 64}),
    [](const auto& info) {
        return std::string(net::to_string(info.param.type)) + "_" +
               std::to_string(info.param.payload);
    });

// ---- EMC across capacities -------------------------------------------------

class EmcSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EmcSweep, NeverReturnsWrongFlow)
{
    // Property: whatever the capacity and however many flows collide,
    // a lookup either misses or returns the flow inserted for exactly
    // that key.
    ovs::Emc emc(GetParam());
    sim::Rng rng(11);
    std::vector<std::pair<net::FlowKey, std::uint32_t>> inserted;
    for (int i = 0; i < 500; ++i) {
        net::UdpSpec spec;
        spec.src_ip = rng.u32();
        spec.dst_ip = rng.u32();
        spec.src_port = rng.u16();
        spec.dst_port = rng.u16();
        net::Packet pkt = net::build_udp(spec);
        const net::FlowKey key = net::parse_flow(pkt);
        auto flow = std::make_shared<ovs::CachedFlow>();
        flow->actions = {kern::OdpAction::output(static_cast<std::uint32_t>(i))};
        emc.insert(key, key.hash(), flow);
        inserted.emplace_back(key, static_cast<std::uint32_t>(i));
    }
    int hits = 0;
    for (const auto& [key, port] : inserted) {
        if (auto* flow = emc.lookup(key, key.hash())) {
            EXPECT_EQ(flow->actions[0].port, port);
            ++hits;
        }
    }
    EXPECT_GT(hits, 0);
    EXPECT_LE(emc.occupancy(), GetParam() * ovs::Emc::kWays);
}

INSTANTIATE_TEST_SUITE_P(Capacities, EmcSweep, ::testing::Values(4u, 64u, 1024u, 8192u),
                         [](const auto& info) { return "cap" + std::to_string(info.param); });

// ---- flow mask algebra --------------------------------------------------------

TEST(FlowMaskProperty, ApplyIsIdempotentAndMatchConsistent)
{
    sim::Rng rng(13);
    for (int trial = 0; trial < 300; ++trial) {
        // Random mask bytes, random key bytes.
        net::FlowMask mask;
        auto* mb = reinterpret_cast<std::uint8_t*>(&mask.bits);
        for (std::size_t i = 0; i < sizeof(net::FlowKey); ++i) {
            mb[i] = (rng.next() & 1) ? 0xff : 0x00;
        }
        net::UdpSpec spec;
        spec.src_ip = rng.u32();
        spec.dst_ip = rng.u32();
        spec.src_port = rng.u16();
        spec.dst_port = rng.u16();
        net::Packet pkt = net::build_udp(spec);
        pkt.meta().in_port = rng.u32() % 64;
        const net::FlowKey key = net::parse_flow(pkt);

        const net::FlowKey masked = mask.apply(key);
        // Idempotence: masking a masked key is a no-op.
        ASSERT_EQ(mask.apply(masked), masked);
        // Consistency: a key always matches its own masked image.
        ASSERT_TRUE(mask.matches(key, masked));
        // Perturbing any masked-in byte breaks the match.
        for (std::size_t i = 0; i < sizeof(net::FlowKey); ++i) {
            if (mb[i] != 0xff) continue;
            net::FlowKey tweaked = key;
            reinterpret_cast<std::uint8_t*>(&tweaked)[i] ^= 0x5a;
            ASSERT_FALSE(mask.matches(tweaked, masked));
            break; // one byte per trial is enough
        }

        // The fused lookup-path helpers must agree with the reference
        // two-step forms for every (mask, key) pair: masked_hash with
        // apply+hash (megaflow buckets are keyed by it), same_masked
        // with masked-image equality.
        const std::uint64_t basis = rng.next();
        ASSERT_EQ(mask.masked_hash(key, basis), masked.hash(basis));
        ASSERT_TRUE(mask.same_masked(key, masked));
    }
}

// ---- batch-vs-scalar verdict equivalence at random batch sizes ----------

// The vector spine must be observationally equivalent to the scalar
// spine at ANY burst size, not just the sizes the soak rotates through.
// Each trial draws a random batch size in [1, 2*kCapacity] and drives a
// seeded fuzz sequence through fuzz_run's batch-vs-scalar leg, which
// diffs the per-packet verdict vectors (re-attributed by trace id),
// flow/ct end state, and semantic counters — any mismatch comes back as
// an unexplained divergence.
class BatchSizeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchSizeSweep, VerdictVectorsMatchScalarAtRandomBatchSizes)
{
    const std::uint64_t seed = GetParam();
    sim::Rng rng(seed ^ 0xba7c4);
    for (int trial = 0; trial < 3; ++trial) {
        gen::FuzzConfig cfg;
        cfg.batch_size = 1 + rng.below(64); // [1, 64]: partial, full, multi-cycle
        const gen::DiffReport report = gen::fuzz_run(seed + trial, cfg, 400);
        EXPECT_TRUE(report.ok())
            << "seed=" << seed + trial << " b=" << cfg.batch_size << ": "
            << report.summary();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchSizeSweep, ::testing::Values(11u, 222u, 3333u),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

} // namespace
} // namespace ovsx
