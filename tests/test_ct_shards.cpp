// Sharding equivalence and timer-wheel expiry tests.
//
// The scale-out contract: sharding the conntracks and the megaflow
// cache by RSS hash is a cache-layout choice, never a semantic one.
// Every test here pins one face of that contract — identical traffic
// must yield bit-identical snapshots/renders/lookups at any shard
// count, the timer wheel must expire exactly what a full scan would
// (releasing NAT ports on the way), and the san audit must stay
// shard-count-invariant, catching a leak no matter which shard ate it.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gen/fuzz.h"
#include "kern/conntrack.h"
#include "kern/odp.h"
#include "kern/timer_wheel.h"
#include "net/builder.h"
#include "net/flow.h"
#include "obs/appctl.h"
#include "ovs/appctl_render.h"
#include "ovs/ct.h"
#include "ovs/dpif_netdev.h"
#include "ovs/megaflow.h"
#include "san/report.h"
#include "sim/context.h"
#include "sim/rng.h"

namespace ovsx {
namespace {

using net::ipv4;

net::Packet udp_packet(std::uint32_t src, std::uint32_t dst, std::uint16_t sport,
                       std::uint16_t dport)
{
    net::UdpSpec spec;
    spec.src_ip = src;
    spec.dst_ip = dst;
    spec.src_port = sport;
    spec.dst_port = dport;
    net::Packet p = net::build_udp(spec);
    p.meta().in_port = 1;
    return p;
}

// Seeded ct+NAT corpus: a small tuple pool (so replays refile wheel
// nodes), mixed zones/commit/NAT, continuous tick-driven expiry. All
// draws are independent of tracker state, so the identical sequence
// replays against any shard count.
template <typename Tracker>
void drive_corpus(Tracker& ct, std::uint64_t seed, std::size_t ops)
{
    sim::Rng rng(seed);
    sim::ExecContext ctx{"test", sim::CpuClass::User};
    ct.set_idle_timeout(60'000); // 60us: old pool entries churn out
    for (std::size_t i = 0; i < ops; ++i) {
        const std::uint16_t sport = static_cast<std::uint16_t>(1000 + rng.below(48));
        const std::uint32_t dst = ipv4(10, 0, 1, static_cast<std::uint8_t>(1 + rng.below(4)));
        net::Packet pkt = udp_packet(ipv4(10, 0, 0, 1), dst, sport, 53);

        kern::CtSpec spec;
        spec.zone = static_cast<std::uint16_t>(rng.below(2));
        spec.commit = rng.below(4) != 0;
        if (rng.below(3) == 0) {
            spec.nat = kern::NatSpec::src(ipv4(203, 0, 113, 5), 40000, 40063);
        }
        const sim::Nanos now = static_cast<sim::Nanos>(i) * 1000;
        ct.process(pkt, net::parse_flow(pkt), spec, ctx, now);
        ct.tick(now);
    }
}

// ---- timer wheel -------------------------------------------------------

using Wheel = kern::TimerWheel<std::uint64_t>;

TEST(TimerWheel, ExpiresOnlyDueBucketsNeverTheFuture)
{
    Wheel w(10); // ~1us buckets
    w.enqueue(1, 1000);
    w.enqueue(2, 5'000'000); // far future: must not be visited
    const auto st = w.expire(2048, [&](std::uint64_t id, std::uint64_t) {
        EXPECT_EQ(id, 1u);
        return Wheel::Verdict::Expired;
    });
    EXPECT_EQ(st.visited, 1u);
    EXPECT_EQ(st.expired, 1u);
    EXPECT_EQ(w.nodes(), 1u); // the future node stays filed
}

TEST(TimerWheel, TouchRefilesLazilyAndDropsStaleTombstones)
{
    Wheel w(10);
    const auto b0 = w.enqueue(7, 0);
    EXPECT_EQ(w.touch(7, b0, 100), b0); // same quantum: no new node
    EXPECT_EQ(w.nodes(), 1u);
    const auto b2 = w.touch(7, b0, 10'000); // new quantum: tombstone left
    EXPECT_NE(b2, b0);
    EXPECT_EQ(w.nodes(), 2u);

    // Expiring past the old bucket only: the tombstone is dropped as
    // Stale, the refiled node is untouched.
    const auto st = w.expire(5'000, [&](std::uint64_t, std::uint64_t b) {
        EXPECT_EQ(b, b0);
        return Wheel::Verdict::Stale;
    });
    EXPECT_EQ(st.visited, 1u);
    EXPECT_EQ(st.stale, 1u);
    EXPECT_EQ(w.nodes(), 1u);
}

TEST(TimerWheel, BoundaryBucketSurvivorsStayFiled)
{
    Wheel w(10);
    w.enqueue(3, 4500); // lands in the cutoff's own bucket
    const auto st = w.expire(4600, [&](std::uint64_t id, std::uint64_t) {
        EXPECT_EQ(id, 3u);
        return Wheel::Verdict::Keep;
    });
    EXPECT_EQ(st.kept, 1u);
    EXPECT_EQ(w.nodes(), 1u); // refiled, not dropped
}

// ---- shard routing -----------------------------------------------------

TEST(CtSharding, ShardRoutingIsDirectionSymmetric)
{
    sim::Rng rng(42);
    for (int i = 0; i < 200; ++i) {
        kern::CtTuple t;
        t.src = static_cast<std::uint32_t>(rng.below(1u << 31));
        t.dst = static_cast<std::uint32_t>(rng.below(1u << 31));
        t.sport = static_cast<std::uint16_t>(rng.below(65536));
        t.dport = static_cast<std::uint16_t>(rng.below(65536));
        t.proto = 17;
        t.zone = static_cast<std::uint16_t>(rng.below(4));
        for (std::uint32_t n : {2u, 4u, 16u, 64u}) {
            EXPECT_EQ(kern::Conntrack::shard_of_tuple(t, n),
                      kern::Conntrack::shard_of_tuple(t.reversed(), n));
        }
    }
}

// ---- snapshot equivalence across shard counts --------------------------

template <typename Tracker> std::vector<kern::CtSnapshotEntry> corpus_snapshot(std::uint32_t shards)
{
    Tracker ct{};
    ct.reshard(shards);
    drive_corpus(ct, 20260808, 3000);
    return ct.snapshot();
}

TEST(CtSharding, KernelSnapshotBitIdenticalAtAnyShardCount)
{
    const auto base = corpus_snapshot<kern::Conntrack>(1);
    EXPECT_FALSE(base.empty());
    EXPECT_EQ(base, corpus_snapshot<kern::Conntrack>(4));
    EXPECT_EQ(base, corpus_snapshot<kern::Conntrack>(16));
}

TEST(CtSharding, UserspaceSnapshotBitIdenticalAtAnyShardCount)
{
    const auto base = corpus_snapshot<ovs::UserspaceConntrack>(1);
    EXPECT_FALSE(base.empty());
    EXPECT_EQ(base, corpus_snapshot<ovs::UserspaceConntrack>(4));
    EXPECT_EQ(base, corpus_snapshot<ovs::UserspaceConntrack>(16));
}

// ---- NAT port release on the wheel expiry path -------------------------

// A one-port SNAT range: connection A takes the only port, idle-expires
// off the timer wheel (which must release the binding), and connection
// B — a different tuple — must then be allocated the same port
// deterministically. This is the regression for the expiry path
// skipping NAT teardown.
template <typename Tracker> void nat_port_reallocated_after_idle_expiry()
{
    Tracker ct{};
    ct.reshard(4);
    sim::ExecContext ctx{"test", sim::CpuClass::User};

    kern::CtSpec spec;
    spec.zone = 1;
    spec.commit = true;
    spec.nat = kern::NatSpec::src(ipv4(203, 0, 113, 7), 41000, 41000);

    net::Packet a = udp_packet(ipv4(10, 0, 0, 1), ipv4(10, 0, 0, 9), 1111, 80);
    const net::FlowKey key_a = net::parse_flow(a); // process() NAT-rewrites the packet
    ct.process(a, key_a, spec, ctx, 0);
    {
        const auto* e = ct.find(kern::CtTuple::from_key(key_a, 1));
        ASSERT_NE(e, nullptr);
        EXPECT_EQ(e->reply.dport, 41000);
    }
    ASSERT_EQ(ct.nat_binding_count(), 1u);

    // Idle-expire A off the wheel; the port must come back with it.
    EXPECT_EQ(ct.expire_idle(1'000'000'000), 1u);
    EXPECT_EQ(ct.size(), 0u);
    EXPECT_EQ(ct.nat_binding_count(), 0u);

    net::Packet b = udp_packet(ipv4(10, 0, 0, 2), ipv4(10, 0, 0, 9), 2222, 80);
    const net::FlowKey key_b = net::parse_flow(b);
    ct.process(b, key_b, spec, ctx, 2'000'000'000);
    const auto* e = ct.find(kern::CtTuple::from_key(key_b, 1));
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->reply.dport, 41000) << "released port not reallocated";
    EXPECT_EQ(ct.nat_binding_count(), 1u);
}

TEST(CtSharding, KernelNatPortReallocatedAfterIdleExpiry)
{
    nat_port_reallocated_after_idle_expiry<kern::Conntrack>();
}

TEST(CtSharding, UserspaceNatPortReallocatedAfterIdleExpiry)
{
    nat_port_reallocated_after_idle_expiry<ovs::UserspaceConntrack>();
}

// tick() is the datapath-clock spelling of the same path: with an idle
// timeout set, a quantum rollover must expire through the wheel.
TEST(CtSharding, TickDrivesWheelExpiry)
{
    kern::Conntrack ct{};
    ct.reshard(4);
    ct.set_idle_timeout(1'000'000); // 1ms
    sim::ExecContext ctx{"test", sim::CpuClass::User};
    kern::CtSpec spec;
    spec.commit = true;
    for (std::uint16_t i = 0; i < 8; ++i) {
        net::Packet p = udp_packet(ipv4(10, 0, 0, 1), ipv4(10, 0, 2, 1), 3000 + i, 53);
        ct.process(p, net::parse_flow(p), spec, ctx, 0);
    }
    ASSERT_EQ(ct.size(), 8u);
    ct.tick(10'000'000); // 10ms later: everything is idle-expired
    EXPECT_EQ(ct.size(), 0u);
    // Bounded tick contract: the pass visited the 8 wheel nodes, not
    // "the whole table" (trivially equal here, but the counter flows).
    EXPECT_GE(ct.last_expire_visited(), 8u);
}

// ---- rendered dumps: per-shard snapshot + merge, shape unchanged -------

// conntrack/show and memory/show render from per-shard snapshots
// merged outside the locks; the rendered text must be byte-identical
// at any shard count.
template <typename Tracker> std::pair<std::string, std::string> rendered_dumps(std::uint32_t shards)
{
    Tracker ct{};
    ct.reshard(shards);
    drive_corpus(ct, 99, 800);
    return {ovs::render_ct_snapshot(ct.snapshot()).to_json(), obs::memory_show().to_json()};
}

TEST(CtSharding, RenderedShowOutputsIdenticalAcrossShardCounts)
{
    // Scoped sequentially: one tracker registers with obs at a time,
    // so the memory/show document has one deterministic table name.
    const auto kern1 = rendered_dumps<kern::Conntrack>(1);
    const auto kern4 = rendered_dumps<kern::Conntrack>(4);
    EXPECT_EQ(kern1.first, kern4.first) << "conntrack/show shape changed with sharding";
    EXPECT_EQ(kern1.second, kern4.second) << "memory/show shape changed with sharding";

    const auto uct1 = rendered_dumps<ovs::UserspaceConntrack>(1);
    const auto uct4 = rendered_dumps<ovs::UserspaceConntrack>(4);
    EXPECT_EQ(uct1.first, uct4.first);
    EXPECT_EQ(uct1.second, uct4.second);
}

// ---- san audit: shard-count-invariant totals, leaks caught -------------

template <typename Tracker> void leaked_entry_is_caught(std::uint32_t shards)
{
    san::ScopedHardened hardened;
    san::ScopedCollect collect;
    Tracker ct{};
    ct.reshard(shards);
    sim::ExecContext ctx{"test", sim::CpuClass::User};
    kern::CtSpec spec;
    spec.commit = true;
    std::vector<net::FlowKey> keys;
    for (std::uint16_t i = 0; i < 12; ++i) {
        net::Packet p = udp_packet(ipv4(10, 0, 0, 3), ipv4(10, 0, 4, 1), 5000 + i, 53);
        keys.push_back(net::parse_flow(p));
        ct.process(p, keys.back(), spec, ctx, 0);
    }
    ct.san_check(OVSX_SITE);
    EXPECT_TRUE(collect.violations().empty()) << "clean table flagged";

    // Leak an entry out of whatever shard owns it: the ledgers still
    // claim it, so the next audit must flag the mismatch.
    ASSERT_TRUE(ct.test_seam_leak_entry(kern::CtTuple::from_key(keys[7], 0)));
    ct.san_check(OVSX_SITE);
    bool flagged = false;
    for (const auto& v : collect.violations()) {
        if (v.checker == "audit-size-mismatch") flagged = true;
    }
    EXPECT_TRUE(flagged) << "leaked entry in shard escaped san_check at " << shards << " shards";
    (void)collect.take(); // teardown with the drifted ledger re-fires
}

TEST(CtShardSan, KernelLeakCaughtAtAnyShardCount)
{
    leaked_entry_is_caught<kern::Conntrack>(1);
    leaked_entry_is_caught<kern::Conntrack>(4);
    leaked_entry_is_caught<kern::Conntrack>(16);
}

TEST(CtShardSan, UserspaceLeakCaughtAtAnyShardCount)
{
    leaked_entry_is_caught<ovs::UserspaceConntrack>(1);
    leaked_entry_is_caught<ovs::UserspaceConntrack>(4);
}

// ---- megaflow: shard-count equivalence ---------------------------------

net::FlowKey mf_key(std::uint16_t sport, std::uint32_t dst = ipv4(10, 0, 0, 2))
{
    net::Packet p = udp_packet(ipv4(10, 0, 0, 1), dst, sport, 2000);
    return net::parse_flow(p);
}

// Installs the same two-subtable ruleset and probes the same keys;
// returns the observable outcome vector (output port or -1 per probe).
std::vector<int> megaflow_probe_outcomes(std::uint32_t shards, bool churn)
{
    ovs::MegaflowCache cache(shards);
    net::FlowMask wide;
    wide.bits.in_port = 0xffffffff;
    wide.bits.nw_dst = 0xffffff00; // /24: sport-independent
    cache.insert(mf_key(1, ipv4(10, 0, 0, 9)), wide, {kern::OdpAction::output(9)});
    for (std::uint16_t s = 0; s < 64; ++s) {
        cache.insert(mf_key(static_cast<std::uint16_t>(100 + s)), net::FlowMask::exact(),
                     {kern::OdpAction::output(static_cast<std::uint32_t>(s))});
    }
    if (churn) {
        // Promote the wide subtable, sweep the never-hit exact flows.
        for (int i = 0; i < 4; ++i) cache.lookup(mf_key(7, ipv4(10, 0, 0, 77)));
        cache.rerank();
        cache.expire_idle();
        cache.remove(mf_key(105), net::FlowMask::exact());
    }
    std::vector<int> out;
    for (std::uint16_t s = 90; s < 180; ++s) {
        const auto res = cache.lookup(mf_key(s));
        out.push_back(res.flow ? static_cast<int>(res.flow->actions[0].port) : -1);
    }
    for (std::uint16_t s = 0; s < 8; ++s) {
        const auto res = cache.lookup(mf_key(s, ipv4(10, 0, 0, 200)));
        out.push_back(res.flow ? static_cast<int>(res.flow->actions[0].port) : -1);
    }
    out.push_back(static_cast<int>(cache.flow_count()));
    out.push_back(static_cast<int>(cache.mask_count()));
    return out;
}

TEST(MegaflowShards, LookupEquivalentAcrossShardCounts)
{
    const auto base = megaflow_probe_outcomes(1, false);
    EXPECT_EQ(base, megaflow_probe_outcomes(4, false));
    EXPECT_EQ(base, megaflow_probe_outcomes(16, false));
}

TEST(MegaflowShards, RerankExpireRemoveEquivalentAcrossShardCounts)
{
    const auto base = megaflow_probe_outcomes(1, true);
    EXPECT_EQ(base, megaflow_probe_outcomes(4, true));
    EXPECT_EQ(base, megaflow_probe_outcomes(16, true));
}

TEST(MegaflowShards, ReshardPreservesEntriesAndOccupancySums)
{
    ovs::MegaflowCache cache(1);
    for (std::uint16_t s = 0; s < 40; ++s) {
        cache.insert(mf_key(s), net::FlowMask::exact(),
                     {kern::OdpAction::output(static_cast<std::uint32_t>(s))});
    }
    cache.reshard(8);
    EXPECT_EQ(cache.shard_count(), 8u);
    EXPECT_EQ(cache.flow_count(), 40u);
    std::size_t sum = 0;
    for (std::uint32_t s = 0; s < cache.shard_count(); ++s) sum += cache.shard_flow_count(s);
    EXPECT_EQ(sum, 40u);
    for (std::uint16_t s = 0; s < 40; ++s) {
        const auto res = cache.lookup(mf_key(s));
        ASSERT_NE(res.flow, nullptr) << "flow lost in reshard, sport=" << s;
        EXPECT_EQ(res.flow->actions[0].port, static_cast<std::uint32_t>(s));
    }
    cache.reshard(2); // shrink re-merges shards
    EXPECT_EQ(cache.flow_count(), 40u);
    EXPECT_NE(cache.lookup(mf_key(11)).flow, nullptr);
}

// ---- datapath wiring ---------------------------------------------------

TEST(DpifSharding, AddPmdAutoReshardsAndExplicitCountPins)
{
    kern::Kernel host;
    ovs::DpifNetdev dpif(host);
    EXPECT_EQ(dpif.megaflow().shard_count(), 1u);
    dpif.add_pmd("pmd0");
    dpif.add_pmd("pmd1");
    dpif.add_pmd("pmd2");
    EXPECT_EQ(dpif.megaflow().shard_count(), 4u); // next pow2 >= 3 PMDs
    EXPECT_EQ(dpif.ct().shard_count(), 4u);

    dpif.set_shard_count(2);
    EXPECT_EQ(dpif.megaflow().shard_count(), 2u);
    dpif.add_pmd("pmd3");
    EXPECT_EQ(dpif.megaflow().shard_count(), 2u) << "explicit shard count must pin auto-sizing";
    EXPECT_EQ(dpif.ct().shard_count(), 2u);
}

// ---- differential: sharded end state across all three providers --------

// The full ct+NAT fuzz corpus through the differential harness with
// every provider's tables sharded: verdicts, flow/ct end state and
// counters must diff clean — zero unexplained divergence — exactly as
// at the default shard count of 1.
class FuzzShardSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FuzzShardSweep, ZeroDivergenceAcrossProviders)
{
    gen::FuzzConfig cfg;
    cfg.shards = GetParam();
    const gen::DiffReport report = gen::fuzz_run(4242, cfg, 300);
    EXPECT_TRUE(report.ok()) << "shards=" << cfg.shards << ": " << report.summary();
}

INSTANTIATE_TEST_SUITE_P(Shards, FuzzShardSweep, ::testing::Values(4u, 16u),
                         [](const auto& info) {
                             return "shards" + std::to_string(info.param);
                         });

} // namespace
} // namespace ovsx
