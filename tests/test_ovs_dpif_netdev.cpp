#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kern/kernel.h"
#include "kern/nic.h"
#include "kern/stack.h"
#include "net/builder.h"
#include "net/headers.h"
#include "obs/appctl.h"
#include "obs/latency.h"
#include "obs/trace.h"
#include "obs/value.h"
#include "ovs/dpif_netdev.h"
#include "ovs/netdev_afxdp.h"
#include "ovs/vswitch.h"

namespace ovsx::ovs {
namespace {

using net::ipv4;

net::Packet udp64(std::uint16_t sport = 1000, std::uint32_t dst = ipv4(10, 0, 0, 2))
{
    net::UdpSpec spec;
    spec.src_mac = net::MacAddr::from_id(1);
    spec.dst_mac = net::MacAddr::from_id(2);
    spec.src_ip = ipv4(10, 0, 0, 1);
    spec.dst_ip = dst;
    spec.src_port = sport;
    spec.dst_port = 2000;
    return net::build_udp(spec);
}

// A two-NIC AF_XDP forwarding fixture: the canonical P2P setup.
class DpifNetdevTest : public ::testing::Test {
protected:
    void SetUp() override
    {
        nic0 = &kernel.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
        nic1 = &kernel.add_device<kern::PhysicalDevice>("eth1", net::MacAddr::from_id(2));
        nic1->connect_wire([this](net::Packet&& p) { out1.push_back(std::move(p)); });
        nic0->connect_wire([this](net::Packet&& p) { out0.push_back(std::move(p)); });

        dpif = std::make_unique<DpifNetdev>(kernel);
        p0 = dpif->add_port(std::make_unique<NetdevAfxdp>(*nic0));
        p1 = dpif->add_port(std::make_unique<NetdevAfxdp>(*nic1));
        pmd = dpif->add_pmd("pmd0");
        dpif->pmd_assign(pmd, p0, 0);
        dpif->pmd_assign(pmd, p1, 0);
    }

    // Datapath flows always match recirc_id (as real OVS does), so that
    // recirculated packets don't re-hit pre-recirculation flows.
    net::FlowMask port_mask()
    {
        net::FlowMask m;
        m.bits.in_port = 0xffffffff;
        m.bits.recirc_id = 0xffffffff;
        return m;
    }

    net::FlowKey key_on_port(std::uint32_t port, std::uint16_t sport = 1000)
    {
        net::Packet probe = udp64(sport);
        probe.meta().in_port = port;
        return net::parse_flow(probe);
    }

    kern::Kernel kernel;
    kern::PhysicalDevice* nic0 = nullptr;
    kern::PhysicalDevice* nic1 = nullptr;
    std::unique_ptr<DpifNetdev> dpif;
    std::uint32_t p0 = 0, p1 = 0;
    int pmd = 0;
    std::vector<net::Packet> out0, out1;
};

TEST_F(DpifNetdevTest, AfxdpEndToEndForwarding)
{
    dpif->flow_put(key_on_port(p0), port_mask(), {kern::OdpAction::output(p1)});

    // Wire -> XDP redirect -> XSK ring -> PMD poll -> pipeline -> tx.
    nic0->rx_from_wire(udp64());
    EXPECT_EQ(dpif->pmd_poll_once(pmd), 1u);
    ASSERT_EQ(out1.size(), 1u);
    EXPECT_EQ(net::parse_flow(out1[0]).nw_dst, ipv4(10, 0, 0, 2));
    // Both the softirq (XDP+rings) and the PMD (userspace) did work.
    EXPECT_GT(nic0->softirq_ctx(0).total_busy(), 0);
    EXPECT_GT(dpif->pmd_ctx(pmd).total_busy(), 0);
}

TEST_F(DpifNetdevTest, EmcShortCircuitsSecondPacket)
{
    dpif->set_emc_insert_inv_prob(1); // always insert, for determinism here
    dpif->flow_put(key_on_port(p0), port_mask(), {kern::OdpAction::output(p1)});
    nic0->rx_from_wire(udp64());
    dpif->pmd_poll_once(pmd);
    EXPECT_EQ(dpif->emc().misses(), 1u); // first packet missed EMC

    nic0->rx_from_wire(udp64());
    dpif->pmd_poll_once(pmd);
    EXPECT_EQ(dpif->emc().hits(), 1u); // second hit it
    EXPECT_EQ(out1.size(), 2u);
}

TEST_F(DpifNetdevTest, UpcallInstallsAndForwards)
{
    int upcalls = 0;
    dpif->set_upcall_handler([&](std::uint32_t in_port, net::Packet&& pkt,
                                 const net::FlowKey& key, sim::ExecContext& ctx) {
        ++upcalls;
        EXPECT_EQ(in_port, p0);
        dpif->flow_put(key, port_mask(), {kern::OdpAction::output(p1)});
        dpif->execute(std::move(pkt), {kern::OdpAction::output(p1)}, ctx);
    });

    nic0->rx_from_wire(udp64());
    dpif->pmd_poll_once(pmd);
    EXPECT_EQ(upcalls, 1);
    EXPECT_EQ(out1.size(), 1u);

    nic0->rx_from_wire(udp64(2000));
    dpif->pmd_poll_once(pmd);
    EXPECT_EQ(upcalls, 1); // megaflow covered the new microflow
    EXPECT_EQ(out1.size(), 2u);
}

TEST_F(DpifNetdevTest, RecirculationThroughCt)
{
    // Pass 1: ct + recirc(5); pass 2 (recirc=5, established|new): output.
    kern::CtSpec ct{.zone = 3, .commit = true};
    dpif->flow_put(key_on_port(p0), port_mask(),
                   {kern::OdpAction::conntrack(ct), kern::OdpAction::recirc(5)});

    net::FlowKey k2 = key_on_port(p0);
    k2.recirc_id = 5;
    k2.ct_state = net::kCtStateTracked | net::kCtStateNew;
    k2.ct_zone = 3;
    net::FlowMask m2 = port_mask();
    m2.bits.recirc_id = 0xffffffff;
    m2.bits.ct_state = 0xff;
    m2.bits.ct_zone = 0xffff;
    dpif->flow_put(k2, m2, {kern::OdpAction::output(p1)});
    net::FlowKey k3 = k2;
    k3.ct_state = net::kCtStateTracked | net::kCtStateEstablished;
    dpif->flow_put(k3, m2, {kern::OdpAction::output(p1)});

    nic0->rx_from_wire(udp64());
    dpif->pmd_poll_once(pmd);
    ASSERT_EQ(out1.size(), 1u);
    EXPECT_EQ(dpif->ct().size(), 1u);

    nic0->rx_from_wire(udp64());
    dpif->pmd_poll_once(pmd);
    EXPECT_EQ(out1.size(), 2u);
}

TEST_F(DpifNetdevTest, MeterDropsExcess)
{
    dpif->meters().set(1, {.rate_kbps = 0, .rate_pps = 1000, .burst = 2});
    dpif->flow_put(key_on_port(p0), port_mask(),
                   {kern::OdpAction::meter(1), kern::OdpAction::output(p1)});
    for (int i = 0; i < 5; ++i) nic0->rx_from_wire(udp64());
    dpif->pmd_poll_once(pmd);
    EXPECT_EQ(out1.size(), 2u); // burst of 2, rest dropped by the meter
    EXPECT_EQ(dpif->meters().dropped(1), 3u);
}

TEST_F(DpifNetdevTest, UserspaceActionPunts)
{
    dpif->flow_put(key_on_port(p0), port_mask(), {kern::OdpAction::userspace()});
    nic0->rx_from_wire(udp64());
    dpif->pmd_poll_once(pmd);
    EXPECT_EQ(dpif->punted().size(), 1u);
    EXPECT_TRUE(out1.empty());
}

TEST_F(DpifNetdevTest, TunnelEncapDecapAcrossDpifs)
{
    // This host encapsulates into Geneve; verify outer headers, then feed
    // the wire bytes into a second host's dpif and check decap.
    kernel.stack().add_address(nic1->ifindex(), ipv4(172, 16, 0, 1), 24);
    kernel.stack().add_neighbor(ipv4(172, 16, 0, 2), net::MacAddr::from_id(99),
                                nic1->ifindex());
    const auto tun = dpif->add_tunnel_port("geneve0", net::TunnelType::Geneve,
                                           ipv4(172, 16, 0, 1));

    net::TunnelKey tkey;
    tkey.tun_id = 88;
    tkey.ip_dst = ipv4(172, 16, 0, 2);
    dpif->flow_put(key_on_port(p0), port_mask(),
                   {kern::OdpAction::set_tunnel(tkey), kern::OdpAction::output(tun)});

    nic0->rx_from_wire(udp64());
    dpif->pmd_poll_once(pmd);
    ASSERT_EQ(out1.size(), 1u);
    const net::FlowKey outer = net::parse_flow(out1[0]);
    EXPECT_EQ(outer.nw_src, ipv4(172, 16, 0, 1));
    EXPECT_EQ(outer.nw_dst, ipv4(172, 16, 0, 2));
    EXPECT_EQ(outer.tp_dst, net::kGenevePort);
    EXPECT_EQ(outer.dl_dst, net::MacAddr::from_id(99));

    // ---- second host decapsulates --------------------------------------
    kern::Kernel hostb("hostb");
    auto& b_nic = hostb.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(99));
    std::vector<net::Packet> b_out;
    auto& b_nic2 = hostb.add_device<kern::PhysicalDevice>("eth1", net::MacAddr::from_id(98));
    b_nic2.connect_wire([&](net::Packet&& p) { b_out.push_back(std::move(p)); });

    DpifNetdev bdp(hostb);
    const auto b_uplink = bdp.add_port(std::make_unique<NetdevAfxdp>(b_nic));
    const auto b_port2 = bdp.add_port(std::make_unique<NetdevAfxdp>(b_nic2));
    const auto b_tun = bdp.add_tunnel_port("geneve0", net::TunnelType::Geneve,
                                           ipv4(172, 16, 0, 2));
    (void)b_uplink;
    const int b_pmd = bdp.add_pmd("pmd0");
    bdp.pmd_assign(b_pmd, b_uplink, 0);

    // Flow: traffic from the tunnel vport with tun_id 88 -> port2.
    net::Packet probe = udp64();
    probe.meta().in_port = b_tun;
    probe.meta().tunnel.tun_id = 88;
    probe.meta().tunnel.ip_src = ipv4(172, 16, 0, 1);
    probe.meta().tunnel.ip_dst = ipv4(172, 16, 0, 2);
    net::FlowMask b_mask;
    b_mask.bits.in_port = 0xffffffff;
    b_mask.bits.tun_id = ~std::uint64_t{0};
    bdp.flow_put(net::parse_flow(probe), b_mask, {kern::OdpAction::output(b_port2)});

    b_nic.rx_from_wire(std::move(out1[0]));
    bdp.pmd_poll_once(b_pmd);
    ASSERT_EQ(b_out.size(), 1u);
    // Inner frame restored.
    const auto inner = net::parse_flow(b_out[0]);
    EXPECT_EQ(inner.nw_dst, ipv4(10, 0, 0, 2));
    EXPECT_EQ(inner.tp_dst, 2000);
}

TEST_F(DpifNetdevTest, XskFillRingExhaustionDropsLosslessly)
{
    dpif->flow_put(key_on_port(p0), port_mask(), {kern::OdpAction::output(p1)});
    // Flood more packets than fill frames without polling: the XSK layer
    // must drop the excess (this is exactly the "maximum lossless rate"
    // boundary the paper measures).
    for (int i = 0; i < 5000; ++i) nic0->rx_from_wire(udp64());
    auto& sock = dynamic_cast<NetdevAfxdp*>(dpif->port_netdev(p0))->xsk(0);
    EXPECT_GT(sock.rx_dropped_no_frame + sock.rx_dropped_ring_full, 0u);

    // After polling, the ring drains and forwarding resumes.
    while (dpif->pmd_poll_once(pmd) > 0) {
    }
    EXPECT_GT(out1.size(), 0u);
    const auto drained = out1.size();
    nic0->rx_from_wire(udp64());
    dpif->pmd_poll_once(pmd);
    EXPECT_EQ(out1.size(), drained + 1);
}

TEST_F(DpifNetdevTest, VSwitchDrivesUpcallsThroughOfproto)
{
    auto dpif_owned = std::make_unique<DpifNetdev>(kernel);
    auto* raw = dpif_owned.get();
    const auto vp0 = raw->add_port(std::make_unique<NetdevAfxdp>(*nic0));
    const auto vp1 = raw->add_port(std::make_unique<NetdevAfxdp>(*nic1));
    const int vpmd = raw->add_pmd("pmd0");
    raw->pmd_assign(vpmd, vp0, 0);

    VSwitch vswitch(std::move(dpif_owned));
    Match m;
    m.key.in_port = vp0;
    m.mask.bits.in_port = 0xffffffff;
    vswitch.ofproto().add_rule({.table = 0, .priority = 1, .match = m,
                                .actions = {OfAction::output(vp1)}});

    nic0->rx_from_wire(udp64());
    raw->pmd_poll_once(vpmd);
    EXPECT_EQ(vswitch.upcalls_handled(), 1u);
    EXPECT_EQ(raw->flow_count(), 1u);
    ASSERT_EQ(out1.size(), 1u);

    // Fast path now: no further upcalls.
    nic0->rx_from_wire(udp64(1001));
    raw->pmd_poll_once(vpmd);
    EXPECT_EQ(vswitch.upcalls_handled(), 1u);
    EXPECT_EQ(out1.size(), 2u);
}

// ---- §4.2 windowed rxq telemetry + auto-load-balancing ------------------

// Skewed 4-queue fixture: queues 0 and 1 (both pinned to pmd0) carry
// ~90% of the traffic via forced-queue injection.
struct AutoLbRun {
    std::vector<std::string> events;
    std::string rxq_show_json;
    std::uint64_t checks = 0;
};

AutoLbRun run_skewed_autolb(bool enable_lb)
{
    kern::Kernel kernel;
    kern::NicConfig cfg;
    cfg.num_queues = 4;
    auto& nic0 = kernel.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1), cfg);
    auto& nic1 = kernel.add_device<kern::PhysicalDevice>("eth1", net::MacAddr::from_id(2));
    nic1.connect_wire([](net::Packet&&) {});

    DpifNetdev dp(kernel);
    dp.set_emc_insert_inv_prob(1);
    const auto p0 = dp.add_port(std::make_unique<NetdevAfxdp>(nic0));
    const auto p1 = dp.add_port(std::make_unique<NetdevAfxdp>(nic1));
    const int pmd0 = dp.add_pmd("pmd0");
    const int pmd1 = dp.add_pmd("pmd1");
    dp.pmd_assign(pmd0, p0, 0);
    dp.pmd_assign(pmd0, p0, 1);
    dp.pmd_assign(pmd1, p0, 2);
    dp.pmd_assign(pmd1, p0, 3);

    net::Packet probe = udp64();
    probe.meta().in_port = p0;
    net::FlowMask mask;
    mask.bits.in_port = 0xffffffff;
    mask.bits.recirc_id = 0xffffffff;
    dp.flow_put(net::parse_flow(probe), mask, {kern::OdpAction::output(p1)});

    dp.set_window_interval(1'000'000);
    dp.set_auto_lb(enable_lb, 1.25);

    sim::Nanos now = 0;
    for (int i = 0; i < 3000; ++i) {
        now += 10'000;
        dp.set_now(now);
        // 9 of 10 packets to the pmd0 queues, alternating 0/1.
        const std::uint32_t q = (i % 10 < 9) ? static_cast<std::uint32_t>(i % 2)
                                             : 2 + static_cast<std::uint32_t>(i % 2);
        nic0.rx_from_wire(udp64(), q);
        while (dp.pmd_poll_once(pmd0) > 0) {
        }
        while (dp.pmd_poll_once(pmd1) > 0) {
        }
    }

    AutoLbRun out;
    for (const auto& ev : dp.rebalance_events()) {
        out.events.push_back("at=" + std::to_string(ev.at) +
                             " window=" + std::to_string(ev.window) + " " + ev.detail);
    }
    obs::Appctl appctl;
    dp.register_appctl(appctl);
    out.rxq_show_json = appctl.run("dpif-netdev/pmd-rxq-show", {}, obs::Appctl::Format::Json);
    return out;
}

TEST(DpifNetdevAutoLb, PmdRxqShowReportsWindowedBusyPct)
{
    const AutoLbRun run = run_skewed_autolb(false);
    EXPECT_TRUE(run.events.empty()); // auto-LB disabled: telemetry only
    const auto doc = obs::json_parse(run.rxq_show_json);
    ASSERT_TRUE(doc.has_value());
    const auto* pmds = doc->find("pmds");
    ASSERT_NE(pmds, nullptr);
    ASSERT_EQ(pmds->items().size(), 2u);
    double hot = 0, cold = 0;
    for (const auto& pmd : pmds->items()) {
        for (const auto& rxq : pmd.find("rxqs")->items()) {
            EXPECT_GT(rxq.find("windows")->as_uint(), 0u);
            const double pct = rxq.find("busy_pct")->as_double();
            if (rxq.find("queue")->as_uint() < 2) {
                hot += pct;
            } else {
                cold += pct;
            }
        }
    }
    // The skew is visible in the windowed utilization numbers.
    EXPECT_GT(hot, cold * 3);
}

TEST(DpifNetdevAutoLb, SkewTriggersReproducibleRebalance)
{
    const AutoLbRun a = run_skewed_autolb(true);
    ASSERT_FALSE(a.events.empty());
    EXPECT_NE(a.events.front().find("moved"), std::string::npos);

    // Identical runs make identical decisions: the rebalance is fully
    // determined by the published windowed metrics.
    const AutoLbRun b = run_skewed_autolb(true);
    EXPECT_EQ(a.events, b.events);
}

TEST_F(DpifNetdevTest, RebalanceWithoutLoadReportsNoImprovement)
{
    obs::Appctl appctl;
    dpif->register_appctl(appctl);
    const auto v = appctl.run_value("dpif-netdev/pmd-rebalance");
    ASSERT_NE(v.find("rebalanced"), nullptr);
    EXPECT_FALSE(v.find("rebalanced")->as_bool());
    EXPECT_TRUE(dpif->rebalance_events().empty());
}

// Batching must not change latency accounting granularity: the vector
// spine's one-classify-pass-per-burst still emits one trace span per
// PACKET per tier, so the per-tier histograms record exactly as many
// samples as the scalar spine does for the same traffic. (A batch that
// recorded one span per burst would deflate the count 32x and silently
// skew every percentile in Figs. 10/11.)
TEST_F(DpifNetdevTest, VectorSpineRecordsOneLatencySpanPerPacket)
{
    struct TierCounts {
        std::uint64_t emc, megaflow, tx;
    };
    // Each run uses its own source port so the second starts EMC-cold
    // like the first (the megaflow rule below is port-masked only).
    const auto traced_run = [&](bool scalar, std::size_t n, std::uint16_t sport) {
        obs::latency_reset();
        obs::tracer().enable();
        obs::tracer().set_domain("netdev");
        dpif->set_scalar_spine(scalar);
        dpif->set_emc_insert_inv_prob(1); // always insert: pkt 2+ hit the EMC
        std::size_t sent = 0;
        while (sent < n) {
            // Inject a full burst (last one partial) then poll, so the
            // vector side sees real 32-wide bursts.
            const std::size_t burst = std::min<std::size_t>(n - sent, 32);
            for (std::size_t i = 0; i < burst; ++i) {
                net::Packet pkt = udp64(sport);
                pkt.meta().trace_id = obs::tracer().next_packet_id();
                nic0->rx_from_wire(std::move(pkt));
            }
            dpif->pmd_poll_once(pmd);
            sent += burst;
        }
        const auto count = [](const obs::LatencyHistogram* h) {
            return h ? h->count() : std::uint64_t{0};
        };
        TierCounts c{count(obs::latency_histogram("netdev", obs::Hop::Emc)),
                     count(obs::latency_histogram("netdev", obs::Hop::Megaflow)),
                     count(obs::latency_histogram("netdev", obs::Hop::Tx))};
        obs::tracer().disable();
        obs::latency_reset();
        return c;
    };

    dpif->flow_put(key_on_port(p0), port_mask(), {kern::OdpAction::output(p1)});
    constexpr std::size_t kPackets = 69; // two full bursts + a partial one

    const TierCounts vec = traced_run(/*scalar=*/false, kPackets, 1000);
    // Every packet resolves in exactly one classifier tier (the EMC miss
    // of packet 1 doesn't close a span — its megaflow hit does) and
    // transmits exactly once.
    EXPECT_EQ(vec.emc + vec.megaflow, kPackets);
    EXPECT_EQ(vec.tx, kPackets);
    EXPECT_GE(vec.megaflow, 1u); // packet 1, before its EMC insert

    ASSERT_EQ(out1.size(), kPackets);
    out1.clear();

    // The scalar spine on identical traffic must produce identical
    // per-tier sample counts — span-per-packet, not span-per-burst.
    const TierCounts sca = traced_run(/*scalar=*/true, kPackets, 1001);
    EXPECT_EQ(sca.emc, vec.emc);
    EXPECT_EQ(sca.megaflow, vec.megaflow);
    EXPECT_EQ(sca.tx, vec.tx);
}

} // namespace
} // namespace ovsx::ovs
