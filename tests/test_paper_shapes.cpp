// Property tests on the paper's qualitative claims: every Takeaway and
// Outcome the paper states must hold in this reproduction, regardless
// of how the cost-model constants drift. These run the same scenario
// harness as the benches, at reduced packet counts.
#include <gtest/gtest.h>

#include "gen/harness.h"

namespace ovsx::gen {
namespace {

constexpr std::uint64_t kPkts = 8000;

RateReport p2p(Datapath dp, std::uint32_t flows = 1, std::uint32_t queues = 1,
               std::size_t frame = 64)
{
    P2pConfig cfg;
    cfg.datapath = dp;
    cfg.n_flows = flows;
    cfg.n_queues = queues;
    cfg.frame_size = frame;
    cfg.packets = kPkts;
    return run_p2p(cfg);
}

TEST(PaperShapes, Fig2DatapathOrdering)
{
    const double kernel = p2p(Datapath::Kernel).mpps();
    const double ebpf = p2p(Datapath::Ebpf).mpps();
    const double dpdk = p2p(Datapath::Dpdk).mpps();
    // DPDK is much faster; eBPF is slower than the kernel module by
    // 10-25% (Takeaway #4).
    EXPECT_GT(dpdk, 2.5 * kernel);
    EXPECT_LT(ebpf, kernel);
    EXPECT_GT(ebpf, 0.75 * kernel);
}

TEST(PaperShapes, Table2LadderIsMonotone)
{
    using Opt = ovs::AfxdpOptions;
    Opt o1 = Opt::none();
    o1.pmd_mode = true;
    Opt o2 = o1;
    o2.lock = Opt::Lock::Spinlock;
    Opt o3 = o2;
    o3.lock_batching = true;
    Opt o4 = o3;
    o4.metadata_prealloc = true;
    Opt o5 = o4;
    o5.csum_offload = true;

    double prev = 0;
    for (const auto& opts : {Opt::none(), o1, o2, o3, o4, o5}) {
        P2pConfig cfg;
        cfg.datapath = Datapath::Afxdp;
        cfg.afxdp = opts;
        cfg.packets = kPkts;
        const double mpps = run_p2p(cfg).mpps();
        EXPECT_GT(mpps, prev);
        prev = mpps;
    }
    // O1 alone is the big jump (paper: 6x).
    P2pConfig none_cfg;
    none_cfg.datapath = Datapath::Afxdp;
    none_cfg.afxdp = Opt::none();
    none_cfg.packets = kPkts;
    P2pConfig o1_cfg = none_cfg;
    o1_cfg.afxdp = o1;
    EXPECT_GT(run_p2p(o1_cfg).mpps(), 4.0 * run_p2p(none_cfg).mpps());
}

TEST(PaperShapes, Fig9FlowCountEffects)
{
    // 1000 flows hurt every userspace datapath and help the kernel (RSS).
    for (const auto dp : {Datapath::Afxdp, Datapath::Dpdk}) {
        EXPECT_LT(p2p(dp, 1000).mpps(), p2p(dp, 1).mpps()) << to_string(dp);
    }
    EXPECT_GT(p2p(Datapath::Kernel, 1000).mpps(), p2p(Datapath::Kernel, 1).mpps());
}

TEST(PaperShapes, Fig9KernelIsFastButNotEfficient)
{
    const auto kernel = p2p(Datapath::Kernel, 1000);
    const auto dpdk = p2p(Datapath::Dpdk, 1000);
    // Comparable rates, wildly different CPU budgets (Table 4).
    EXPECT_GT(kernel.cpu.total(), 5.0);
    EXPECT_LT(dpdk.cpu.total(), 1.5);
    EXPECT_GT(kernel.cpu.softirq, 0.9 * kernel.cpu.total()); // all softirq
    EXPECT_GT(dpdk.cpu.user, 0.9 * dpdk.cpu.total());        // all userspace
}

TEST(PaperShapes, Fig9AfxdpSplitsKernelAndUser)
{
    const auto afxdp = p2p(Datapath::Afxdp, 1000);
    EXPECT_GT(afxdp.cpu.softirq, 0.2); // XDP program + rings
    EXPECT_GT(afxdp.cpu.user, 0.5);    // OVS datapath
}

TEST(PaperShapes, PvpVhostBeatsTap)
{
    PvpConfig tap;
    tap.datapath = Datapath::Afxdp;
    tap.vdev = VDev::Tap;
    tap.packets = kPkts;
    PvpConfig vhost = tap;
    vhost.vdev = VDev::Vhost;
    EXPECT_GT(run_pvp(vhost).mpps(), 2.0 * run_pvp(tap).mpps());
}

TEST(PaperShapes, PvpAfxdpTrailsDpdkWithVhost)
{
    PvpConfig cfg;
    cfg.vdev = VDev::Vhost;
    cfg.packets = kPkts;
    cfg.datapath = Datapath::Afxdp;
    const double afxdp = run_pvp(cfg).mpps();
    cfg.datapath = Datapath::Dpdk;
    const double dpdk = run_pvp(cfg).mpps();
    EXPECT_LT(afxdp, dpdk);
    EXPECT_GT(afxdp, 0.6 * dpdk); // but in the same league
}

TEST(PaperShapes, PcpAfxdpWinsInSpeedAndCpu)
{
    PcpConfig cfg;
    cfg.packets = kPkts;
    cfg.path = ContainerPath::AfxdpXdp;
    const auto afxdp = run_pcp(cfg);
    cfg.path = ContainerPath::KernelVeth;
    const auto kernel = run_pcp(cfg);
    cfg.path = ContainerPath::DpdkAfPacket;
    const auto dpdk = run_pcp(cfg);
    // Outcome #2: AF_XDP best for containers, DPDK worst.
    EXPECT_GT(afxdp.pps, kernel.pps);
    EXPECT_GT(kernel.pps, dpdk.pps);
    EXPECT_LT(afxdp.cpu.total(), kernel.cpu.total());
}

TEST(PaperShapes, Fig10LatencyOrdering)
{
    auto run = [](Datapath dp) {
        const auto setup = make_interhost_vm_rr(dp);
        return run_tcp_rr(setup.exchange, 800, setup.jitter);
    };
    const auto kernel = run(Datapath::Kernel);
    const auto afxdp = run(Datapath::Afxdp);
    const auto dpdk = run(Datapath::Dpdk);
    // kernel slowest; AF_XDP barely trails DPDK.
    EXPECT_GT(kernel.rtt.percentile(50), afxdp.rtt.percentile(50));
    EXPECT_GE(afxdp.rtt.percentile(50), dpdk.rtt.percentile(50));
    EXPECT_LT(static_cast<double>(afxdp.rtt.percentile(50)),
              1.25 * static_cast<double>(dpdk.rtt.percentile(50)));
    // Interrupt-driven tail is relatively wider.
    const double kernel_spread = static_cast<double>(kernel.rtt.percentile(99)) /
                                 static_cast<double>(kernel.rtt.percentile(50));
    const double dpdk_spread = static_cast<double>(dpdk.rtt.percentile(99)) /
                               static_cast<double>(dpdk.rtt.percentile(50));
    EXPECT_GT(kernel_spread, dpdk_spread);
    // Transactions/s invert the latency ordering.
    EXPECT_GT(dpdk.transactions_per_sec, kernel.transactions_per_sec);
}

TEST(PaperShapes, Fig11ContainerLatency)
{
    auto run = [](Datapath dp) {
        const auto setup = make_container_rr(dp);
        return run_tcp_rr(setup.exchange, 800, setup.jitter);
    };
    const auto kernel = run(Datapath::Kernel);
    const auto afxdp = run(Datapath::Afxdp);
    const auto dpdk = run(Datapath::Dpdk);
    // kernel == AF_XDP within 15%; DPDK several times slower.
    const double ratio = static_cast<double>(afxdp.rtt.percentile(50)) /
                         static_cast<double>(kernel.rtt.percentile(50));
    EXPECT_GT(ratio, 0.85);
    EXPECT_LT(ratio, 1.15);
    EXPECT_GT(dpdk.rtt.percentile(50), 3 * kernel.rtt.percentile(50));
}

TEST(PaperShapes, Fig12MultiqueueScaling)
{
    // 1518B: both reach 25G line rate by 6 queues.
    const double line_1518 = sim::line_rate_pps(25.0, 1518);
    EXPECT_NEAR(p2p(Datapath::Afxdp, 1000, 6, 1518).pps, line_1518, line_1518 * 0.01);
    EXPECT_NEAR(p2p(Datapath::Dpdk, 1000, 6, 1518).pps, line_1518, line_1518 * 0.01);

    // 64B: AF_XDP plateaus (sublinear), DPDK scales further.
    const double a1 = p2p(Datapath::Afxdp, 1000, 1).mpps();
    const double a6 = p2p(Datapath::Afxdp, 1000, 6).mpps();
    const double d6 = p2p(Datapath::Dpdk, 1000, 6).mpps();
    EXPECT_LT(a6, 4.0 * a1); // well below linear 6x
    EXPECT_GT(d6, 2.0 * a6); // DPDK pulls away at 6 queues
    EXPECT_GT(a6, a1);       // but scaling still helps
}

TEST(PaperShapes, InterruptModeIsSlowerThanPolling)
{
    // Fig. 8(a)'s second bar: interrupt-driven AF_XDP loses to polling.
    P2pConfig poll;
    poll.datapath = Datapath::Afxdp;
    poll.packets = kPkts;
    P2pConfig irq = poll;
    irq.afxdp = ovs::AfxdpOptions::none();
    EXPECT_GT(run_p2p(poll).mpps(), run_p2p(irq).mpps());
}

} // namespace
} // namespace ovsx::gen
