// The paper's operability claims as tests:
//  - "upgrades or bug fixes ... simply restarting OVS" (§2.2.3, §6):
//    tearing down and recreating the userspace datapath resumes
//    forwarding, with the NIC never leaving kernel control.
//  - "a bug in OVS with AF_XDP only crashes the OVS process": datapath
//    death leaves the kernel and its tools intact.
//  - the revalidator expires idle megaflows.
#include <gtest/gtest.h>

#include <memory>

#include "kern/kernel.h"
#include "kern/nic.h"
#include "kern/rtnetlink.h"
#include "net/builder.h"
#include "ovs/dpif_netdev.h"
#include "ovs/netdev_afxdp.h"

namespace ovsx::ovs {
namespace {

using net::ipv4;

net::Packet udp64(std::uint16_t sport = 1000)
{
    net::UdpSpec spec;
    spec.src_ip = ipv4(10, 0, 0, 1);
    spec.dst_ip = ipv4(10, 0, 0, 2);
    spec.src_port = sport;
    spec.dst_port = 2000;
    return net::build_udp(spec);
}

struct OvsInstance {
    explicit OvsInstance(kern::Kernel& host, kern::PhysicalDevice& nic0,
                         kern::PhysicalDevice& nic1)
        : dpif(host)
    {
        p0 = dpif.add_port(std::make_unique<NetdevAfxdp>(nic0));
        p1 = dpif.add_port(std::make_unique<NetdevAfxdp>(nic1));
        net::FlowKey key;
        key.in_port = p0;
        net::FlowMask mask;
        mask.bits.in_port = 0xffffffff;
        mask.bits.recirc_id = 0xffffffff;
        dpif.flow_put(key, mask, {kern::OdpAction::output(p1)});
        pmd = dpif.add_pmd("pmd0");
        dpif.pmd_assign(pmd, p0, 0);
    }

    void drain()
    {
        while (dpif.pmd_poll_once(pmd) > 0) {
        }
    }

    DpifNetdev dpif;
    std::uint32_t p0 = 0, p1 = 0;
    int pmd = 0;
};

TEST(Operability, RestartingOvsResumesForwarding)
{
    kern::Kernel host("host");
    auto& nic0 = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    auto& nic1 = host.add_device<kern::PhysicalDevice>("eth1", net::MacAddr::from_id(2));
    std::uint64_t forwarded = 0;
    nic1.connect_wire([&](net::Packet&&) { ++forwarded; });

    // First OVS "process".
    {
        OvsInstance ovs(host, nic0, nic1);
        nic0.rx_from_wire(udp64());
        ovs.drain();
        EXPECT_EQ(forwarded, 1u);
    } // "upgrade": the process exits; XDP detaches; XSKs unbind

    // Between restarts the NIC is still a normal kernel device: traffic
    // falls through to the (empty) stack instead of crashing anything,
    // and the Table 1 tools still work.
    nic0.rx_from_wire(udp64());
    EXPECT_EQ(forwarded, 1u);
    EXPECT_TRUE(kern::rtnl::link_show(host, "eth0").has_value());

    // Second OVS "process" picks the port back up.
    {
        OvsInstance ovs(host, nic0, nic1);
        for (int i = 0; i < 5; ++i) nic0.rx_from_wire(udp64());
        ovs.drain();
        EXPECT_EQ(forwarded, 6u);
    }
}

TEST(Operability, CrashLosesOnlyInFlightState)
{
    kern::Kernel host("host");
    auto& nic0 = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    auto& nic1 = host.add_device<kern::PhysicalDevice>("eth1", net::MacAddr::from_id(2));
    std::uint64_t forwarded = 0;
    nic1.connect_wire([&](net::Packet&&) { ++forwarded; });

    {
        OvsInstance ovs(host, nic0, nic1);
        // Packets sitting in the XSK ring when the process dies are lost —
        // but nothing else is.
        for (int i = 0; i < 10; ++i) nic0.rx_from_wire(udp64());
        // "crash": no drain; destructor runs (the kernel cleans up fds)
    }
    EXPECT_EQ(forwarded, 0u);
    // The kernel survived: devices, tools, stack all intact.
    EXPECT_EQ(kern::rtnl::link_show(host).size(), 2u);
    EXPECT_TRUE(nic0.kernel_managed());
    // And a restarted instance works immediately.
    OvsInstance ovs(host, nic0, nic1);
    nic0.rx_from_wire(udp64());
    ovs.drain();
    EXPECT_EQ(forwarded, 1u);
}

TEST(Operability, RevalidatorExpiresIdleFlows)
{
    kern::Kernel host("host");
    auto& nic0 = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    auto& nic1 = host.add_device<kern::PhysicalDevice>("eth1", net::MacAddr::from_id(2));
    nic1.connect_wire([](net::Packet&&) {});
    OvsInstance ovs(host, nic0, nic1);

    // A second flow that will go idle.
    net::FlowKey idle_key;
    idle_key.in_port = 999;
    net::FlowMask mask;
    mask.bits.in_port = 0xffffffff;
    ovs.dpif.flow_put(idle_key, mask, {kern::OdpAction::drop()});
    EXPECT_EQ(ovs.dpif.flow_count(), 2u);

    // Sweep 1 records hit counters; traffic keeps the forward flow hot.
    ovs.dpif.revalidate();
    nic0.rx_from_wire(udp64());
    ovs.drain();
    // Sweep 2: the idle flow (no hits since sweep 1) is expired.
    ovs.dpif.revalidate();
    EXPECT_EQ(ovs.dpif.flow_count(), 1u);

    // The survivor is the hot forward flow; the idle one is gone.
    net::Packet probe = udp64();
    probe.meta().in_port = ovs.p0;
    EXPECT_NE(ovs.dpif.megaflow().lookup(net::parse_flow(probe)).flow, nullptr);
    net::FlowKey idle_probe;
    idle_probe.in_port = 999;
    EXPECT_EQ(ovs.dpif.megaflow().lookup(idle_probe).flow, nullptr);
}

TEST(Operability, RevalidatorSweepIsIdempotentOnHotFlows)
{
    kern::Kernel host("host");
    auto& nic0 = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    auto& nic1 = host.add_device<kern::PhysicalDevice>("eth1", net::MacAddr::from_id(2));
    nic1.connect_wire([](net::Packet&&) {});
    OvsInstance ovs(host, nic0, nic1);

    for (int sweep = 0; sweep < 5; ++sweep) {
        nic0.rx_from_wire(udp64());
        ovs.drain();
        ovs.dpif.revalidate();
        EXPECT_EQ(ovs.dpif.flow_count(), 1u) << "sweep " << sweep;
    }
}

} // namespace
} // namespace ovsx::ovs
