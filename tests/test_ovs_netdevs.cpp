#include <gtest/gtest.h>

#include "dpdk/mempool.h"
#include "ebpf/programs.h"
#include "kern/kernel.h"
#include "kern/nic.h"
#include "kern/stack.h"
#include "kern/tap.h"
#include "kern/veth.h"
#include "kern/virtio.h"
#include "net/builder.h"
#include "net/headers.h"
#include "ovs/netdev_afxdp.h"
#include "ovs/netdev_dpdk.h"
#include "ovs/netdev_linux.h"
#include "ovs/netdev_vhost.h"

namespace ovsx::ovs {
namespace {

using net::ipv4;

net::Packet udp64(std::uint16_t sport = 1000)
{
    net::UdpSpec spec;
    spec.src_mac = net::MacAddr::from_id(1);
    spec.dst_mac = net::MacAddr::from_id(2);
    spec.src_ip = ipv4(10, 0, 0, 1);
    spec.dst_ip = ipv4(10, 0, 0, 2);
    spec.src_port = sport;
    spec.dst_port = 2000;
    return net::build_udp(spec);
}

// ---- netdev-afxdp ------------------------------------------------------

TEST(NetdevAfxdpTest, RxDeliversWirePackets)
{
    kern::Kernel host;
    auto& nic = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    NetdevAfxdp dev(nic);
    sim::ExecContext pmd("pmd", sim::CpuClass::User);

    nic.rx_from_wire(udp64(1));
    nic.rx_from_wire(udp64(2));
    std::vector<net::Packet> out;
    EXPECT_EQ(dev.rx_burst(0, out, 32, pmd), 2u);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(net::parse_flow(out[0]).tp_src, 1);
    EXPECT_EQ(net::parse_flow(out[1]).tp_src, 2);
    // AF_XDP strips HW metadata: no checksum hint survives (O5 default off
    // means OVS validated in software).
    EXPECT_TRUE(out[0].meta().csum_verified); // validated, at a cost
    EXPECT_GT(pmd.total_busy(), 0);
}

TEST(NetdevAfxdpTest, CsumOffloadOptionSkipsValidationCost)
{
    kern::Kernel host;
    auto& nic1 = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    auto& nic2 = host.add_device<kern::PhysicalDevice>("eth1", net::MacAddr::from_id(2));
    AfxdpOptions with = AfxdpOptions::all();
    AfxdpOptions without = AfxdpOptions::all();
    without.csum_offload = false;
    NetdevAfxdp dev_with(nic1, with);
    NetdevAfxdp dev_without(nic2, without);
    sim::ExecContext c1("a", sim::CpuClass::User), c2("b", sim::CpuClass::User);

    nic1.rx_from_wire(udp64());
    nic2.rx_from_wire(udp64());
    std::vector<net::Packet> o1, o2;
    dev_with.rx_burst(0, o1, 32, c1);
    dev_without.rx_burst(0, o2, 32, c2);
    EXPECT_LT(c1.total_busy(), c2.total_busy());
}

TEST(NetdevAfxdpTest, TxGoesOutTheWire)
{
    kern::Kernel host;
    auto& nic = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    std::vector<net::Packet> wire;
    nic.connect_wire([&](net::Packet&& p) { wire.push_back(std::move(p)); });
    NetdevAfxdp dev(nic);
    sim::ExecContext pmd("pmd", sim::CpuClass::User);

    std::vector<net::Packet> batch;
    for (int i = 0; i < 5; ++i) batch.push_back(udp64(static_cast<std::uint16_t>(i)));
    dev.tx_burst(0, std::move(batch), pmd);
    ASSERT_EQ(wire.size(), 5u);
    EXPECT_EQ(net::parse_flow(wire[4]).tp_src, 4);
    // The TX kick is a syscall: system time on the PMD.
    EXPECT_GT(pmd.busy(sim::CpuClass::System), 0);
    EXPECT_EQ(dev.stats().tx_packets, 5u);
}

TEST(NetdevAfxdpTest, TxMaterializesOffloadedChecksum)
{
    kern::Kernel host;
    auto& nic = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    std::vector<net::Packet> wire;
    nic.connect_wire([&](net::Packet&& p) { wire.push_back(std::move(p)); });
    AfxdpOptions opts = AfxdpOptions::all();
    opts.csum_offload = false; // software path must fill checksums
    NetdevAfxdp dev(nic, opts);
    sim::ExecContext pmd("pmd", sim::CpuClass::User);

    net::TcpSpec spec;
    spec.src_ip = ipv4(1, 1, 1, 1);
    spec.dst_ip = ipv4(2, 2, 2, 2);
    spec.payload_len = 64;
    spec.fill_tcp_csum = false;
    net::Packet pkt = net::build_tcp(spec);
    pkt.meta().csum_tx_offload = true;
    dev.tx_one(0, std::move(pkt), pmd);
    ASSERT_EQ(wire.size(), 1u);
    EXPECT_TRUE(net::verify_l4_csum(wire[0], 14));
    EXPECT_FALSE(wire[0].meta().csum_tx_offload);
}

TEST(NetdevAfxdpTest, UmemExhaustionDropsTx)
{
    kern::Kernel host;
    auto& nic = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    AfxdpOptions opts;
    opts.umem_frames = 8; // 4 on the fill ring, 4 free
    NetdevAfxdp dev(nic, opts);
    // Swallow TX completions never happen because we disconnect the wire.
    sim::ExecContext pmd("pmd", sim::CpuClass::User);
    std::vector<net::Packet> batch;
    for (int i = 0; i < 16; ++i) batch.push_back(udp64());
    dev.tx_burst(0, std::move(batch), pmd);
    EXPECT_GT(dev.stats().tx_dropped, 0u);
}

TEST(NetdevAfxdpTest, CopyFallbackModeWhenNoZerocopy)
{
    kern::Kernel host;
    kern::NicConfig cfg;
    cfg.zerocopy_afxdp = false; // §3.5 limitation: universal copy mode
    auto& nic = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1), cfg);
    NetdevAfxdp dev(nic);
    EXPECT_EQ(dev.xsk(0).mode(), afxdp::BindMode::Copy);

    kern::NicConfig zc;
    auto& nic2 = host.add_device<kern::PhysicalDevice>("eth1", net::MacAddr::from_id(2), zc);
    NetdevAfxdp dev2(nic2);
    EXPECT_EQ(dev2.xsk(0).mode(), afxdp::BindMode::ZeroCopy);
}

TEST(NetdevAfxdpTest, CustomProgramMustVerify)
{
    kern::Kernel host;
    auto& nic = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    NetdevAfxdp dev(nic);
    // An invalid program (packet access without bounds check) is refused.
    ebpf::ProgramBuilder bad("bad");
    bad.mov_reg(ebpf::R6, ebpf::R1)
        .ldxdw(ebpf::R2, ebpf::R6, 0)
        .ldxb(ebpf::R0, ebpf::R2, 0)
        .exit();
    EXPECT_THROW(dev.load_custom_xdp(bad.build()), std::runtime_error);
    // A good one loads.
    EXPECT_NO_THROW(dev.load_custom_xdp(ebpf::xdp_redirect_to_xsk(dev.xsk_map())));
}

TEST(NetdevAfxdpTest, MultiqueueComputesSoftwareRxhash)
{
    kern::Kernel host;
    kern::NicConfig cfg;
    cfg.num_queues = 4;
    auto& nic = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1), cfg);
    NetdevAfxdp dev(nic);
    sim::ExecContext pmd("pmd", sim::CpuClass::User);
    net::Packet pkt = udp64();
    const auto q = nic.select_queue(pkt);
    nic.rx_from_wire(std::move(pkt));
    std::vector<net::Packet> out;
    ASSERT_EQ(dev.rx_burst(q, out, 32, pmd), 1u);
    EXPECT_TRUE(out[0].meta().rxhash_valid); // recomputed in software
}

// ---- netdev-linux ---------------------------------------------------------

TEST(NetdevLinuxTest, StealsDeviceIngress)
{
    kern::Kernel host;
    auto& tap = host.add_device<kern::TapDevice>("tap0", net::MacAddr::from_id(3));
    NetdevLinux dev(tap);
    sim::ExecContext qemu("qemu", sim::CpuClass::User);
    tap.fd_write(udp64(), qemu); // guest sends
    EXPECT_EQ(dev.rx_queue_depth(), 1u);

    sim::ExecContext pmd("pmd", sim::CpuClass::User);
    std::vector<net::Packet> out;
    EXPECT_EQ(dev.rx_burst(0, out, 32, pmd), 1u);
    EXPECT_GT(pmd.busy(sim::CpuClass::System), 0); // recvmmsg
}

TEST(NetdevLinuxTest, TxBatchAmortizesSyscall)
{
    kern::Kernel host;
    auto& tap = host.add_device<kern::TapDevice>("tap0", net::MacAddr::from_id(3));
    int fd_rx = 0;
    tap.set_fd_rx([&](net::Packet&&, sim::ExecContext&) { ++fd_rx; });

    NetdevLinux dev(tap);
    sim::ExecContext one("one", sim::CpuClass::User);
    dev.tx_one(0, udp64(), one);
    const auto single_cost = one.total_busy();

    sim::ExecContext batch_ctx("batch", sim::CpuClass::User);
    std::vector<net::Packet> batch;
    for (int i = 0; i < 8; ++i) batch.push_back(udp64());
    dev.tx_burst(0, std::move(batch), batch_ctx);
    EXPECT_EQ(fd_rx, 9);
    // 8 packets cost far less than 8x a single send.
    EXPECT_LT(batch_ctx.total_busy(), 8 * single_cost);
}

TEST(NetdevLinuxTest, DetachRestoresStackDelivery)
{
    kern::Kernel host;
    auto& tap = host.add_device<kern::TapDevice>("tap0", net::MacAddr::from_id(3));
    host.stack().add_address(tap.ifindex(), ipv4(10, 0, 0, 2), 24);
    int stack_rx = 0;
    host.stack().bind(17, 2000, [&](net::Packet&&, const net::FlowKey&, sim::ExecContext&) {
        ++stack_rx;
    });
    sim::ExecContext qemu("q", sim::CpuClass::User);
    {
        NetdevLinux dev(tap);
        tap.fd_write(udp64(), qemu);
        EXPECT_EQ(stack_rx, 0); // stolen by the packet socket
    }
    tap.fd_write(udp64(), qemu);
    EXPECT_EQ(stack_rx, 1); // netdev destroyed -> stack gets it again
}

// ---- netdev-vhost -----------------------------------------------------------

TEST(NetdevVhostTest, BidirectionalWithStats)
{
    kern::Kernel host;
    kern::VhostUserChannel chan(host.costs());
    int guest_got = 0;
    chan.set_guest_rx([&](net::Packet&&, sim::ExecContext&) { ++guest_got; });
    NetdevVhost dev("vhost0", chan);
    sim::ExecContext pmd("pmd", sim::CpuClass::User);
    sim::ExecContext vcpu("vcpu", sim::CpuClass::Guest);

    dev.tx_one(0, udp64(), pmd);
    EXPECT_EQ(guest_got, 1);
    EXPECT_EQ(dev.stats().tx_packets, 1u);

    chan.guest_tx(udp64(7), vcpu);
    std::vector<net::Packet> out;
    EXPECT_EQ(dev.rx_burst(0, out, 32, pmd), 1u);
    EXPECT_EQ(net::parse_flow(out[0]).tp_src, 7);
    EXPECT_EQ(dev.stats().rx_packets, 1u);
}

// ---- netdev-dpdk ---------------------------------------------------------------

TEST(NetdevDpdkTest, RoundTripBypassesKernel)
{
    kern::Kernel host;
    auto& nic = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    std::vector<net::Packet> wire;
    nic.connect_wire([&](net::Packet&& p) { wire.push_back(std::move(p)); });
    dpdk::Mempool pool(256, 2176);
    NetdevDpdk dev(nic, pool);
    EXPECT_FALSE(nic.kernel_managed());

    sim::ExecContext pmd("pmd", sim::CpuClass::User);
    nic.rx_from_wire(udp64());
    std::vector<net::Packet> out;
    ASSERT_EQ(dev.rx_burst(0, out, 32, pmd), 1u);
    EXPECT_EQ(nic.softirq_ctx(0).total_busy(), 0); // zero kernel time

    dev.tx_burst(0, std::move(out), pmd);
    EXPECT_EQ(wire.size(), 1u);
    EXPECT_EQ(pmd.busy(sim::CpuClass::System), 0); // no syscalls either
}

TEST(NetdevDpdkTest, QueueOverflowDrops)
{
    kern::Kernel host;
    auto& nic = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    dpdk::Mempool pool(256, 2176);
    NetdevDpdk dev(nic, pool);
    for (int i = 0; i < 5000; ++i) nic.rx_from_wire(udp64());
    EXPECT_GT(dev.ethdev().rx_dropped(), 0u);
}

TEST(MempoolTest, AllocFreeCycle)
{
    dpdk::Mempool pool(4, 2176);
    EXPECT_EQ(pool.available(), 4u);
    auto a = pool.alloc();
    auto b = pool.alloc();
    ASSERT_TRUE(a && b);
    EXPECT_NE(a->data, b->data);
    EXPECT_EQ(pool.available(), 2u);
    auto c = pool.alloc();
    auto d = pool.alloc();
    EXPECT_FALSE(pool.alloc().has_value()); // exhausted
    pool.free(*a);
    auto e = pool.alloc();
    EXPECT_TRUE(e.has_value());
    EXPECT_THROW(pool.free(dpdk::Mbuf{99, 0, nullptr}), std::out_of_range);
    // Return everything: ~Mempool audits outstanding mbufs as leaks
    // (hardened mode turns that audit into a hard failure).
    pool.free(*b);
    pool.free(*c);
    pool.free(*d);
    pool.free(*e);
}

} // namespace
} // namespace ovsx::ovs
