#include <gtest/gtest.h>

#include "net/builder.h"
#include "ovs/emc.h"
#include "ovs/megaflow.h"
#include "ovs/meter.h"

namespace ovsx::ovs {
namespace {

using net::ipv4;

net::FlowKey key_for(std::uint16_t sport, std::uint32_t dst = ipv4(10, 0, 0, 2))
{
    net::UdpSpec spec;
    spec.src_ip = ipv4(10, 0, 0, 1);
    spec.dst_ip = dst;
    spec.src_port = sport;
    spec.dst_port = 2000;
    net::Packet p = net::build_udp(spec);
    p.meta().in_port = 1;
    return net::parse_flow(p);
}

CachedFlowPtr flow_with_port(std::uint32_t port)
{
    auto f = std::make_shared<CachedFlow>();
    f->actions = {kern::OdpAction::output(port)};
    return f;
}

TEST(EmcTest, HitAfterInsert)
{
    Emc emc(1024);
    const auto key = key_for(1);
    const auto hash = key.hash();
    EXPECT_EQ(emc.lookup(key, hash), nullptr);
    emc.insert(key, hash, flow_with_port(7));
    auto* flow = emc.lookup(key, hash);
    ASSERT_NE(flow, nullptr);
    EXPECT_EQ(flow->actions[0].port, 7u);
    EXPECT_EQ(emc.hits(), 1u);
    EXPECT_EQ(emc.misses(), 1u);
}

TEST(EmcTest, DistinguishesKeysWithSameBucket)
{
    Emc emc(2); // tiny: everything collides
    const auto k1 = key_for(1);
    const auto k2 = key_for(2);
    emc.insert(k1, k1.hash(), flow_with_port(1));
    emc.insert(k2, k2.hash(), flow_with_port(2));
    // Whatever survived eviction must map to its own key.
    if (auto* f = emc.lookup(k1, k1.hash())) {
        EXPECT_EQ(f->actions[0].port, 1u);
    }
    if (auto* f = emc.lookup(k2, k2.hash())) {
        EXPECT_EQ(f->actions[0].port, 2u);
    }
}

TEST(EmcTest, DeadFlowsAreSkippedAndSwept)
{
    Emc emc(1024);
    const auto key = key_for(1);
    auto flow = flow_with_port(3);
    emc.insert(key, key.hash(), flow);
    flow->dead = true;
    EXPECT_EQ(emc.lookup(key, key.hash()), nullptr);
    emc.insert(key, key.hash(), flow_with_port(4));
    EXPECT_GE(emc.sweep(), 0u);
    ASSERT_NE(emc.lookup(key, key.hash()), nullptr);
}

TEST(EmcTest, RequiresPowerOfTwo)
{
    EXPECT_THROW(Emc(1000), std::invalid_argument);
}

TEST(MegaflowTest, WildcardHit)
{
    MegaflowCache cache;
    net::FlowMask mask;
    mask.bits.in_port = 0xffffffff;
    mask.bits.nw_dst = 0xffffff00; // /24
    cache.insert(key_for(1), mask, {kern::OdpAction::output(9)});

    // Any packet in the /24 from port 1 hits, regardless of sport.
    for (std::uint16_t s = 100; s < 110; ++s) {
        auto res = cache.lookup(key_for(s, ipv4(10, 0, 0, 200)));
        ASSERT_NE(res.flow, nullptr) << s;
        EXPECT_EQ(res.flow->actions[0].port, 9u);
    }
    EXPECT_EQ(cache.lookup(key_for(1, ipv4(10, 0, 1, 2))).flow, nullptr);
    EXPECT_EQ(cache.flow_count(), 1u);
    EXPECT_EQ(cache.mask_count(), 1u);
}

TEST(MegaflowTest, ProbesGrowWithMaskCount)
{
    MegaflowCache cache;
    net::FlowMask m1;
    m1.bits.in_port = 0xffffffff;
    net::FlowMask m2 = m1;
    m2.bits.nw_dst = 0xffffffff;
    net::FlowMask m3 = m2;
    m3.bits.tp_src = 0xffff;

    cache.insert(key_for(50), m3, {kern::OdpAction::drop()});
    cache.insert(key_for(1, ipv4(9, 9, 9, 9)), m2, {kern::OdpAction::drop()});
    cache.insert(key_for(1), m1, {kern::OdpAction::output(1)});
    EXPECT_EQ(cache.mask_count(), 3u);

    // Key that only matches the m1 entry probes all three subtables in
    // the worst case.
    auto res = cache.lookup(key_for(77, ipv4(10, 0, 0, 99)));
    ASSERT_NE(res.flow, nullptr);
    EXPECT_GE(res.probes, 1);
    EXPECT_LE(res.probes, 3);
}

TEST(MegaflowTest, RerankPrefersHotSubtables)
{
    MegaflowCache cache;
    net::FlowMask cold;
    cold.bits.tp_src = 0xffff;
    cold.bits.in_port = 0xffffffff;
    net::FlowMask hot;
    hot.bits.in_port = 0xffffffff;
    // Insert the cold mask first so it is probed first.
    cache.insert(key_for(555), cold, {kern::OdpAction::drop()});
    cache.insert(key_for(1), hot, {kern::OdpAction::output(1)});

    // Hammer the hot entry.
    for (int i = 0; i < 100; ++i) {
        auto res = cache.lookup(key_for(7));
        ASSERT_NE(res.flow, nullptr);
    }
    const auto probes_before = cache.lookup(key_for(8)).probes;
    cache.rerank();
    const auto probes_after = cache.lookup(key_for(9)).probes;
    EXPECT_LE(probes_after, probes_before);
    EXPECT_EQ(probes_after, 1); // hot subtable now probed first
}

TEST(MegaflowTest, RemoveMarksDead)
{
    MegaflowCache cache;
    net::FlowMask mask;
    mask.bits.in_port = 0xffffffff;
    auto flow = cache.insert(key_for(1), mask, {kern::OdpAction::output(2)});
    EXPECT_TRUE(cache.remove(key_for(1), mask));
    EXPECT_TRUE(flow->dead); // EMC holders see the tombstone
    EXPECT_EQ(cache.lookup(key_for(1)).flow, nullptr);
    EXPECT_FALSE(cache.remove(key_for(1), mask));
}

TEST(MegaflowTest, ReplaceExisting)
{
    MegaflowCache cache;
    net::FlowMask mask;
    mask.bits.in_port = 0xffffffff;
    cache.insert(key_for(1), mask, {kern::OdpAction::output(1)});
    cache.insert(key_for(1), mask, {kern::OdpAction::output(2)});
    EXPECT_EQ(cache.flow_count(), 1u);
    EXPECT_EQ(cache.lookup(key_for(9)).flow->actions[0].port, 2u);
}

TEST(MeterTest, PpsMeterDropsAboveRate)
{
    MeterTable meters;
    meters.set(1, {.rate_kbps = 0, .rate_pps = 1000, .burst = 10});
    // Burst of 10 passes, the 11th in the same instant drops.
    int passed = 0;
    for (int i = 0; i < 11; ++i) {
        if (meters.admit(1, 64, 0)) ++passed;
    }
    EXPECT_EQ(passed, 10);
    EXPECT_EQ(meters.dropped(1), 1u);
    // After 5ms, 5 more tokens accumulated.
    passed = 0;
    for (int i = 0; i < 10; ++i) {
        if (meters.admit(1, 64, 5 * sim::kMilli)) ++passed;
    }
    EXPECT_EQ(passed, 5);
}

TEST(MeterTest, KbpsMeterAccountsBytes)
{
    MeterTable meters;
    // 8 Mbit/s with an 80 kbit bucket = 10 KB burst.
    meters.set(2, {.rate_kbps = 8000, .rate_pps = 0, .burst = 80000});
    int passed = 0;
    for (int i = 0; i < 20; ++i) {
        if (meters.admit(2, 1000, 0)) ++passed; // 8000 bits each
    }
    EXPECT_EQ(passed, 10);
}

TEST(MeterTest, UnknownMeterPasses)
{
    MeterTable meters;
    EXPECT_TRUE(meters.admit(99, 1500, 0));
}

TEST(MeterTest, RemoveRestoresPass)
{
    MeterTable meters;
    meters.set(3, {.rate_kbps = 0, .rate_pps = 1, .burst = 1});
    EXPECT_TRUE(meters.admit(3, 64, 0));
    EXPECT_FALSE(meters.admit(3, 64, 0));
    EXPECT_TRUE(meters.remove(3));
    EXPECT_TRUE(meters.admit(3, 64, 0));
}

} // namespace
} // namespace ovsx::ovs
