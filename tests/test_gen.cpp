#include <gtest/gtest.h>

#include <set>

#include "gen/latency.h"
#include "gen/measure.h"
#include "gen/testbed.h"
#include "gen/traffic.h"
#include "kern/nic.h"

namespace ovsx::gen {
namespace {

using net::ipv4;

TEST(Traffic, SingleFlowIsStable)
{
    TrafficGen gen({.n_flows = 1, .frame_size = 64});
    const auto k1 = net::parse_flow(gen.next());
    const auto k2 = net::parse_flow(gen.next());
    EXPECT_EQ(k1, k2);
    // 64B frame = 60 bytes in memory (FCS on the wire only).
    EXPECT_EQ(gen.next().size(), 60u);
}

TEST(Traffic, ThousandFlowsSpread)
{
    TrafficGen gen({.n_flows = 1000, .frame_size = 64});
    std::set<std::pair<std::uint32_t, std::uint32_t>> tuples;
    for (int i = 0; i < 1000; ++i) {
        const auto k = net::parse_flow(gen.next());
        tuples.insert({k.nw_src, k.nw_dst});
    }
    EXPECT_GT(tuples.size(), 500u); // high flow diversity
}

TEST(Traffic, FrameSizesHonored)
{
    TrafficGen gen({.n_flows = 1, .frame_size = 1518});
    EXPECT_EQ(gen.next().size(), 1514u); // minus 4B FCS
}

TEST(Traffic, DeterministicAcrossRuns)
{
    TrafficGen a({.n_flows = 1000, .seed = 9});
    TrafficGen b({.n_flows = 1000, .seed = 9});
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(net::parse_flow(a.next()), net::parse_flow(b.next()));
    }
}

TEST(Measure, BottleneckDeterminesRate)
{
    sim::ExecContext fast("fast", sim::CpuClass::User);
    sim::ExecContext slow("slow", sim::CpuClass::Softirq);
    fast.charge(100 * 1000);  // 100ns x 1000 packets
    slow.charge(500 * 1000);  // 500ns x 1000 packets

    RateMeasure m;
    m.add_stage({"fast", &fast, StageKind::Polling, 1});
    m.add_stage({"slow", &slow, StageKind::Demand, 1});
    const auto rep = m.report(1000);
    EXPECT_EQ(rep.bottleneck, "slow");
    EXPECT_NEAR(rep.mpps(), 2.0, 0.01); // 1e9/500
}

TEST(Measure, ParallelismScalesCapacity)
{
    sim::ExecContext softirq("softirq", sim::CpuClass::Softirq);
    softirq.charge(500 * 1000);
    RateMeasure m;
    m.add_stage({"softirq", &softirq, StageKind::Demand, 8}); // RSS over 8 CPUs
    const auto rep = m.report(1000);
    EXPECT_NEAR(rep.mpps(), 16.0, 0.01);
    // CPU at rate: 16 Mpps x 500ns = 8 cores of softirq.
    EXPECT_NEAR(rep.cpu.softirq, 8.0, 0.01);
}

TEST(Measure, LineRateCapsAndPollingBurnsCores)
{
    sim::ExecContext pmd("pmd", sim::CpuClass::User);
    pmd.charge(100 * 1000);
    RateMeasure m;
    m.add_stage({"pmd", &pmd, StageKind::Polling, 1});
    const auto rep = m.report(1000, /*line_rate=*/5e6);
    EXPECT_EQ(rep.bottleneck, "line-rate");
    EXPECT_NEAR(rep.mpps(), 5.0, 0.01);
    // 5 Mpps x 100ns = 0.5 cores of work + 0.5 cores of spin = 1.0.
    EXPECT_NEAR(rep.cpu.total(), 1.0, 0.01);
}

TEST(Measure, MixedClassAttribution)
{
    sim::ExecContext pmd("pmd", sim::CpuClass::User);
    pmd.charge(sim::CpuClass::User, 80 * 1000);
    pmd.charge(sim::CpuClass::System, 20 * 1000);
    RateMeasure m;
    m.add_stage({"pmd", &pmd, StageKind::Polling, 1});
    const auto rep = m.report(1000); // rate = 10 Mpps (100ns each)
    EXPECT_NEAR(rep.cpu.system, 0.2, 0.01);
    EXPECT_NEAR(rep.cpu.user, 0.8, 0.01);
}

TEST(Latency, JitterWidensTail)
{
    auto exchange = [] { return sim::Nanos{30000}; };
    const auto polling = run_tcp_rr(exchange, 3000, JitterModel::polling());
    const auto irq = run_tcp_rr(exchange, 3000, JitterModel::interrupt_driven(4));

    EXPECT_LT(polling.rtt.percentile(99), irq.rtt.percentile(99));
    // Polling P99/P50 spread is tight; interrupt-driven has a tail.
    const double spread_poll = static_cast<double>(polling.rtt.percentile(99)) /
                               static_cast<double>(polling.rtt.percentile(50));
    const double spread_irq = static_cast<double>(irq.rtt.percentile(99)) /
                              static_cast<double>(irq.rtt.percentile(50));
    EXPECT_LT(spread_poll, spread_irq);
    EXPECT_GT(polling.transactions_per_sec, irq.transactions_per_sec);
}

TEST(Latency, Deterministic)
{
    auto exchange = [] { return sim::Nanos{10000}; };
    const auto a = run_tcp_rr(exchange, 500, JitterModel::interrupt_driven(2), 11);
    const auto b = run_tcp_rr(exchange, 500, JitterModel::interrupt_driven(2), 11);
    EXPECT_EQ(a.rtt.percentile(99), b.rtt.percentile(99));
}

TEST(Testbed, VhostVmRoundTrip)
{
    kern::Kernel host("host");
    VhostVm vm(host.costs(), "vm0", net::MacAddr::from_id(5), ipv4(10, 0, 0, 5));
    sim::ExecContext ovs_ctx("ovs", sim::CpuClass::User);

    Sink sink;
    bind_udp_sink(vm.kernel().stack(), 9000, sink);

    net::UdpSpec spec;
    spec.dst_mac = vm.vnic().mac();
    spec.src_ip = ipv4(10, 0, 0, 1);
    spec.dst_ip = vm.ip();
    spec.dst_port = 9000;
    vm.channel().backend_tx(net::build_udp(spec), ovs_ctx);
    EXPECT_EQ(sink.packets, 1u);
}

TEST(Testbed, TapVmRoundTrip)
{
    kern::Kernel host("host");
    TapVm vm(host, "vm0", net::MacAddr::from_id(5), ipv4(10, 0, 0, 5));
    Sink sink;
    bind_udp_sink(vm.kernel().stack(), 9000, sink);

    // "QEMU reads from tap": host egress out the tap reaches the guest.
    net::UdpSpec spec;
    spec.dst_mac = vm.vnic().mac();
    spec.src_ip = ipv4(10, 0, 0, 1);
    spec.dst_ip = vm.ip();
    spec.dst_port = 9000;
    sim::ExecContext kctx("kernel", sim::CpuClass::Softirq);
    vm.tap().transmit(net::build_udp(spec), kctx);
    EXPECT_EQ(sink.packets, 1u);

    // Guest replies out its vNIC -> tap fd_write -> host kernel ingress.
    int host_rx = 0;
    vm.tap().set_rx_handler([&](kern::Device&, net::Packet&&, sim::ExecContext&) { ++host_rx; });
    vm.kernel().stack().add_neighbor(ipv4(10, 0, 0, 1), net::MacAddr::from_id(9), 1);
    vm.kernel().stack().send_udp(ipv4(10, 0, 0, 1), 9000, 9001, 32, vm.vcpu());
    EXPECT_EQ(host_rx, 1);
}

TEST(Testbed, ContainerNamespaces)
{
    kern::Kernel host("host");
    Container c0 = make_container(host, "c0", ipv4(172, 17, 0, 2));
    Container c1 = make_container(host, "c1", ipv4(172, 17, 0, 3));
    EXPECT_NE(c0.ns_id, c1.ns_id);
    EXPECT_TRUE(host.stack(c0.ns_id).is_local_address(c0.ip));
    EXPECT_FALSE(host.stack(c0.ns_id).is_local_address(c1.ip));
    EXPECT_NE(c0.host_end->peer(), nullptr);
}

TEST(Testbed, UdpEchoAccumulatesLatency)
{
    kern::Kernel host("host");
    Container c = make_container(host, "c0", ipv4(172, 17, 0, 2));
    sim::ExecContext app("app", sim::CpuClass::User);
    bind_udp_echo(host.stack(c.ns_id), 7, app, /*endpoint_cost=*/500);
    host.stack(c.ns_id).add_neighbor(ipv4(172, 17, 0, 1), net::MacAddr::from_id(1),
                                     c.inner->ifindex());

    // Catch the echo on the host end.
    sim::Nanos echoed_latency = -1;
    c.host_end->set_rx_handler([&](kern::Device&, net::Packet&& pkt, sim::ExecContext&) {
        echoed_latency = pkt.meta().latency_ns;
    });

    net::UdpSpec spec;
    spec.dst_mac = c.inner->mac();
    spec.src_ip = ipv4(172, 17, 0, 1);
    spec.dst_ip = c.ip;
    spec.src_port = 555;
    spec.dst_port = 7;
    net::Packet req = net::build_udp(spec);
    req.meta().latency_ns = 1000; // pre-existing path latency
    sim::ExecContext kctx("k", sim::CpuClass::Softirq);
    c.host_end->transmit(std::move(req), kctx);

    EXPECT_GE(echoed_latency, 1500); // request latency + endpoint cost
}

} // namespace
} // namespace ovsx::gen
