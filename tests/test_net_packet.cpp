#include <gtest/gtest.h>

#include "net/addr.h"
#include "net/builder.h"
#include "net/checksum.h"
#include "net/flow.h"
#include "net/headers.h"
#include "net/packet.h"
#include "net/tunnel.h"

namespace ovsx::net {
namespace {

TEST(Addr, MacFormatting)
{
    MacAddr m(0x02, 0x00, 0xde, 0xad, 0xbe, 0xef);
    EXPECT_EQ(m.to_string(), "02:00:de:ad:be:ef");
    EXPECT_FALSE(m.is_broadcast());
    EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
    EXPECT_TRUE(MacAddr::broadcast().is_multicast());
    EXPECT_TRUE(MacAddr().is_zero());
}

TEST(Addr, MacFromIdIsStableAndUnicast)
{
    const auto a = MacAddr::from_id(7);
    EXPECT_EQ(a, MacAddr::from_id(7));
    EXPECT_NE(a, MacAddr::from_id(8));
    EXPECT_FALSE(a.is_multicast());
}

TEST(Addr, Ipv4RoundTrip)
{
    const auto ip = ipv4(10, 1, 2, 3);
    EXPECT_EQ(ipv4_to_string(ip), "10.1.2.3");
    EXPECT_EQ(ipv4_from_string("10.1.2.3"), ip);
    EXPECT_EQ(ipv4_from_string("10.1.2.999"), 0u);
    EXPECT_EQ(ipv4_from_string("not-an-ip"), 0u);
}

TEST(ByteOrder, Swaps)
{
    EXPECT_EQ(host_to_be16(0x1234), 0x3412);
    EXPECT_EQ(be32_to_host(host_to_be32(0xdeadbeef)), 0xdeadbeefu);
    EXPECT_EQ(be64_to_host(host_to_be64(0x0123456789abcdefULL)), 0x0123456789abcdefULL);
}

TEST(Packet, PushPullFront)
{
    Packet p(10);
    EXPECT_EQ(p.size(), 10u);
    const auto headroom = p.headroom();
    p.push_front(4);
    EXPECT_EQ(p.size(), 14u);
    EXPECT_EQ(p.headroom(), headroom - 4);
    p.pull_front(14);
    EXPECT_EQ(p.size(), 0u);
    EXPECT_THROW(p.pull_front(1), std::runtime_error);
}

TEST(Packet, HeadroomExhaustionThrows)
{
    Packet p(1, /*headroom=*/8);
    EXPECT_THROW(p.push_front(9), std::runtime_error);
    EXPECT_NO_THROW(p.push_front(8));
}

TEST(Packet, AppendAndTruncate)
{
    Packet p(0);
    const std::uint8_t data[] = {1, 2, 3};
    p.append(data);
    p.append_zeros(2);
    EXPECT_EQ(p.size(), 5u);
    EXPECT_EQ(p.data()[0], 1);
    EXPECT_EQ(p.data()[4], 0);
    p.truncate(2);
    EXPECT_EQ(p.size(), 2u);
    EXPECT_THROW(p.truncate(3), std::runtime_error);
}

TEST(Packet, TryHeaderAtBounds)
{
    Packet p(sizeof(EthernetHeader));
    EXPECT_NE(p.try_header_at<EthernetHeader>(0), nullptr);
    EXPECT_EQ(p.try_header_at<EthernetHeader>(1), nullptr);
    EXPECT_EQ(p.try_header_at<Ipv4Header>(sizeof(EthernetHeader)), nullptr);
}

TEST(Checksum, KnownVector)
{
    // Classic RFC 1071 example bytes.
    const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
    const auto sum = internet_checksum(data);
    // Folding the data together with its own checksum must yield zero.
    EXPECT_EQ(checksum_finish(checksum_partial(data, sum)), 0);
}

TEST(Checksum, OddLength)
{
    const std::uint8_t data[] = {0xab};
    EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xab00 & 0xffff));
}

TEST(Builder, UdpFrameIsWellFormed)
{
    UdpSpec spec;
    spec.src_mac = MacAddr::from_id(1);
    spec.dst_mac = MacAddr::from_id(2);
    spec.src_ip = ipv4(10, 0, 0, 1);
    spec.dst_ip = ipv4(10, 0, 0, 2);
    spec.src_port = 1234;
    spec.dst_port = 80;
    const Packet p = build_udp(spec);
    EXPECT_EQ(p.size(), 60u); // 14 eth + 20 ip + 8 udp + 18 payload (64B frame with FCS)

    const auto* eth = p.header_at<EthernetHeader>(0);
    EXPECT_EQ(eth->ether_type(), static_cast<std::uint16_t>(EtherType::Ipv4));
    const auto* ip = p.header_at<Ipv4Header>(14);
    EXPECT_EQ(ip->version(), 4);
    EXPECT_EQ(ip->src(), spec.src_ip);
    EXPECT_EQ(ip->proto, static_cast<std::uint8_t>(IpProto::Udp));
    // IPv4 header checksum verifies.
    EXPECT_EQ(internet_checksum({p.data() + 14, 20}), 0);
    // L4 checksum verifies.
    EXPECT_TRUE(verify_l4_csum(p, 14));
}

TEST(Builder, UdpWithVlan)
{
    UdpSpec spec;
    spec.src_mac = MacAddr::from_id(1);
    spec.dst_mac = MacAddr::from_id(2);
    spec.src_ip = ipv4(1, 1, 1, 1);
    spec.dst_ip = ipv4(2, 2, 2, 2);
    spec.vlan_tci = 100;
    const Packet p = build_udp(spec);
    const auto* eth = p.header_at<EthernetHeader>(0);
    EXPECT_EQ(eth->ether_type(), static_cast<std::uint16_t>(EtherType::Vlan));
    const auto* vlan = p.header_at<VlanHeader>(14);
    EXPECT_EQ(vlan->vid(), 100);
    EXPECT_EQ(vlan->ether_type(), static_cast<std::uint16_t>(EtherType::Ipv4));
}

TEST(Builder, TcpChecksumValid)
{
    TcpSpec spec;
    spec.src_mac = MacAddr::from_id(1);
    spec.dst_mac = MacAddr::from_id(2);
    spec.src_ip = ipv4(192, 168, 0, 1);
    spec.dst_ip = ipv4(192, 168, 0, 2);
    spec.src_port = 5555;
    spec.dst_port = 443;
    spec.flags = kTcpSyn;
    spec.payload_len = 100;
    const Packet p = build_tcp(spec);
    EXPECT_TRUE(verify_l4_csum(p, 14));
    const auto* tcp = p.header_at<TcpHeader>(34);
    EXPECT_EQ(tcp->src(), 5555);
    EXPECT_EQ(tcp->flags, kTcpSyn);
}

TEST(Builder, CorruptionBreaksChecksum)
{
    TcpSpec spec;
    spec.src_ip = ipv4(1, 2, 3, 4);
    spec.dst_ip = ipv4(4, 3, 2, 1);
    spec.payload_len = 32;
    Packet p = build_tcp(spec);
    ASSERT_TRUE(verify_l4_csum(p, 14));
    p.data()[40] ^= 0xff; // flip a payload byte
    EXPECT_FALSE(verify_l4_csum(p, 14));
    refresh_l4_csum(p, 14);
    EXPECT_TRUE(verify_l4_csum(p, 14));
}

TEST(Builder, ArpRequest)
{
    const Packet p =
        build_arp(true, MacAddr::from_id(9), ipv4(10, 0, 0, 9), MacAddr(), ipv4(10, 0, 0, 1));
    const auto* eth = p.header_at<EthernetHeader>(0);
    EXPECT_TRUE(eth->dst.is_broadcast());
    const auto* arp = p.header_at<ArpHeader>(14);
    EXPECT_EQ(arp->oper(), 1);
    EXPECT_EQ(arp->spa(), ipv4(10, 0, 0, 9));
    EXPECT_EQ(arp->tpa(), ipv4(10, 0, 0, 1));
}

TEST(Builder, RewriteThenRefreshIpv4Csum)
{
    UdpSpec spec;
    spec.src_ip = ipv4(10, 0, 0, 1);
    spec.dst_ip = ipv4(10, 0, 0, 2);
    Packet p = build_udp(spec);
    auto* ip = p.header_at<Ipv4Header>(14);
    ip->set_dst(ipv4(10, 9, 9, 9));
    EXPECT_NE(internet_checksum({p.data() + 14, 20}), 0);
    refresh_ipv4_csum(p, 14);
    EXPECT_EQ(internet_checksum({p.data() + 14, 20}), 0);
}

// ---- malformed-frame corpus -------------------------------------------

UdpSpec corpus_udp_spec()
{
    UdpSpec s;
    s.src_mac = MacAddr::from_id(1);
    s.dst_mac = MacAddr::from_id(2);
    s.src_ip = ipv4(10, 0, 0, 1);
    s.dst_ip = ipv4(10, 0, 0, 2);
    s.src_port = 1000;
    s.dst_port = 2000;
    return s;
}

TEST(Malform, EveryCorpusEntryAppliesToSomeFrame)
{
    for (const Malformation m : all_malformations()) {
        Packet plain = build_udp(corpus_udp_spec());
        Packet geneve = plain;
        {
            TunnelKey key;
            key.tun_id = 7;
            key.ip_src = ipv4(192, 168, 0, 1);
            key.ip_dst = ipv4(192, 168, 0, 2);
            EncapParams params;
            params.outer_src_mac = MacAddr::from_id(3);
            params.outer_dst_mac = MacAddr::from_id(4);
            encapsulate(geneve, TunnelType::Geneve, key, params);
        }
        const bool applied = malform(plain, m) || malform(geneve, m);
        EXPECT_TRUE(applied) << "corpus entry " << to_string(m)
                             << " applies to neither a plain nor a Geneve UDP frame";
    }
}

TEST(Malform, ParserAndChecksumHelpersSurviveEveryEntry)
{
    for (const Malformation m : all_malformations()) {
        Packet pkt = build_udp(corpus_udp_spec());
        malform(pkt, m);
        // None of these may read out of bounds or throw; values are free.
        const FlowKey key = parse_flow(pkt);
        (void)key;
        const HeaderOffsets off = locate_headers(pkt);
        if (off.l3 >= 0) {
            (void)verify_l4_csum(pkt, static_cast<std::size_t>(off.l3));
        }
    }
}

// Regression (found by the differential fuzzer): with IHL claiming more
// bytes than total_len, `total_len - ihl` wrapped and the span handed to
// the checksum read past the frame.
TEST(Malform, BadIhlLargeDoesNotOverreadInChecksumVerify)
{
    Packet pkt = build_udp(corpus_udp_spec());
    ASSERT_TRUE(malform(pkt, Malformation::BadIhlLarge));
    EXPECT_FALSE(verify_l4_csum(pkt, 14));
    refresh_l4_csum(pkt, 14); // must be a safe no-op
}

TEST(Malform, BadIhlLargeDoesNotOverreadInIpChecksumRefresh)
{
    // The claimed header extends past the frame into tailroom, whose
    // content differs between rx paths: summing it made the refreshed
    // checksum depend on which datapath carried the packet.
    Packet pkt = build_udp(corpus_udp_spec());
    ASSERT_TRUE(malform(pkt, Malformation::BadIhlLarge));
    const std::vector<std::uint8_t> before(pkt.bytes().begin(), pkt.bytes().end());
    refresh_ipv4_csum(pkt, 14);
    const std::vector<std::uint8_t> after(pkt.bytes().begin(), pkt.bytes().end());
    EXPECT_EQ(after, before); // safe no-op, frame untouched
}

TEST(Malform, TruncationsShrinkTheFrame)
{
    Packet full = build_udp(corpus_udp_spec());
    for (const Malformation m :
         {Malformation::TruncateEth, Malformation::TruncateIp, Malformation::TruncateL4}) {
        Packet pkt = full;
        ASSERT_TRUE(malform(pkt, m)) << to_string(m);
        EXPECT_LT(pkt.size(), full.size()) << to_string(m);
    }
}

TEST(Builder, WithIpOptionsYieldsWellFormedFrame)
{
    Packet pkt = build_udp(corpus_udp_spec());
    Packet opts = with_ip_options(pkt, 8);
    ASSERT_GT(opts.size(), 0u);
    EXPECT_EQ(opts.size(), pkt.size() + 8);

    const auto* ip = opts.header_at<Ipv4Header>(14);
    EXPECT_EQ(ip->ihl_bytes(), 28);
    EXPECT_EQ(internet_checksum({opts.data() + 14, 28}), 0);
    EXPECT_TRUE(verify_l4_csum(opts, 14));

    // The flow key is unchanged: options shift the L4 header, they do
    // not alter the 5-tuple.
    const FlowKey a = parse_flow(pkt);
    const FlowKey b = parse_flow(opts);
    EXPECT_EQ(a.nw_src, b.nw_src);
    EXPECT_EQ(a.tp_src, b.tp_src);
    EXPECT_EQ(a.tp_dst, b.tp_dst);

    // Out-of-range requests are rejected.
    EXPECT_EQ(with_ip_options(pkt, 3).size(), 0u);
    EXPECT_EQ(with_ip_options(pkt, 44).size(), 0u);
}

TEST(Builder, IcmpErrorRoundTripsThroughInnerParse)
{
    Packet orig = build_udp(corpus_udp_spec());

    IcmpSpec err;
    err.src_mac = MacAddr::from_id(2);
    err.dst_mac = MacAddr::from_id(1);
    err.src_ip = ipv4(10, 0, 0, 2);
    err.dst_ip = ipv4(10, 0, 0, 1);
    err.type = 3;
    err.code = 3;
    Packet error = build_icmp_error(err, orig);
    ASSERT_GT(error.size(), 0u);

    const IcmpInnerTuple inner = parse_icmp_inner(error);
    ASSERT_TRUE(inner.valid);
    EXPECT_EQ(inner.src, ipv4(10, 0, 0, 1));
    EXPECT_EQ(inner.dst, ipv4(10, 0, 0, 2));
    EXPECT_EQ(inner.sport, 1000);
    EXPECT_EQ(inner.dport, 2000);
    EXPECT_EQ(inner.proto, 17);

    // Echo requests are not errors and carry no inner tuple.
    IcmpSpec echo = err;
    echo.type = 8;
    echo.code = 0;
    EXPECT_FALSE(parse_icmp_inner(build_icmp(echo)).valid);
}

} // namespace
} // namespace ovsx::net
