#include <gtest/gtest.h>

#include "net/addr.h"
#include "net/builder.h"
#include "net/checksum.h"
#include "net/headers.h"
#include "net/packet.h"

namespace ovsx::net {
namespace {

TEST(Addr, MacFormatting)
{
    MacAddr m(0x02, 0x00, 0xde, 0xad, 0xbe, 0xef);
    EXPECT_EQ(m.to_string(), "02:00:de:ad:be:ef");
    EXPECT_FALSE(m.is_broadcast());
    EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
    EXPECT_TRUE(MacAddr::broadcast().is_multicast());
    EXPECT_TRUE(MacAddr().is_zero());
}

TEST(Addr, MacFromIdIsStableAndUnicast)
{
    const auto a = MacAddr::from_id(7);
    EXPECT_EQ(a, MacAddr::from_id(7));
    EXPECT_NE(a, MacAddr::from_id(8));
    EXPECT_FALSE(a.is_multicast());
}

TEST(Addr, Ipv4RoundTrip)
{
    const auto ip = ipv4(10, 1, 2, 3);
    EXPECT_EQ(ipv4_to_string(ip), "10.1.2.3");
    EXPECT_EQ(ipv4_from_string("10.1.2.3"), ip);
    EXPECT_EQ(ipv4_from_string("10.1.2.999"), 0u);
    EXPECT_EQ(ipv4_from_string("not-an-ip"), 0u);
}

TEST(ByteOrder, Swaps)
{
    EXPECT_EQ(host_to_be16(0x1234), 0x3412);
    EXPECT_EQ(be32_to_host(host_to_be32(0xdeadbeef)), 0xdeadbeefu);
    EXPECT_EQ(be64_to_host(host_to_be64(0x0123456789abcdefULL)), 0x0123456789abcdefULL);
}

TEST(Packet, PushPullFront)
{
    Packet p(10);
    EXPECT_EQ(p.size(), 10u);
    const auto headroom = p.headroom();
    p.push_front(4);
    EXPECT_EQ(p.size(), 14u);
    EXPECT_EQ(p.headroom(), headroom - 4);
    p.pull_front(14);
    EXPECT_EQ(p.size(), 0u);
    EXPECT_THROW(p.pull_front(1), std::runtime_error);
}

TEST(Packet, HeadroomExhaustionThrows)
{
    Packet p(1, /*headroom=*/8);
    EXPECT_THROW(p.push_front(9), std::runtime_error);
    EXPECT_NO_THROW(p.push_front(8));
}

TEST(Packet, AppendAndTruncate)
{
    Packet p(0);
    const std::uint8_t data[] = {1, 2, 3};
    p.append(data);
    p.append_zeros(2);
    EXPECT_EQ(p.size(), 5u);
    EXPECT_EQ(p.data()[0], 1);
    EXPECT_EQ(p.data()[4], 0);
    p.truncate(2);
    EXPECT_EQ(p.size(), 2u);
    EXPECT_THROW(p.truncate(3), std::runtime_error);
}

TEST(Packet, TryHeaderAtBounds)
{
    Packet p(sizeof(EthernetHeader));
    EXPECT_NE(p.try_header_at<EthernetHeader>(0), nullptr);
    EXPECT_EQ(p.try_header_at<EthernetHeader>(1), nullptr);
    EXPECT_EQ(p.try_header_at<Ipv4Header>(sizeof(EthernetHeader)), nullptr);
}

TEST(Checksum, KnownVector)
{
    // Classic RFC 1071 example bytes.
    const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
    const auto sum = internet_checksum(data);
    // Folding the data together with its own checksum must yield zero.
    EXPECT_EQ(checksum_finish(checksum_partial(data, sum)), 0);
}

TEST(Checksum, OddLength)
{
    const std::uint8_t data[] = {0xab};
    EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xab00 & 0xffff));
}

TEST(Builder, UdpFrameIsWellFormed)
{
    UdpSpec spec;
    spec.src_mac = MacAddr::from_id(1);
    spec.dst_mac = MacAddr::from_id(2);
    spec.src_ip = ipv4(10, 0, 0, 1);
    spec.dst_ip = ipv4(10, 0, 0, 2);
    spec.src_port = 1234;
    spec.dst_port = 80;
    const Packet p = build_udp(spec);
    EXPECT_EQ(p.size(), 60u); // 14 eth + 20 ip + 8 udp + 18 payload (64B frame with FCS)

    const auto* eth = p.header_at<EthernetHeader>(0);
    EXPECT_EQ(eth->ether_type(), static_cast<std::uint16_t>(EtherType::Ipv4));
    const auto* ip = p.header_at<Ipv4Header>(14);
    EXPECT_EQ(ip->version(), 4);
    EXPECT_EQ(ip->src(), spec.src_ip);
    EXPECT_EQ(ip->proto, static_cast<std::uint8_t>(IpProto::Udp));
    // IPv4 header checksum verifies.
    EXPECT_EQ(internet_checksum({p.data() + 14, 20}), 0);
    // L4 checksum verifies.
    EXPECT_TRUE(verify_l4_csum(p, 14));
}

TEST(Builder, UdpWithVlan)
{
    UdpSpec spec;
    spec.src_mac = MacAddr::from_id(1);
    spec.dst_mac = MacAddr::from_id(2);
    spec.src_ip = ipv4(1, 1, 1, 1);
    spec.dst_ip = ipv4(2, 2, 2, 2);
    spec.vlan_tci = 100;
    const Packet p = build_udp(spec);
    const auto* eth = p.header_at<EthernetHeader>(0);
    EXPECT_EQ(eth->ether_type(), static_cast<std::uint16_t>(EtherType::Vlan));
    const auto* vlan = p.header_at<VlanHeader>(14);
    EXPECT_EQ(vlan->vid(), 100);
    EXPECT_EQ(vlan->ether_type(), static_cast<std::uint16_t>(EtherType::Ipv4));
}

TEST(Builder, TcpChecksumValid)
{
    TcpSpec spec;
    spec.src_mac = MacAddr::from_id(1);
    spec.dst_mac = MacAddr::from_id(2);
    spec.src_ip = ipv4(192, 168, 0, 1);
    spec.dst_ip = ipv4(192, 168, 0, 2);
    spec.src_port = 5555;
    spec.dst_port = 443;
    spec.flags = kTcpSyn;
    spec.payload_len = 100;
    const Packet p = build_tcp(spec);
    EXPECT_TRUE(verify_l4_csum(p, 14));
    const auto* tcp = p.header_at<TcpHeader>(34);
    EXPECT_EQ(tcp->src(), 5555);
    EXPECT_EQ(tcp->flags, kTcpSyn);
}

TEST(Builder, CorruptionBreaksChecksum)
{
    TcpSpec spec;
    spec.src_ip = ipv4(1, 2, 3, 4);
    spec.dst_ip = ipv4(4, 3, 2, 1);
    spec.payload_len = 32;
    Packet p = build_tcp(spec);
    ASSERT_TRUE(verify_l4_csum(p, 14));
    p.data()[40] ^= 0xff; // flip a payload byte
    EXPECT_FALSE(verify_l4_csum(p, 14));
    refresh_l4_csum(p, 14);
    EXPECT_TRUE(verify_l4_csum(p, 14));
}

TEST(Builder, ArpRequest)
{
    const Packet p =
        build_arp(true, MacAddr::from_id(9), ipv4(10, 0, 0, 9), MacAddr(), ipv4(10, 0, 0, 1));
    const auto* eth = p.header_at<EthernetHeader>(0);
    EXPECT_TRUE(eth->dst.is_broadcast());
    const auto* arp = p.header_at<ArpHeader>(14);
    EXPECT_EQ(arp->oper(), 1);
    EXPECT_EQ(arp->spa(), ipv4(10, 0, 0, 9));
    EXPECT_EQ(arp->tpa(), ipv4(10, 0, 0, 1));
}

TEST(Builder, RewriteThenRefreshIpv4Csum)
{
    UdpSpec spec;
    spec.src_ip = ipv4(10, 0, 0, 1);
    spec.dst_ip = ipv4(10, 0, 0, 2);
    Packet p = build_udp(spec);
    auto* ip = p.header_at<Ipv4Header>(14);
    ip->set_dst(ipv4(10, 9, 9, 9));
    EXPECT_NE(internet_checksum({p.data() + 14, 20}), 0);
    refresh_ipv4_csum(p, 14);
    EXPECT_EQ(internet_checksum({p.data() + 14, 20}), 0);
}

} // namespace
} // namespace ovsx::net
