// ovsx::obs: interned coverage counters, per-packet trace spans, the
// appctl command registry and the metrics exporter — plus the
// integration guarantees PR 3 makes: all three dataplane providers
// answer the same appctl commands, identical seeded runs produce
// identical coverage snapshots, and a forced differential mismatch
// prints the divergent packet's per-provider trace.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gen/fuzz.h"
#include "kern/kernel.h"
#include "kern/nic.h"
#include "kern/ovs_kmod.h"
#include "net/builder.h"
#include "obs/appctl.h"
#include "obs/coverage.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/value.h"
#include "ovs/dpif_ebpf.h"
#include "ovs/dpif_kernel.h"
#include "ovs/dpif_netdev.h"
#include "ovs/netdev_afxdp.h"
#include "ovs/vswitch.h"
#include "sim/context.h"

namespace ovsx {
namespace {

// ---- coverage counters -------------------------------------------------

TEST(ObsCoverage, InterningIsStableAndLookupDoesNotRegister)
{
    const auto id1 = obs::coverage_id("test_obs.alpha");
    const auto id2 = obs::coverage_id("test_obs.alpha");
    EXPECT_EQ(id1, id2);
    EXPECT_EQ(obs::coverage_name(id1), std::string("test_obs.alpha"));

    EXPECT_FALSE(obs::coverage_find("test_obs.never_registered").has_value());
    ASSERT_TRUE(obs::coverage_find("test_obs.alpha").has_value());
    EXPECT_EQ(*obs::coverage_find("test_obs.alpha"), id1);
}

TEST(ObsCoverage, ContextCountsAggregateIntoGlobal)
{
    const auto id = obs::coverage_id("test_obs.ctx_agg");
    const std::uint64_t before = obs::coverage_value(id);

    sim::ExecContext a("a", sim::CpuClass::User);
    sim::ExecContext b("b", sim::CpuClass::User);
    a.count(id, 3);
    b.count(id);
    b.count("test_obs.ctx_agg", 2); // string-compat path interns to the same id

    EXPECT_EQ(a.counter(id), 3u);
    EXPECT_EQ(b.counter(id), 3u);
    EXPECT_EQ(a.counter("test_obs.ctx_agg"), 3u);
    EXPECT_EQ(obs::coverage_value(id), before + 6);

    // The string map view resolves interned ids back to names.
    const auto counters = a.counters();
    ASSERT_TRUE(counters.contains("test_obs.ctx_agg"));
    EXPECT_EQ(counters.at("test_obs.ctx_agg"), 3u);
}

TEST(ObsCoverage, SnapshotFiltersZerosAndResetClears)
{
    const auto id = obs::coverage_id("test_obs.reset_me");
    obs::coverage_inc(id, 7);
    auto snap = obs::coverage_snapshot();
    const auto find = [&](const char* name) {
        for (const auto& [n, v] : snap) {
            if (n == name) return v;
        }
        return std::uint64_t{0};
    };
    EXPECT_EQ(find("test_obs.reset_me"), 7u);

    obs::coverage_reset();
    EXPECT_EQ(obs::coverage_value(id), 0u);
    snap = obs::coverage_snapshot();
    EXPECT_EQ(find("test_obs.reset_me"), 0u); // zero entries are filtered
    // The name registration survives the reset.
    EXPECT_TRUE(obs::coverage_find("test_obs.reset_me").has_value());
}

// ---- trace ring ---------------------------------------------------------

TEST(ObsTrace, RingOverwritesOldestAndKeepsNewest)
{
    obs::Tracer t;
    t.enable(4);
    for (std::uint32_t i = 1; i <= 6; ++i) {
        t.record(i, obs::Hop::NicRx, static_cast<std::int64_t>(i) * 10, "rx", i);
    }
    EXPECT_EQ(t.recorded(), 6u);
    EXPECT_EQ(t.capacity(), 4u);

    // 1 and 2 were overwritten; 3..6 survive, oldest first.
    EXPECT_TRUE(t.events_for(1).empty());
    EXPECT_TRUE(t.events_for(2).empty());
    const auto all = t.all();
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(all.front().packet_id, 3u);
    EXPECT_EQ(all.back().packet_id, 6u);

    EXPECT_NE(t.dump(2).find("no events"), std::string::npos);
    EXPECT_NE(t.dump(5).find("nic-rx"), std::string::npos);
}

TEST(ObsTrace, DisabledTracerRecordsNothing)
{
    obs::Tracer t;
    t.record(1, obs::Hop::Tx, 0, "tx");
    EXPECT_EQ(t.recorded(), 0u);
    t.enable(8);
    t.record(0, obs::Hop::Tx, 0, "tx"); // id 0 = untraced
    EXPECT_EQ(t.recorded(), 0u);
    t.record(1, obs::Hop::Tx, 0, "tx");
    EXPECT_EQ(t.recorded(), 1u);
    t.disable();
    t.record(2, obs::Hop::Tx, 0, "tx");
    EXPECT_EQ(t.recorded(), 1u);
}

TEST(ObsTrace, DumpGroupsByDomain)
{
    obs::Tracer t;
    t.enable(16);
    t.set_domain("netdev");
    t.record(7, obs::Hop::Emc, 100, "miss");
    t.set_domain("kernel");
    t.record(7, obs::Hop::KernelFlow, 120, "hit", 2);
    const std::string dump = t.dump(7);
    EXPECT_NE(dump.find("[netdev]"), std::string::npos);
    EXPECT_NE(dump.find("[kernel]"), std::string::npos);
    EXPECT_NE(dump.find("emc"), std::string::npos);
    EXPECT_NE(dump.find("kernel-flow"), std::string::npos);
}

// ---- appctl on all three providers -------------------------------------

const std::vector<std::string> kRequiredCommands = {
    "coverage/show", "memory/show", "dpif-netdev/pmd-stats-show",
    "dpctl/dump-flows", "conntrack/show", "xsk/ring-stats",
};

void expect_command_surface(obs::Appctl& appctl, const char* provider)
{
    for (const auto& cmd : kRequiredCommands) {
        ASSERT_TRUE(appctl.has(cmd)) << provider << " missing " << cmd;
        // Every command renders as text and as JSON that round-trips
        // through the obs JSON reader.
        const std::string text = appctl.run(cmd, {}, obs::Appctl::Format::Text);
        const std::string json = appctl.run(cmd, {}, obs::Appctl::Format::Json);
        EXPECT_TRUE(obs::json_parse(json).has_value())
            << provider << " " << cmd << " produced unparseable JSON: " << json;
        (void)text;
    }
    // Consistent shapes regardless of provider.
    const obs::Value stats = appctl.run_value("dpif-netdev/pmd-stats-show");
    ASSERT_NE(stats.find("datapath"), nullptr) << provider;
    ASSERT_NE(stats.find("stats"), nullptr) << provider;
    ASSERT_NE(stats.find("pmds"), nullptr) << provider;
    EXPECT_NE(stats.find("stats")->find("hits"), nullptr) << provider;
    const obs::Value rings = appctl.run_value("xsk/ring-stats");
    ASSERT_NE(rings.find("rings"), nullptr) << provider;
    EXPECT_TRUE(rings.find("rings")->is_array()) << provider;
    const obs::Value flows = appctl.run_value("dpctl/dump-flows");
    ASSERT_NE(flows.find("flow_count"), nullptr) << provider;
    const obs::Value ct = appctl.run_value("conntrack/show");
    ASSERT_NE(ct.find("count"), nullptr) << provider;
}

TEST(ObsAppctl, AllThreeProvidersAnswerTheSameCommands)
{
    {
        kern::Kernel host;
        auto& nic = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
        auto dpif = std::make_unique<ovs::DpifNetdev>(host);
        dpif->add_port(std::make_unique<ovs::NetdevAfxdp>(nic));
        ovs::VSwitch vs(std::move(dpif));
        expect_command_surface(vs.appctl(), "netdev");
        // The AF_XDP port must show up in xsk/ring-stats.
        const obs::Value rings = vs.appctl().run_value("xsk/ring-stats");
        ASSERT_EQ(rings.find("rings")->items().size(), 1u);
        EXPECT_EQ(rings.find("rings")->items()[0].find("dev")->as_string(), "eth0");
    }
    {
        kern::Kernel host;
        kern::OvsKernelDatapath dp(host);
        ovs::VSwitch vs(std::make_unique<ovs::DpifKernel>(dp));
        expect_command_surface(vs.appctl(), "kernel");
        EXPECT_TRUE(vs.appctl().run_value("xsk/ring-stats").find("rings")->items().empty());
    }
    {
        kern::Kernel host;
        ovs::VSwitch vs(std::make_unique<ovs::DpifEbpf>(host));
        expect_command_surface(vs.appctl(), "ebpf");
        EXPECT_TRUE(vs.appctl().run_value("xsk/ring-stats").find("rings")->items().empty());
    }
}

TEST(ObsAppctl, KernelPmdStatsGoldenText)
{
    kern::Kernel host;
    kern::OvsKernelDatapath dp(host);
    ovs::VSwitch vs(std::make_unique<ovs::DpifKernel>(dp));
    EXPECT_EQ(vs.appctl().run("dpif-netdev/pmd-stats-show"),
              "datapath: system\n"
              "stats:\n"
              "  hits: 0\n"
              "  misses: 0\n"
              "  lost: 0\n"
              "pmds:\n");
}

TEST(ObsAppctl, CoverageShowReflectsCounters)
{
    obs::Appctl appctl;
    obs::coverage_inc(obs::coverage_id("test_obs.appctl_cov"), 5);
    const obs::Value v = appctl.run_value("coverage/show");
    ASSERT_NE(v.find("test_obs.appctl_cov"), nullptr);
    EXPECT_GE(v.find("test_obs.appctl_cov")->as_uint(), 5u);

    const std::string json = appctl.run("coverage/show", {}, obs::Appctl::Format::Json);
    const auto parsed = obs::json_parse(json);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_GE(parsed->find("test_obs.appctl_cov")->as_uint(), 5u);
}

TEST(ObsAppctl, UnknownCommandThrows)
{
    obs::Appctl appctl;
    EXPECT_THROW((void)appctl.run_value("no/such-command"), std::invalid_argument);
}

// ---- metrics exporter ---------------------------------------------------

TEST(ObsMetrics, DottedPathsAndSchema)
{
    obs::metrics_reset();
    obs::metrics_set("t.a.b", obs::Value(std::uint64_t{42}));
    obs::metrics_set("t.a.c", obs::Value("x"));
    ASSERT_TRUE(obs::metrics_get("t.a.b").has_value());
    EXPECT_EQ(obs::metrics_get("t.a.b")->as_uint(), 42u);

    const auto doc = obs::json_parse(obs::metrics_json());
    ASSERT_TRUE(doc.has_value());
    ASSERT_NE(doc->find("schema"), nullptr);
    EXPECT_EQ(doc->find("schema")->as_string(), obs::kMetricsSchema);
    ASSERT_NE(doc->find("coverage"), nullptr);
    ASSERT_NE(doc->find("metrics"), nullptr);
    EXPECT_EQ(doc->find("metrics")->find("t")->find("a")->find("b")->as_uint(), 42u);
    obs::metrics_reset();
}

// ---- determinism --------------------------------------------------------

TEST(ObsDeterminism, IdenticalSeededRunsProduceIdenticalCoverage)
{
    gen::FuzzConfig cfg;
    cfg.use_malformed = false;

    obs::coverage_reset();
    ASSERT_TRUE(gen::fuzz_run(42, cfg, 60).ok());
    const auto snap1 = obs::coverage_snapshot();

    obs::coverage_reset();
    ASSERT_TRUE(gen::fuzz_run(42, cfg, 60).ok());
    const auto snap2 = obs::coverage_snapshot();

    EXPECT_EQ(snap1, snap2);
    EXPECT_FALSE(snap1.empty());
}

// ---- forced divergence prints per-provider traces -----------------------

TEST(ObsTraceIntegration, ForcedMismatchDumpsPerProviderTrace)
{
    gen::DiffRuleset ruleset;
    gen::DiffRule forward;
    forward.priority = 1;
    forward.mask.bits.in_port = 0xffffffff;
    forward.match.in_port = 1;
    forward.actions.push_back(kern::OdpAction::output(2));
    ruleset.rules.push_back(forward);

    gen::DifferentialHarness harness(ruleset, {.n_ports = 2, .compare_ebpf = false});
    // Mis-translate the kernel datapath's actions: output to the wrong
    // port. Every packet diverges.
    harness.set_fault(gen::DpKind::Kernel, [](kern::OdpActions& actions) {
        for (auto& a : actions) {
            if (a.type == kern::OdpAction::Type::Output) a.port = 1;
        }
    });

    net::UdpSpec spec;
    spec.src_mac = net::MacAddr::from_id(1);
    spec.dst_mac = net::MacAddr::from_id(2);
    spec.src_ip = 0x0a000001;
    spec.dst_ip = 0x0a000002;
    spec.src_port = 1111;
    spec.dst_port = 2222;
    std::vector<gen::DiffPacket> seq;
    seq.push_back({0, net::build_udp(spec)});

    const gen::DiffReport report = harness.run(seq);
    ASSERT_FALSE(report.ok());
    ASSERT_FALSE(report.unexplained.empty());
    const gen::Divergence& d = report.unexplained.front();
    // The divergence carries the packet's journey through BOTH
    // providers, grouped by domain, and the summary prints it.
    EXPECT_NE(d.trace.find("[netdev]"), std::string::npos) << d.trace;
    EXPECT_NE(d.trace.find("[kernel]"), std::string::npos) << d.trace;
    EXPECT_NE(d.trace.find("nic-rx"), std::string::npos) << d.trace;
    EXPECT_NE(d.trace.find("tx"), std::string::npos) << d.trace;
    EXPECT_NE(report.summary().find("[kernel]"), std::string::npos);
    // The tracer was harness-enabled and restored afterwards.
    EXPECT_FALSE(obs::tracer().enabled());
}

} // namespace
} // namespace ovsx
