// ovsx::obs: interned coverage counters, per-packet trace spans, the
// appctl command registry and the metrics exporter — plus the
// integration guarantees PR 3 makes: all three dataplane providers
// answer the same appctl commands, identical seeded runs produce
// identical coverage snapshots, and a forced differential mismatch
// prints the divergent packet's per-provider trace.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gen/fuzz.h"
#include "kern/kernel.h"
#include "kern/nic.h"
#include "kern/ovs_kmod.h"
#include "net/builder.h"
#include "net/headers.h"
#include "obs/appctl.h"
#include "obs/coverage.h"
#include "obs/histogram.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "obs/perf.h"
#include "obs/trace.h"
#include "obs/value.h"
#include "obs/window.h"
#include "ovs/dpif_ebpf.h"
#include "ovs/dpif_kernel.h"
#include "ovs/dpif_netdev.h"
#include "ovs/netdev_afxdp.h"
#include "ovs/vswitch.h"
#include "sim/context.h"

namespace ovsx {
namespace {

// ---- coverage counters -------------------------------------------------

TEST(ObsCoverage, InterningIsStableAndLookupDoesNotRegister)
{
    const auto id1 = obs::coverage_id("test_obs.alpha");
    const auto id2 = obs::coverage_id("test_obs.alpha");
    EXPECT_EQ(id1, id2);
    EXPECT_EQ(obs::coverage_name(id1), std::string("test_obs.alpha"));

    EXPECT_FALSE(obs::coverage_find("test_obs.never_registered").has_value());
    ASSERT_TRUE(obs::coverage_find("test_obs.alpha").has_value());
    EXPECT_EQ(*obs::coverage_find("test_obs.alpha"), id1);
}

TEST(ObsCoverage, ContextCountsAggregateIntoGlobal)
{
    const auto id = obs::coverage_id("test_obs.ctx_agg");
    const std::uint64_t before = obs::coverage_value(id);

    sim::ExecContext a("a", sim::CpuClass::User);
    sim::ExecContext b("b", sim::CpuClass::User);
    a.count(id, 3);
    b.count(id);
    b.count("test_obs.ctx_agg", 2); // string-compat path interns to the same id

    EXPECT_EQ(a.counter(id), 3u);
    EXPECT_EQ(b.counter(id), 3u);
    EXPECT_EQ(a.counter("test_obs.ctx_agg"), 3u);
    EXPECT_EQ(obs::coverage_value(id), before + 6);

    // The string map view resolves interned ids back to names.
    const auto counters = a.counters();
    ASSERT_TRUE(counters.contains("test_obs.ctx_agg"));
    EXPECT_EQ(counters.at("test_obs.ctx_agg"), 3u);
}

TEST(ObsCoverage, SnapshotFiltersZerosAndResetClears)
{
    const auto id = obs::coverage_id("test_obs.reset_me");
    obs::coverage_inc(id, 7);
    auto snap = obs::coverage_snapshot();
    const auto find = [&](const char* name) {
        for (const auto& [n, v] : snap) {
            if (n == name) return v;
        }
        return std::uint64_t{0};
    };
    EXPECT_EQ(find("test_obs.reset_me"), 7u);

    obs::coverage_reset();
    EXPECT_EQ(obs::coverage_value(id), 0u);
    snap = obs::coverage_snapshot();
    EXPECT_EQ(find("test_obs.reset_me"), 0u); // zero entries are filtered
    // The name registration survives the reset.
    EXPECT_TRUE(obs::coverage_find("test_obs.reset_me").has_value());
}

// ---- trace ring ---------------------------------------------------------

TEST(ObsTrace, RingOverwritesOldestAndKeepsNewest)
{
    obs::Tracer t;
    t.enable(4);
    for (std::uint32_t i = 1; i <= 6; ++i) {
        t.record(i, obs::Hop::NicRx, static_cast<std::int64_t>(i) * 10, "rx", i);
    }
    EXPECT_EQ(t.recorded(), 6u);
    EXPECT_EQ(t.capacity(), 4u);

    // 1 and 2 were overwritten; 3..6 survive, oldest first.
    EXPECT_TRUE(t.events_for(1).empty());
    EXPECT_TRUE(t.events_for(2).empty());
    const auto all = t.all();
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(all.front().packet_id, 3u);
    EXPECT_EQ(all.back().packet_id, 6u);

    EXPECT_NE(t.dump(2).find("no events"), std::string::npos);
    EXPECT_NE(t.dump(5).find("nic-rx"), std::string::npos);
}

TEST(ObsTrace, DisabledTracerRecordsNothing)
{
    obs::Tracer t;
    t.record(1, obs::Hop::Tx, 0, "tx");
    EXPECT_EQ(t.recorded(), 0u);
    t.enable(8);
    t.record(0, obs::Hop::Tx, 0, "tx"); // id 0 = untraced
    EXPECT_EQ(t.recorded(), 0u);
    t.record(1, obs::Hop::Tx, 0, "tx");
    EXPECT_EQ(t.recorded(), 1u);
    t.disable();
    t.record(2, obs::Hop::Tx, 0, "tx");
    EXPECT_EQ(t.recorded(), 1u);
}

TEST(ObsTrace, DumpGroupsByDomain)
{
    obs::Tracer t;
    t.enable(16);
    t.set_domain("netdev");
    t.record(7, obs::Hop::Emc, 100, "miss");
    t.set_domain("kernel");
    t.record(7, obs::Hop::KernelFlow, 120, "hit", 2);
    const std::string dump = t.dump(7);
    EXPECT_NE(dump.find("[netdev]"), std::string::npos);
    EXPECT_NE(dump.find("[kernel]"), std::string::npos);
    EXPECT_NE(dump.find("emc"), std::string::npos);
    EXPECT_NE(dump.find("kernel-flow"), std::string::npos);
}

// ---- appctl on all three providers -------------------------------------

const std::vector<std::string> kRequiredCommands = {
    "coverage/show",    "memory/show",
    "shards/show",
    "latency/show",     "dpif-netdev/pmd-stats-show",
    "dpctl/dump-flows", "conntrack/show",
    "xsk/ring-stats",   "dpif-netdev/pmd-rxq-show",
    "dpif-netdev/pmd-rebalance",
    "pmd/perf-show",    "pmd/perf-log",
};

void expect_command_surface(obs::Appctl& appctl, const char* provider)
{
    for (const auto& cmd : kRequiredCommands) {
        ASSERT_TRUE(appctl.has(cmd)) << provider << " missing " << cmd;
        // Every command renders as text and as JSON that round-trips
        // through the obs JSON reader.
        const std::string text = appctl.run(cmd, {}, obs::Appctl::Format::Text);
        const std::string json = appctl.run(cmd, {}, obs::Appctl::Format::Json);
        EXPECT_TRUE(obs::json_parse(json).has_value())
            << provider << " " << cmd << " produced unparseable JSON: " << json;
        (void)text;
    }
    // Consistent shapes regardless of provider.
    const obs::Value stats = appctl.run_value("dpif-netdev/pmd-stats-show");
    ASSERT_NE(stats.find("datapath"), nullptr) << provider;
    ASSERT_NE(stats.find("stats"), nullptr) << provider;
    ASSERT_NE(stats.find("pmds"), nullptr) << provider;
    EXPECT_NE(stats.find("stats")->find("hits"), nullptr) << provider;
    const obs::Value rings = appctl.run_value("xsk/ring-stats");
    ASSERT_NE(rings.find("rings"), nullptr) << provider;
    EXPECT_TRUE(rings.find("rings")->is_array()) << provider;
    const obs::Value flows = appctl.run_value("dpctl/dump-flows");
    ASSERT_NE(flows.find("flow_count"), nullptr) << provider;
    const obs::Value ct = appctl.run_value("conntrack/show");
    ASSERT_NE(ct.find("count"), nullptr) << provider;
    // latency/show is an object keyed provider -> tier on every dpif.
    EXPECT_TRUE(appctl.run_value("latency/show").is_object()) << provider;
    const obs::Value rxq = appctl.run_value("dpif-netdev/pmd-rxq-show");
    ASSERT_NE(rxq.find("datapath"), nullptr) << provider;
    ASSERT_NE(rxq.find("pmds"), nullptr) << provider;
    EXPECT_TRUE(rxq.find("pmds")->is_array()) << provider;
    const obs::Value reb = appctl.run_value("dpif-netdev/pmd-rebalance");
    ASSERT_NE(reb.find("rebalanced"), nullptr) << provider;
    ASSERT_NE(reb.find("detail"), nullptr) << provider;
    // The profiler commands share one shape on every provider:
    // {datapath, pmds: {name -> row}}.
    const obs::Value perf = appctl.run_value("pmd/perf-show");
    ASSERT_NE(perf.find("datapath"), nullptr) << provider;
    ASSERT_NE(perf.find("pmds"), nullptr) << provider;
    EXPECT_TRUE(perf.find("pmds")->is_object()) << provider;
    const obs::Value plog = appctl.run_value("pmd/perf-log");
    ASSERT_NE(plog.find("datapath"), nullptr) << provider;
    ASSERT_NE(plog.find("pmds"), nullptr) << provider;
    EXPECT_TRUE(plog.find("pmds")->is_object()) << provider;
}

TEST(ObsAppctl, AllThreeProvidersAnswerTheSameCommands)
{
    {
        kern::Kernel host;
        auto& nic = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
        auto dpif = std::make_unique<ovs::DpifNetdev>(host);
        dpif->add_port(std::make_unique<ovs::NetdevAfxdp>(nic));
        ovs::VSwitch vs(std::move(dpif));
        expect_command_surface(vs.appctl(), "netdev");
        // The AF_XDP port must show up in xsk/ring-stats.
        const obs::Value rings = vs.appctl().run_value("xsk/ring-stats");
        ASSERT_EQ(rings.find("rings")->items().size(), 1u);
        EXPECT_EQ(rings.find("rings")->items()[0].find("dev")->as_string(), "eth0");
    }
    {
        kern::Kernel host;
        kern::OvsKernelDatapath dp(host);
        ovs::VSwitch vs(std::make_unique<ovs::DpifKernel>(dp));
        expect_command_surface(vs.appctl(), "kernel");
        EXPECT_TRUE(vs.appctl().run_value("xsk/ring-stats").find("rings")->items().empty());
    }
    {
        kern::Kernel host;
        ovs::VSwitch vs(std::make_unique<ovs::DpifEbpf>(host));
        expect_command_surface(vs.appctl(), "ebpf");
        EXPECT_TRUE(vs.appctl().run_value("xsk/ring-stats").find("rings")->items().empty());
    }
}

TEST(ObsAppctl, KernelPmdStatsGoldenText)
{
    kern::Kernel host;
    kern::OvsKernelDatapath dp(host);
    ovs::VSwitch vs(std::make_unique<ovs::DpifKernel>(dp));
    EXPECT_EQ(vs.appctl().run("dpif-netdev/pmd-stats-show"),
              "datapath: system\n"
              "stats:\n"
              "  hits: 0\n"
              "  misses: 0\n"
              "  lost: 0\n"
              "pmds:\n");
}

// conntrack/show must render the exact same text — NAT columns
// included — no matter which provider answers it. The netdev provider
// reads its userspace tracker, the kernel and eBPF providers read the
// host kernel's tracker; identical traffic must yield byte-identical
// output on all three.
TEST(ObsAppctl, ConntrackShowNatGoldenTextIdenticalAcrossProviders)
{
    // One SNAT'd connection (203.0.113.9, first port of the range) plus
    // its de-NATed reply, driven straight through each tracker.
    const auto drive = [](auto& tracker) {
        sim::ExecContext ctx{"test", sim::CpuClass::User};
        kern::CtSpec spec;
        spec.zone = 3;
        spec.commit = true;
        spec.set_mark = true;
        spec.mark = 7;
        spec.nat = kern::NatSpec::src(net::ipv4(203, 0, 113, 9), 40000, 40010);

        net::TcpSpec syn;
        syn.src_ip = net::ipv4(10, 0, 0, 1);
        syn.dst_ip = net::ipv4(10, 0, 0, 2);
        syn.src_port = 1000;
        syn.dst_port = 80;
        syn.flags = net::kTcpSyn;
        net::Packet p1 = net::build_tcp(syn);
        tracker.process(p1, net::parse_flow(p1), spec, ctx);

        net::TcpSpec rep;
        rep.src_ip = net::ipv4(10, 0, 0, 2);
        rep.dst_ip = net::ipv4(203, 0, 113, 9);
        rep.src_port = 80;
        rep.dst_port = 40000;
        rep.flags = net::kTcpSyn | net::kTcpAck;
        net::Packet p2 = net::build_tcp(rep);
        kern::CtSpec plain;
        plain.zone = 3;
        tracker.process(p2, net::parse_flow(p2), plain, ctx);
    };

    const std::string golden = "count: 1\n"
                               "entries:\n"
                               "  -\n"
                               "    src: 10.0.0.1\n"
                               "    dst: 10.0.0.2\n"
                               "    sport: 1000\n"
                               "    dport: 80\n"
                               "    proto: 6\n"
                               "    zone: 3\n"
                               "    confirmed: true\n"
                               "    seen_reply: true\n"
                               "    mark: 7\n"
                               "    nat: true\n"
                               "    reply_src: 10.0.0.2\n"
                               "    reply_dst: 203.0.113.9\n"
                               "    reply_sport: 80\n"
                               "    reply_dport: 40000\n"
                               "    packets: 2\n";

    {
        kern::Kernel host;
        auto& nic = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
        auto dpif = std::make_unique<ovs::DpifNetdev>(host);
        dpif->add_port(std::make_unique<ovs::NetdevAfxdp>(nic));
        ovs::DpifNetdev* raw = dpif.get();
        ovs::VSwitch vs(std::move(dpif));
        drive(raw->ct());
        EXPECT_EQ(vs.appctl().run("conntrack/show"), golden) << "netdev";
    }
    {
        kern::Kernel host;
        kern::OvsKernelDatapath dp(host);
        ovs::VSwitch vs(std::make_unique<ovs::DpifKernel>(dp));
        drive(host.conntrack());
        EXPECT_EQ(vs.appctl().run("conntrack/show"), golden) << "kernel";
    }
    {
        kern::Kernel host;
        ovs::VSwitch vs(std::make_unique<ovs::DpifEbpf>(host));
        drive(host.conntrack());
        EXPECT_EQ(vs.appctl().run("conntrack/show"), golden) << "ebpf";
    }
}

TEST(ObsAppctl, CoverageShowReflectsCounters)
{
    obs::Appctl appctl;
    obs::coverage_inc(obs::coverage_id("test_obs.appctl_cov"), 5);
    const obs::Value v = appctl.run_value("coverage/show");
    ASSERT_NE(v.find("test_obs.appctl_cov"), nullptr);
    EXPECT_GE(v.find("test_obs.appctl_cov")->as_uint(), 5u);

    const std::string json = appctl.run("coverage/show", {}, obs::Appctl::Format::Json);
    const auto parsed = obs::json_parse(json);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_GE(parsed->find("test_obs.appctl_cov")->as_uint(), 5u);
}

TEST(ObsAppctl, UnknownCommandThrows)
{
    obs::Appctl appctl;
    EXPECT_THROW((void)appctl.run_value("no/such-command"), std::invalid_argument);
}

// ---- metrics exporter ---------------------------------------------------

TEST(ObsMetrics, DottedPathsAndSchema)
{
    obs::metrics_reset();
    obs::metrics_set("t.a.b", obs::Value(std::uint64_t{42}));
    obs::metrics_set("t.a.c", obs::Value("x"));
    ASSERT_TRUE(obs::metrics_get("t.a.b").has_value());
    EXPECT_EQ(obs::metrics_get("t.a.b")->as_uint(), 42u);

    const auto doc = obs::json_parse(obs::metrics_json());
    ASSERT_TRUE(doc.has_value());
    ASSERT_NE(doc->find("schema"), nullptr);
    EXPECT_EQ(doc->find("schema")->as_string(), obs::kMetricsSchema);
    EXPECT_EQ(doc->find("schema")->as_string(), "ovsx-obs-v5");
    ASSERT_NE(doc->find("coverage"), nullptr);
    ASSERT_NE(doc->find("metrics"), nullptr);
    // v2 added the histograms and windows sections.
    ASSERT_NE(doc->find("histograms"), nullptr);
    EXPECT_TRUE(doc->find("histograms")->is_object());
    ASSERT_NE(doc->find("windows"), nullptr);
    EXPECT_TRUE(doc->find("windows")->is_object());
    // v3 adds the INT section: observed fabric paths with per-hop stats.
    ASSERT_NE(doc->find("int"), nullptr);
    EXPECT_TRUE(doc->find("int")->is_object());
    ASSERT_NE(doc->find("int")->find("paths"), nullptr);
    EXPECT_TRUE(doc->find("int")->find("paths")->is_object());
    // v4 adds the perf section: profiler totals plus live PMD rows.
    ASSERT_NE(doc->find("perf"), nullptr);
    EXPECT_TRUE(doc->find("perf")->is_object());
    ASSERT_NE(doc->find("perf")->find("iterations"), nullptr);
    ASSERT_NE(doc->find("perf")->find("packets"), nullptr);
    ASSERT_NE(doc->find("perf")->find("suspicious"), nullptr);
    ASSERT_NE(doc->find("perf")->find("pmds"), nullptr);
    EXPECT_TRUE(doc->find("perf")->find("pmds")->is_object());
    EXPECT_EQ(doc->find("metrics")->find("t")->find("a")->find("b")->as_uint(), 42u);
    obs::metrics_reset();
}

// ---- latency histograms -------------------------------------------------

TEST(ObsLatency, PercentileRankIsSharedAndClampsEdges)
{
    // THE nearest-rank rule, shared with sim::Histogram.
    EXPECT_EQ(obs::percentile_rank(10, 50), 5u);
    EXPECT_EQ(obs::percentile_rank(10, 90), 9u);
    EXPECT_EQ(obs::percentile_rank(10, 99), 10u);
    EXPECT_EQ(obs::percentile_rank(10, 0), 1u);
    EXPECT_EQ(obs::percentile_rank(10, -7), 1u);
    EXPECT_EQ(obs::percentile_rank(10, 100), 10u);
    EXPECT_EQ(obs::percentile_rank(10, 250), 10u);
    EXPECT_EQ(obs::percentile_rank(1, 50), 1u);
}

TEST(ObsLatency, HistogramLinearRegionIsExact)
{
    obs::LatencyHistogram h;
    EXPECT_EQ(h.percentile(50), 0); // empty -> 0
    for (std::int64_t v = 0; v < 64; ++v) h.record(v);
    EXPECT_EQ(h.count(), 64u);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 63);
    // Below 2^6 every bucket is 1 ns wide: percentiles are exact.
    EXPECT_EQ(h.percentile(50), 31);
    EXPECT_EQ(h.percentile(100), 63);
    h.record(-5); // negative deltas clamp to 0
    EXPECT_EQ(h.min(), 0);
}

TEST(ObsLatency, HistogramLogRegionBoundsRelativeError)
{
    obs::LatencyHistogram h;
    const std::int64_t v = 1'000'000;
    for (int i = 0; i < 100; ++i) h.record(v);
    const std::int64_t p99 = h.percentile(99);
    // Log-linear buckets with 16 sub-buckets: <= 1/16 relative error,
    // and the result clamps into the observed [min, max].
    EXPECT_GE(p99, v);
    EXPECT_LE(p99, v + v / 16);
    EXPECT_EQ(h.percentile(100), h.max());
    EXPECT_EQ(h.max(), v);
}

TEST(ObsLatency, MergeMatchesCombinedRecording)
{
    obs::LatencyHistogram a, b, combined;
    for (std::int64_t v : {10, 20, 5000, 40}) {
        a.record(v);
        combined.record(v);
    }
    for (std::int64_t v : {100, 900'000, 7}) {
        b.record(v);
        combined.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.min(), combined.min());
    EXPECT_EQ(a.max(), combined.max());
    for (double p : {50.0, 90.0, 99.0}) {
        EXPECT_EQ(a.percentile(p), combined.percentile(p)) << p;
    }
}

TEST(ObsLatency, MergeWithEmptyOperandIsIdentityBothWays)
{
    obs::LatencyHistogram a, empty;
    for (std::int64_t v : {3, 70, 12'000}) a.record(v);
    const std::int64_t p50_before = a.percentile(50);

    // Merging an empty operand changes nothing — not even min/max.
    a.merge(empty);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.min(), 3);
    EXPECT_EQ(a.max(), 12'000);
    EXPECT_EQ(a.percentile(50), p50_before);

    // Merging INTO an empty histogram adopts the operand wholesale.
    obs::LatencyHistogram fresh;
    fresh.merge(a);
    EXPECT_EQ(fresh.count(), 3u);
    EXPECT_EQ(fresh.min(), 3);
    EXPECT_EQ(fresh.max(), 12'000);
    for (double p : {50.0, 90.0, 99.0}) {
        EXPECT_EQ(fresh.percentile(p), a.percentile(p)) << p;
    }

    // Empty merged with empty stays empty.
    obs::LatencyHistogram e2;
    e2.merge(empty);
    EXPECT_EQ(e2.count(), 0u);
    EXPECT_EQ(e2.percentile(50), 0);
}

TEST(ObsLatency, SingleBucketPercentilesAllCollapse)
{
    obs::LatencyHistogram h;
    for (int i = 0; i < 1000; ++i) h.record(37);
    EXPECT_EQ(h.min(), 37);
    EXPECT_EQ(h.max(), 37);
    // Every percentile — including the p<=0 and p>=100 clamps — lands
    // in the one occupied bucket, clamped to the exact value.
    for (double p : {-5.0, 0.0, 1.0, 50.0, 99.0, 100.0, 400.0}) {
        EXPECT_EQ(h.percentile(p), 37) << p;
    }
    EXPECT_DOUBLE_EQ(h.mean(), 37.0);
}

TEST(ObsLatency, SaturatingMaxBucketClampsNotOverflows)
{
    obs::LatencyHistogram h;
    const std::int64_t huge = std::int64_t{1} << 62; // way past 2^48 ns
    h.record(huge);
    h.record(huge);
    h.record(5);
    // Both huge samples land in the last bucket — bucket_index must
    // not run off the array — and percentiles report that bucket's
    // upper edge (2^48 - 1, the documented saturation point), while
    // min/max keep the exact values.
    const std::int64_t saturated =
        (std::int64_t{1} << obs::LatencyHistogram::kMaxBits) - 1;
    EXPECT_EQ(obs::LatencyHistogram::bucket_index(static_cast<std::uint64_t>(huge)),
              obs::LatencyHistogram::kBuckets - 1);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.max(), huge);
    EXPECT_EQ(h.percentile(99), saturated);
    EXPECT_EQ(h.percentile(100), saturated);
    EXPECT_EQ(h.percentile(0), 5);

    // Merging two saturated histograms stays saturated, not wrapped.
    obs::LatencyHistogram other;
    other.record(huge);
    h.merge(other);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.max(), huge);
    EXPECT_EQ(h.percentile(90), saturated);
}

TEST(ObsLatency, SpanFeedRecordsDeltasAndSkipsMisses)
{
    obs::latency_reset();
    // A journey: emc miss at t=100 (probed, not resolved), megaflow hit
    // at t=130, tx at t=150. The miss must not record OR advance the
    // base timestamp: the megaflow delta subsumes the probing cost.
    obs::latency_feed_span(9, "testdom", obs::Hop::Emc, 100, "miss");
    obs::latency_feed_span(9, "testdom", obs::Hop::Megaflow, 130, "hit");
    obs::latency_feed_span(9, "testdom", obs::Hop::Tx, 150, "");
    const auto* emc = obs::latency_histogram("testdom", obs::Hop::Emc);
    ASSERT_NE(emc, nullptr); // the domain is interned...
    EXPECT_EQ(emc->count(), 0u); // ...but the missed tier recorded nothing
    const auto* mf = obs::latency_histogram("testdom", obs::Hop::Megaflow);
    ASSERT_NE(mf, nullptr);
    EXPECT_EQ(mf->count(), 1u);
    EXPECT_EQ(mf->max(), 130);
    const auto* tx = obs::latency_histogram("testdom", obs::Hop::Tx);
    ASSERT_NE(tx, nullptr);
    EXPECT_EQ(tx->max(), 20);
    // latency/show renders the fed tiers under the provider key.
    const obs::Value shown = obs::latency_show();
    const auto* dom = shown.find("testdom");
    ASSERT_NE(dom, nullptr);
    ASSERT_NE(dom->find("megaflow"), nullptr);
    EXPECT_EQ(dom->find("megaflow")->find("count")->as_uint(), 1u);
    EXPECT_EQ(dom->find("emc"), nullptr); // zero-count tiers are omitted
    obs::latency_reset();
}

TEST(ObsLatency, NewJourneyOnIdDomainOrTimeRegression)
{
    obs::latency_reset();
    obs::latency_feed_span(11, "testdom", obs::Hop::Emc, 100, "hit");
    // Same slot, different packet id: base restarts at 0.
    obs::latency_feed_span(11 + 2048, "testdom", obs::Hop::Emc, 500, "hit");
    // Same id, earlier timestamp (provider switch): new journey too.
    obs::latency_feed_span(11, "testdom", obs::Hop::Emc, 40, "hit");
    const auto* emc = obs::latency_histogram("testdom", obs::Hop::Emc);
    ASSERT_NE(emc, nullptr);
    EXPECT_EQ(emc->count(), 3u);
    EXPECT_EQ(emc->max(), 500); // not 400: the collision reset the base
    EXPECT_EQ(emc->min(), 40);
    obs::latency_reset();
}

// ---- windowed rates -----------------------------------------------------

TEST(ObsWindow, RatePrimesThenMeasures)
{
    obs::WindowedRate r;
    r.sample(1'000'000'000, 500); // priming: no window yet
    EXPECT_EQ(r.windows(), 0u);
    EXPECT_EQ(r.rate_per_sec(), 0.0);
    r.sample(2'000'000'000, 1500); // +1000 over 1 s
    EXPECT_EQ(r.windows(), 1u);
    EXPECT_EQ(r.last_delta(), 1000u);
    EXPECT_DOUBLE_EQ(r.rate_per_sec(), 1000.0);
    EXPECT_DOUBLE_EQ(r.ewma_per_sec(), 1000.0); // first window sets EWMA
}

TEST(ObsWindow, CounterResetMidWindowCountsNewValueOnly)
{
    obs::WindowedRate r;
    r.sample(0, 900);
    r.sample(1'000'000'000, 1000); // +100
    // Counter reset (process restart, coverage_reset): cumulative drops.
    r.sample(2'000'000'000, 40);
    EXPECT_EQ(r.windows(), 2u);
    EXPECT_EQ(r.last_delta(), 40u); // the whole new value, not a huge wrap
    EXPECT_DOUBLE_EQ(r.rate_per_sec(), 40.0);
}

TEST(ObsWindow, ZeroLengthWindowFoldsDeltaIntoNext)
{
    obs::WindowedRate r;
    r.sample(0, 0);
    r.sample(1'000'000'000, 100);
    EXPECT_EQ(r.windows(), 1u);
    r.sample(1'000'000'000, 160); // zero-length: +60 carried, no window
    EXPECT_EQ(r.windows(), 1u);
    EXPECT_EQ(r.last_delta(), 100u);
    r.sample(2'000'000'000, 200); // +40 plus the 60 carry over 1 s
    EXPECT_EQ(r.windows(), 2u);
    EXPECT_EQ(r.last_delta(), 100u);
    EXPECT_DOUBLE_EQ(r.rate_per_sec(), 100.0);
}

TEST(ObsWindow, EwmaConvergesToSteadyRate)
{
    obs::WindowedRate r(0.4);
    std::uint64_t cum = 0;
    std::int64_t now = 0;
    r.sample(now, cum);
    // One hot window, then a long steady run at 100/s: the EWMA must
    // approach 100 geometrically (each step closes the gap by alpha).
    now += 1'000'000'000;
    cum += 10'000;
    r.sample(now, cum);
    double prev_gap = 1e18;
    for (int i = 0; i < 30; ++i) {
        now += 1'000'000'000;
        cum += 100;
        r.sample(now, cum);
        const double gap = r.ewma_per_sec() - 100.0;
        EXPECT_GE(gap, 0.0);
        EXPECT_LT(gap, prev_gap);
        prev_gap = gap;
    }
    EXPECT_NEAR(r.ewma_per_sec(), 100.0, 1.0);
    EXPECT_DOUBLE_EQ(r.rate_per_sec(), 100.0);
}

TEST(ObsWindow, TickPrimesThenFiresOnIntervalCrossings)
{
    obs::Window w(1000);
    EXPECT_TRUE(w.tick(5)); // priming tick: feed baselines now
    EXPECT_EQ(w.closes(), 0u);
    w.feed("s", 10);
    EXPECT_FALSE(w.tick(900)); // not a full interval since the prime
    EXPECT_TRUE(w.tick(1005));
    EXPECT_EQ(w.closes(), 1u);
    w.feed("s", 30);
    const auto* s = w.series("s");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->last_delta(), 20u);
    EXPECT_EQ(w.series("never-fed"), nullptr);

    // Disabled window (interval 0) never ticks.
    obs::Window off;
    EXPECT_FALSE(off.tick(1'000'000));
}

TEST(ObsWindow, TrackedCoverageSampledAtCloses)
{
    const auto id = obs::coverage_id("test_obs.windowed");
    obs::Window w(1000);
    w.track_coverage("test_obs.windowed");
    w.track_coverage("test_obs.window_never_registered"); // reads as 0
    ASSERT_TRUE(w.tick(0));
    obs::coverage_inc(id, 50);
    ASSERT_TRUE(w.tick(1000));
    const auto* s = w.series("test_obs.windowed");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->last_delta(), 50u);
    // track_coverage must not intern data-derived names.
    EXPECT_FALSE(obs::coverage_find("test_obs.window_never_registered").has_value());

    const obs::Value v = w.to_value();
    EXPECT_EQ(v.find("interval_ns")->as_uint(), 1000u);
    ASSERT_NE(v.find("series"), nullptr);
    ASSERT_NE(v.find("series")->find("test_obs.windowed"), nullptr);

    obs::windows_publish("test_obs", w.to_value());
    const obs::Value snap = obs::windows_snapshot();
    ASSERT_NE(snap.find("test_obs"), nullptr);
}

TEST(ObsWindow, EwmaGlidesAcrossCounterReset)
{
    obs::WindowedRate r(0.4);
    std::int64_t now = 0;
    std::uint64_t cum = 0;
    r.sample(now, cum);
    for (int i = 0; i < 20; ++i) {
        now += 1'000'000'000;
        cum += 100;
        r.sample(now, cum);
    }
    EXPECT_NEAR(r.ewma_per_sec(), 100.0, 1.0);
    const double before = r.ewma_per_sec();

    // Counter reset (process restart): cumulative restarts at 40. The
    // delta is the new absolute value — not a wrapped negative — and
    // the EWMA takes exactly one alpha step toward the new rate rather
    // than spiking or going negative.
    now += 1'000'000'000;
    r.sample(now, 40);
    EXPECT_EQ(r.last_delta(), 40u);
    EXPECT_NEAR(r.ewma_per_sec(), before + 0.4 * (40.0 - before), 1e-9);
    EXPECT_GT(r.ewma_per_sec(), 40.0);
    EXPECT_LT(r.ewma_per_sec(), before);

    // Steady at the post-reset rate: converges to 40 like any regime
    // change, with no memory of the reset itself.
    cum = 40;
    for (int i = 0; i < 30; ++i) {
        now += 1'000'000'000;
        cum += 40;
        r.sample(now, cum);
    }
    EXPECT_NEAR(r.ewma_per_sec(), 40.0, 1.0);
    EXPECT_DOUBLE_EQ(r.rate_per_sec(), 40.0);
}

// ---- pmd cycle profiler -------------------------------------------------

TEST(ObsPerf, VirtualTscAttributesCyclesToStagesAndClasses)
{
    sim::ExecContext ctx("pmd", sim::CpuClass::User);
    ctx.attach_perf("test_obs.perf_tsc");
    obs::PmdPerf* perf = ctx.perf();
    ASSERT_NE(perf, nullptr);

    perf->begin_iteration();
    {
        obs::PerfStageScope rx(perf, obs::PerfStage::RxPoll);
        ctx.charge(sim::CpuClass::User, 100);
        {
            obs::PerfStageScope emc(perf, obs::PerfStage::EmcLookup);
            ctx.charge(sim::CpuClass::User, 40);
        }
        // Scope restored: this lands back in rx-poll.
        ctx.charge(sim::CpuClass::Softirq, 10);
    }
    ctx.charge(sim::CpuClass::User, 7); // outside any scope -> idle
    perf->end_iteration(3);

    EXPECT_EQ(perf->tsc(), 157);
    EXPECT_EQ(perf->stage_cycles(obs::PerfStage::RxPoll), 110);
    EXPECT_EQ(perf->stage_cycles(obs::PerfStage::EmcLookup), 40);
    EXPECT_EQ(perf->stage_cycles(obs::PerfStage::Idle), 7);
    EXPECT_EQ(perf->iterations(), 1u);
    EXPECT_EQ(perf->packets(), 3u);
    // The per-class cycle split mirrors the context's busy() exactly —
    // it is the same charge stream, which is what lets Table 4 derive
    // its CPU rows from the profiler.
    EXPECT_EQ(perf->class_cycles(static_cast<std::size_t>(sim::CpuClass::User)),
              ctx.busy(sim::CpuClass::User));
    EXPECT_EQ(perf->class_cycles(static_cast<std::size_t>(sim::CpuClass::Softirq)),
              ctx.busy(sim::CpuClass::Softirq));
}

TEST(ObsPerf, SeededSuspiciousIterationDumpsFlightRecorderDeterministically)
{
    const auto drive = [](sim::ExecContext& ctx) {
        obs::PmdPerf* perf = ctx.perf();
        ASSERT_NE(perf, nullptr);
        // Steady baseline past the warmup: 100 cycles over 4 packets
        // per iteration, EWMA cycles/packet settles at 25.
        for (int i = 0; i < 12; ++i) {
            perf->begin_iteration();
            {
                obs::PerfStageScope s(perf, obs::PerfStage::EmcLookup);
                ctx.charge(sim::CpuClass::User, 100);
            }
            perf->end_iteration(4);
        }
        EXPECT_EQ(perf->suspicious(), 0u);
        EXPECT_TRUE(perf->last_dump().empty());
        // One seeded outlier: 1000 cycles for a single packet, 40x the
        // EWMA — well past the 4x suspicion threshold.
        perf->begin_iteration();
        {
            obs::PerfStageScope s(perf, obs::PerfStage::Upcall);
            ctx.charge(sim::CpuClass::User, 1000);
        }
        perf->note_upcall();
        perf->end_iteration(1);
    };

    sim::ExecContext a("pmd-a", sim::CpuClass::User);
    a.attach_perf("test_obs.flight_a");
    drive(a);
    const obs::PmdPerf* pa = a.perf();
    EXPECT_EQ(pa->suspicious(), 1u);
    const auto& dump = pa->last_dump();
    ASSERT_EQ(dump.size(), 13u); // all iterations fit in the 32-deep ring
    EXPECT_TRUE(dump.back().suspicious);
    EXPECT_EQ(dump.back().iter, 13u);
    EXPECT_EQ(dump.back().packets, 1u);
    EXPECT_EQ(dump.back().upcalls, 1u);
    EXPECT_EQ(dump.back().cycles, 1000);
    EXPECT_EQ(dump.back().stage_cycles[static_cast<std::size_t>(obs::PerfStage::Upcall)],
              1000);
    EXPECT_FALSE(dump.front().suspicious);

    // pmd/perf-log renders the dump with the armed thresholds.
    const obs::Value log = pa->log_value();
    ASSERT_NE(log.find("last_dump"), nullptr);
    EXPECT_EQ(log.find("last_dump")->items().size(), 13u);

    // The virtual TSC makes the whole dump deterministic: an identical
    // run produces record-for-record identical output.
    sim::ExecContext b("pmd-b", sim::CpuClass::User);
    b.attach_perf("test_obs.flight_b");
    drive(b);
    const auto& dump2 = b.perf()->last_dump();
    ASSERT_EQ(dump2.size(), dump.size());
    for (std::size_t i = 0; i < dump.size(); ++i) {
        EXPECT_EQ(dump[i].iter, dump2[i].iter) << i;
        EXPECT_EQ(dump[i].tsc_start, dump2[i].tsc_start) << i;
        EXPECT_EQ(dump[i].cycles, dump2[i].cycles) << i;
        EXPECT_EQ(dump[i].packets, dump2[i].packets) << i;
        EXPECT_EQ(dump[i].upcalls, dump2[i].upcalls) << i;
        EXPECT_EQ(dump[i].suspicious, dump2[i].suspicious) << i;
    }
}

TEST(ObsPerf, DisabledRegistryAttachesNoProfiler)
{
    obs::perf_set_enabled(false);
    sim::ExecContext ctx("pmd-off", sim::CpuClass::User);
    ctx.attach_perf("test_obs.perf_off");
    EXPECT_EQ(ctx.perf(), nullptr);
    obs::perf_set_enabled(true);
    EXPECT_TRUE(obs::perf_enabled());
}

// ---- determinism --------------------------------------------------------

TEST(ObsDeterminism, IdenticalSeededRunsProduceIdenticalCoverage)
{
    gen::FuzzConfig cfg;
    cfg.use_malformed = false;

    obs::coverage_reset();
    ASSERT_TRUE(gen::fuzz_run(42, cfg, 60).ok());
    const auto snap1 = obs::coverage_snapshot();

    obs::coverage_reset();
    ASSERT_TRUE(gen::fuzz_run(42, cfg, 60).ok());
    const auto snap2 = obs::coverage_snapshot();

    EXPECT_EQ(snap1, snap2);
    EXPECT_FALSE(snap1.empty());
}

// ---- forced divergence prints per-provider traces -----------------------

TEST(ObsTraceIntegration, ForcedMismatchDumpsPerProviderTrace)
{
    gen::DiffRuleset ruleset;
    gen::DiffRule forward;
    forward.priority = 1;
    forward.mask.bits.in_port = 0xffffffff;
    forward.match.in_port = 1;
    forward.actions.push_back(kern::OdpAction::output(2));
    ruleset.rules.push_back(forward);

    gen::DifferentialHarness harness(ruleset, {.n_ports = 2, .compare_ebpf = false});
    // Mis-translate the kernel datapath's actions: output to the wrong
    // port. Every packet diverges.
    harness.set_fault(gen::DpKind::Kernel, [](kern::OdpActions& actions) {
        for (auto& a : actions) {
            if (a.type == kern::OdpAction::Type::Output) a.port = 1;
        }
    });

    net::UdpSpec spec;
    spec.src_mac = net::MacAddr::from_id(1);
    spec.dst_mac = net::MacAddr::from_id(2);
    spec.src_ip = 0x0a000001;
    spec.dst_ip = 0x0a000002;
    spec.src_port = 1111;
    spec.dst_port = 2222;
    std::vector<gen::DiffPacket> seq;
    seq.push_back({0, net::build_udp(spec)});

    const gen::DiffReport report = harness.run(seq);
    ASSERT_FALSE(report.ok());
    ASSERT_FALSE(report.unexplained.empty());
    const gen::Divergence& d = report.unexplained.front();
    // The divergence carries the packet's journey through BOTH
    // providers, grouped by domain, and the summary prints it.
    EXPECT_NE(d.trace.find("[netdev]"), std::string::npos) << d.trace;
    EXPECT_NE(d.trace.find("[kernel]"), std::string::npos) << d.trace;
    EXPECT_NE(d.trace.find("nic-rx"), std::string::npos) << d.trace;
    EXPECT_NE(d.trace.find("tx"), std::string::npos) << d.trace;
    EXPECT_NE(report.summary().find("[kernel]"), std::string::npos);
    // The tracer was harness-enabled and restored afterwards.
    EXPECT_FALSE(obs::tracer().enabled());
}

} // namespace
} // namespace ovsx
