#include <gtest/gtest.h>

#include "ebpf/programs.h"
#include "kern/kernel.h"
#include "kern/nic.h"
#include "net/builder.h"
#include "net/flow.h"
#include "net/headers.h"
#include "net/tunnel.h"
#include "kern/odp.h"

namespace ovsx {
namespace {

using net::ipv4;

// ---- NIC interrupt vs polling mode -------------------------------------

TEST(NicModes, InterruptModeCostsMore)
{
    kern::Kernel host;
    auto& polled = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    auto& irq = host.add_device<kern::PhysicalDevice>("eth1", net::MacAddr::from_id(2));
    irq.set_interrupt_mode(true);
    polled.attach_xdp(ebpf::xdp_drop_all());
    irq.attach_xdp(ebpf::xdp_drop_all());

    net::UdpSpec spec;
    spec.src_ip = ipv4(1, 1, 1, 1);
    spec.dst_ip = ipv4(2, 2, 2, 2);
    for (int i = 0; i < 64; ++i) {
        polled.rx_from_wire(net::build_udp(spec));
        irq.rx_from_wire(net::build_udp(spec));
    }
    EXPECT_GT(irq.softirq_ctx(0).total_busy(), polled.softirq_ctx(0).total_busy());
}

// ---- IPv4 fragments --------------------------------------------------------

TEST(Fragments, FirstFragmentKeepsL4LaterFragmentsDoNot)
{
    net::UdpSpec spec;
    spec.src_ip = ipv4(1, 1, 1, 1);
    spec.dst_ip = ipv4(2, 2, 2, 2);
    spec.src_port = 777;
    spec.dst_port = 888;
    net::Packet first = net::build_udp(spec);
    auto* ip = first.header_at<net::Ipv4Header>(14);
    ip->frag_off_be = net::host_to_be16(0x2000); // MF set, offset 0
    net::refresh_ipv4_csum(first, 14);
    auto key = net::parse_flow(first);
    EXPECT_EQ(key.nw_frag, net::kFragAny);
    EXPECT_EQ(key.tp_src, 777); // first fragment still has the header

    net::Packet later = net::build_udp(spec);
    ip = later.header_at<net::Ipv4Header>(14);
    ip->frag_off_be = net::host_to_be16(0x00b9); // offset 185*8
    net::refresh_ipv4_csum(later, 14);
    key = net::parse_flow(later);
    EXPECT_EQ(key.nw_frag, net::kFragAny | net::kFragLater);
    EXPECT_EQ(key.tp_src, 0); // no L4 on later fragments
}

// ---- IPv6 parsing ---------------------------------------------------------------

TEST(Ipv6Parse, BasicTcpOverIpv6)
{
    // Hand-build an IPv6/TCP frame (the builder focuses on v4).
    net::Packet pkt(14 + 40 + 20);
    auto* eth = pkt.header_at<net::EthernetHeader>(0);
    eth->src = net::MacAddr::from_id(1);
    eth->dst = net::MacAddr::from_id(2);
    eth->set_ether_type(net::EtherType::Ipv6);
    auto* ip6 = pkt.header_at<net::Ipv6Header>(14);
    std::memset(static_cast<void*>(ip6), 0, sizeof *ip6);
    ip6->ver_tc_flow_be = net::host_to_be32(0x60000000 | (0xb8 << 20));
    ip6->set_payload_len(20);
    ip6->next_header = 6;
    ip6->hop_limit = 64;
    ip6->src.bytes[0] = 0xfd;
    ip6->src.bytes[15] = 1;
    ip6->dst.bytes[0] = 0xfd;
    ip6->dst.bytes[15] = 2;
    auto* tcp = pkt.header_at<net::TcpHeader>(14 + 40);
    std::memset(tcp, 0, sizeof *tcp);
    tcp->set_src(4444);
    tcp->set_dst(5555);
    tcp->data_off = 5 << 4;
    tcp->flags = net::kTcpSyn;

    const auto key = net::parse_flow(pkt);
    EXPECT_EQ(key.dl_type, 0x86dd);
    EXPECT_EQ(key.nw_proto, 6);
    EXPECT_EQ(key.nw_tos, 0xb8);
    EXPECT_EQ(key.nw_ttl, 64);
    EXPECT_EQ(key.ipv6_src.bytes[0], 0xfd);
    EXPECT_EQ(key.ipv6_dst.bytes[15], 2);
    EXPECT_EQ(key.tp_src, 4444);
    EXPECT_EQ(key.tp_dst, 5555);
    EXPECT_EQ(key.tcp_flags, net::kTcpSyn);
    EXPECT_EQ(key.nw_src, 0u); // the v4 fields stay clear
}

// ---- eBPF builder diagnostics ------------------------------------------------------

TEST(ProgramBuilder, DuplicateLabelThrows)
{
    ebpf::ProgramBuilder b;
    b.label("x").mov_imm(ebpf::R0, 1).exit();
    EXPECT_THROW(b.label("x"), std::invalid_argument);
}

TEST(ProgramBuilder, UnresolvedLabelThrows)
{
    ebpf::ProgramBuilder b;
    b.ja("nowhere").mov_imm(ebpf::R0, 1).exit();
    EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(ProgramBuilder, DisassembleListsEveryInsn)
{
    auto prog = ebpf::xdp_drop_all();
    const std::string dis = prog.disassemble();
    EXPECT_NE(dis.find("movi"), std::string::npos);
    EXPECT_NE(dis.find("exit"), std::string::npos);
    EXPECT_EQ(static_cast<std::size_t>(std::count(dis.begin(), dis.end(), '\n')),
              prog.insns.size());
}

// ---- capture sees both directions ------------------------------------------------

TEST(Capture, TcpdumpSeesStackTrafficButNotXdpConsumedPackets)
{
    // Faithful to real XDP: packets consumed at the hook (dropped,
    // TX'd, redirected) never reach the skb layer, so tcpdump cannot
    // observe them — a real-world debugging gotcha of the design.
    kern::Kernel host;
    auto& nic = host.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    nic.connect_wire([](net::Packet&&) {});
    int rx = 0;
    nic.set_capture([&](const kern::Device&, const net::Packet&, bool is_rx) {
        if (is_rx) ++rx;
    });
    net::UdpSpec spec;
    spec.src_ip = ipv4(1, 1, 1, 1);
    spec.dst_ip = ipv4(2, 2, 2, 2);

    nic.attach_xdp(ebpf::xdp_swap_macs_tx()); // consumes via XDP_TX
    nic.rx_from_wire(net::build_udp(spec));
    EXPECT_EQ(rx, 0); // invisible to tcpdump

    nic.detach_xdp(-1);
    nic.attach_xdp(ebpf::xdp_pass_all()); // up to the stack
    nic.rx_from_wire(net::build_udp(spec));
    EXPECT_EQ(rx, 1); // visible again
}

// ---- XdpVerdict / enum naming smoke ------------------------------------------------

TEST(Naming, EnumToStringsAreStable)
{
    EXPECT_STREQ(kern::to_string(kern::XdpVerdict::RedirectedXsk), "redirect-xsk");
    EXPECT_STREQ(kern::to_string(kern::DeviceKind::Veth), "veth");
    EXPECT_STREQ(net::to_string(net::TunnelType::Geneve), "geneve");
    EXPECT_STREQ(ebpf::to_string(ebpf::XdpAction::Tx), "XDP_TX");
    EXPECT_STREQ(ebpf::to_string(ebpf::MapType::XskMap), "xskmap");
    EXPECT_STREQ(sim::to_string(sim::CpuClass::Softirq), "softirq");
}

// ---- odp action printing -------------------------------------------------------------

TEST(OdpActions, ToStringRoundsUpTheChain)
{
    kern::OdpActions actions;
    kern::CtSpec ct;
    ct.zone = 7;
    ct.commit = true;
    net::TunnelKey tkey;
    tkey.tun_id = 42;
    tkey.ip_dst = ipv4(172, 16, 0, 2);
    actions.push_back(kern::OdpAction::conntrack(ct));
    actions.push_back(kern::OdpAction::recirc(3));
    actions.push_back(kern::OdpAction::set_tunnel(tkey));
    actions.push_back(kern::OdpAction::output(9));
    const std::string s = kern::actions_to_string(actions);
    EXPECT_NE(s.find("ct(zone=7,commit)"), std::string::npos);
    EXPECT_NE(s.find("recirc(3)"), std::string::npos);
    EXPECT_NE(s.find("set_tunnel(id=42"), std::string::npos);
    EXPECT_NE(s.find("output(9)"), std::string::npos);
    EXPECT_EQ(kern::actions_to_string({}), "drop");
}

} // namespace
} // namespace ovsx
