#include <gtest/gtest.h>

#include "ebpf/program.h"
#include "ebpf/vm.h"
#include "net/builder.h"

namespace ovsx::ebpf {
namespace {

net::Packet udp64()
{
    net::UdpSpec spec;
    spec.src_mac = net::MacAddr::from_id(1);
    spec.dst_mac = net::MacAddr::from_id(2);
    spec.src_ip = net::ipv4(10, 0, 0, 1);
    spec.dst_ip = net::ipv4(10, 0, 0, 2);
    spec.src_port = 1000;
    spec.dst_port = 2000;
    return net::build_udp(spec);
}

RunResult run(const Program& prog, net::Packet& pkt)
{
    Vm vm;
    return vm.run_xdp(prog, pkt);
}

TEST(EbpfVm, MovAndExit)
{
    auto prog = ProgramBuilder().mov_imm(R0, 2).exit().build();
    net::Packet pkt = udp64();
    const auto res = run(prog, pkt);
    EXPECT_EQ(res.action, XdpAction::Pass);
    EXPECT_EQ(res.insns, 2u);
    EXPECT_GT(res.cost, 0);
}

TEST(EbpfVm, AluArithmetic)
{
    ProgramBuilder b;
    b.mov_imm(R1, 10)
        .mov_imm(R2, 3)
        .mov_reg(R0, R1)
        .mul_imm(R0, 4)   // 40
        .add_reg(R0, R2)  // 43
        .sub_reg(R0, R2)  // 40
        .rsh_imm(R0, 2)   // 10
        .lsh_imm(R0, 1)   // 20
        .add_imm(R0, -18) // 2
        .exit();
    net::Packet pkt = udp64();
    const auto res = run(b.build(), pkt);
    EXPECT_EQ(res.ret, 2u);
}

TEST(EbpfVm, DivisionByZeroYieldsZero)
{
    auto prog = ProgramBuilder()
                    .mov_imm(R0, 100)
                    .mov_imm(R1, 0)
                    .emit({Op::DivReg, R0, R1, 0, 0})
                    .exit()
                    .build();
    net::Packet pkt = udp64();
    EXPECT_EQ(run(prog, pkt).ret, 0u);
}

TEST(EbpfVm, ByteSwaps)
{
    auto prog = ProgramBuilder().mov_imm(R0, 0x1234).be16(R0).exit().build();
    net::Packet pkt = udp64();
    EXPECT_EQ(run(prog, pkt).ret, 0x3412u);
}

TEST(EbpfVm, PacketLoadReadsWireBytes)
{
    // Load the EtherType (offset 12, 2 bytes) after a bounds check.
    ProgramBuilder b;
    b.mov_reg(R6, R1)
        .ldxdw(R2, R6, 0)
        .ldxdw(R3, R6, 8)
        .mov_reg(R4, R2)
        .add_imm(R4, 14)
        .jgt_reg(R4, R3, "out")
        .ldxh(R0, R2, 12)
        .exit()
        .label("out")
        .mov_imm(R0, 0)
        .exit();
    net::Packet pkt = udp64();
    const auto res = run(b.build(), pkt);
    EXPECT_EQ(res.ret, 0x0008u); // 0x0800 read little-endian
}

TEST(EbpfVm, PacketStoreModifiesPacket)
{
    ProgramBuilder b;
    b.mov_reg(R6, R1)
        .ldxdw(R2, R6, 0)
        .stxb(R2, 0, R6) // overwrite first byte (low byte of an address; just a write test)
        .mov_imm(R0, 1)
        .exit();
    net::Packet pkt = udp64();
    pkt.data()[0] = 0x00;
    run(b.build(), pkt);
    // We can't predict the value, but the action must not be Aborted.
    EXPECT_EQ(run(b.build(), pkt).action, XdpAction::Drop);
}

TEST(EbpfVm, OutOfBoundsPacketAccessAborts)
{
    ProgramBuilder b;
    b.mov_reg(R6, R1)
        .ldxdw(R2, R6, 0)
        .ldxw(R0, R2, 10000) // way past data_end, no bounds check
        .exit();
    net::Packet pkt = udp64();
    const auto res = run(b.build(), pkt);
    EXPECT_EQ(res.action, XdpAction::Aborted);
    EXPECT_FALSE(res.fault.empty());
}

TEST(EbpfVm, StackReadWrite)
{
    ProgramBuilder b;
    b.mov_imm(R1, 0xabcd)
        .stxdw(R10, -8, R1)
        .ldxdw(R0, R10, -8)
        .exit();
    net::Packet pkt = udp64();
    EXPECT_EQ(run(b.build(), pkt).ret, 0xabcdu);
}

TEST(EbpfVm, StackOverflowAborts)
{
    ProgramBuilder b;
    b.mov_imm(R1, 1).stxdw(R10, -520, R1).mov_imm(R0, 2).exit();
    net::Packet pkt = udp64();
    EXPECT_EQ(run(b.build(), pkt).action, XdpAction::Aborted);
}

TEST(EbpfVm, CtxIsReadOnly)
{
    ProgramBuilder b;
    b.mov_reg(R6, R1).mov_imm(R2, 0).stxdw(R6, 0, R2).mov_imm(R0, 2).exit();
    net::Packet pkt = udp64();
    EXPECT_EQ(run(b.build(), pkt).action, XdpAction::Aborted);
}

TEST(EbpfVm, MapLookupHitAndMiss)
{
    auto map = std::make_shared<Map>(MapType::Hash, "t", 4, 8, 16);
    const std::uint32_t key = 7;
    const std::uint64_t value = 0x1122334455667788ULL;
    ASSERT_TRUE(map->update_kv(key, value));

    ProgramBuilder b;
    const int fd = b.add_map(map);
    b.stw(R10, -4, 7) // key on stack
        .load_map_fd(R1, fd)
        .mov_reg(R2, R10)
        .add_imm(R2, -4)
        .call(HelperId::MapLookup)
        .jne_imm(R0, 0, "hit")
        .mov_imm(R0, 0)
        .exit()
        .label("hit")
        .ldxdw(R0, R0, 0)
        .exit();
    auto prog = b.build();
    net::Packet pkt = udp64();
    auto res = run(prog, pkt);
    EXPECT_EQ(res.ret, value);
    EXPECT_EQ(res.map_lookups, 1u);

    // Miss path: change the stack key.
    ProgramBuilder b2;
    const int fd2 = b2.add_map(map);
    b2.stw(R10, -4, 999)
        .load_map_fd(R1, fd2)
        .mov_reg(R2, R10)
        .add_imm(R2, -4)
        .call(HelperId::MapLookup)
        .jne_imm(R0, 0, "hit")
        .mov_imm(R0, 42)
        .exit()
        .label("hit")
        .mov_imm(R0, 0)
        .exit();
    net::Packet pkt2 = udp64();
    EXPECT_EQ(run(b2.build(), pkt2).ret, 42u);
}

TEST(EbpfVm, MapValueIsWritable)
{
    auto map = std::make_shared<Map>(MapType::Array, "counters", 4, 8, 4);
    ProgramBuilder b;
    const int fd = b.add_map(map);
    b.stw(R10, -4, 0)
        .load_map_fd(R1, fd)
        .mov_reg(R2, R10)
        .add_imm(R2, -4)
        .call(HelperId::MapLookup)
        .jne_imm(R0, 0, "hit")
        .mov_imm(R0, 0)
        .exit()
        .label("hit")
        .ldxdw(R1, R0, 0)
        .add_imm(R1, 1)
        .stxdw(R0, 0, R1)
        .mov_imm(R0, 2)
        .exit();
    auto prog = b.build();
    net::Packet pkt = udp64();
    run(prog, pkt);
    run(prog, pkt);
    run(prog, pkt);
    const std::uint32_t key = 0;
    EXPECT_EQ(map->lookup_kv<std::uint64_t>(key).value(), 3u);
}

TEST(EbpfVm, AdjustHeadGrowsPacket)
{
    ProgramBuilder b;
    b.mov_reg(R6, R1)
        .mov_imm(R2, -16) // grow 16 bytes of headroom into the packet
        .call(HelperId::XdpAdjustHead)
        .mov_imm(R0, 2)
        .exit();
    net::Packet pkt = udp64();
    const auto before = pkt.size();
    run(b.build(), pkt);
    EXPECT_EQ(pkt.size(), before + 16);
}

TEST(EbpfVm, AdjustHeadShrinksPacket)
{
    ProgramBuilder b;
    b.mov_reg(R6, R1)
        .mov_imm(R2, 14) // strip the Ethernet header
        .call(HelperId::XdpAdjustHead)
        .mov_imm(R0, 2)
        .exit();
    net::Packet pkt = udp64();
    const auto before = pkt.size();
    run(b.build(), pkt);
    EXPECT_EQ(pkt.size(), before - 14);
}

TEST(EbpfVm, RedirectMapHitAndFallback)
{
    auto xsk = std::make_shared<Map>(MapType::XskMap, "xsks", 4, 4, 8);
    const std::uint32_t q0 = 0;
    ASSERT_TRUE(xsk->update_kv(q0, std::uint32_t{1}));

    ProgramBuilder b;
    const int fd = b.add_map(xsk);
    b.mov_reg(R6, R1)
        .ldxdw(R2, R6, 24)
        .load_map_fd(R1, fd)
        .mov_imm(R3, 2) // fallback: XDP_PASS
        .call(HelperId::RedirectMap)
        .exit();
    auto prog = b.build();

    net::Packet pkt = udp64();
    Vm vm;
    auto res = vm.run_xdp(prog, pkt, /*ifindex=*/1, /*rx_queue=*/0);
    EXPECT_EQ(res.action, XdpAction::Redirect);
    EXPECT_EQ(res.redirect_map, xsk.get());
    EXPECT_EQ(res.redirect_key, 0u);

    // Queue 5 has no socket -> fallback action.
    auto res2 = vm.run_xdp(prog, pkt, 1, /*rx_queue=*/5);
    EXPECT_EQ(res2.action, XdpAction::Pass);
}

TEST(EbpfVm, InstructionBudgetStopsRunawayPrograms)
{
    // An (unverifiable) infinite loop must be stopped by the runtime budget.
    ProgramBuilder b;
    b.mov_imm(R0, 1);
    Program prog = b.build();
    prog.insns.push_back({Op::Ja, 0, 0, -1, 0}); // self-loop
    net::Packet pkt = udp64();
    const auto res = run(prog, pkt);
    EXPECT_EQ(res.action, XdpAction::Aborted);
}

TEST(EbpfVm, CostScalesWithInstructionCount)
{
    ProgramBuilder small;
    small.mov_imm(R0, 1).exit();
    ProgramBuilder big;
    for (int i = 0; i < 100; ++i) big.mov_imm(R1, i);
    big.mov_imm(R0, 1).exit();
    net::Packet p1 = udp64(), p2 = udp64();
    const auto rs = run(small.build(), p1);
    const auto rb = run(big.build(), p2);
    EXPECT_GT(rb.cost, rs.cost);
    EXPECT_EQ(rb.insns, rs.insns + 100);
}

} // namespace
} // namespace ovsx::ebpf
