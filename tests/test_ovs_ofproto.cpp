#include <gtest/gtest.h>

#include "net/builder.h"
#include "net/headers.h"
#include "ovs/ofproto.h"

namespace ovsx::ovs {
namespace {

using net::ipv4;

net::FlowKey udp_key(std::uint32_t in_port, std::uint16_t dport = 2000,
                     std::uint32_t dst = ipv4(10, 0, 0, 2))
{
    net::UdpSpec spec;
    spec.src_ip = ipv4(10, 0, 0, 1);
    spec.dst_ip = dst;
    spec.src_port = 1000;
    spec.dst_port = dport;
    net::Packet p = net::build_udp(spec);
    p.meta().in_port = in_port;
    return net::parse_flow(p);
}

Match match_in_port(std::uint32_t port)
{
    Match m;
    m.key.in_port = port;
    m.mask.bits.in_port = 0xffffffff;
    return m;
}

TEST(Ofproto, SingleTableOutput)
{
    Ofproto of;
    of.add_rule({.table = 0, .priority = 10, .match = match_in_port(1),
                 .actions = {OfAction::output(2)}});
    const auto res = of.xlate(udp_key(1));
    ASSERT_EQ(res.actions.size(), 1u);
    EXPECT_EQ(res.actions[0].type, kern::OdpAction::Type::Output);
    EXPECT_EQ(res.actions[0].port, 2u);
    EXPECT_FALSE(res.dropped);
    EXPECT_EQ(res.tables_visited, 1);
}

TEST(Ofproto, PriorityWins)
{
    Ofproto of;
    of.add_rule({.table = 0, .priority = 1, .match = match_in_port(1),
                 .actions = {OfAction::output(2)}});
    Match specific = match_in_port(1);
    specific.key.tp_dst = 2000;
    specific.mask.bits.tp_dst = 0xffff;
    of.add_rule({.table = 0, .priority = 100, .match = specific,
                 .actions = {OfAction::output(9)}});

    EXPECT_EQ(of.xlate(udp_key(1, 2000)).actions[0].port, 9u);
    EXPECT_EQ(of.xlate(udp_key(1, 53)).actions[0].port, 2u);
}

TEST(Ofproto, NoMatchDrops)
{
    Ofproto of;
    of.add_rule({.table = 0, .priority = 10, .match = match_in_port(1),
                 .actions = {OfAction::output(2)}});
    const auto res = of.xlate(udp_key(5));
    EXPECT_TRUE(res.dropped);
    EXPECT_TRUE(res.actions.empty());
}

TEST(Ofproto, GotoTableChains)
{
    Ofproto of;
    of.add_rule({.table = 0, .priority = 10, .match = match_in_port(1),
                 .actions = {OfAction::push_vlan(7), OfAction::goto_table(5)}});
    Match any; // match-all
    of.add_rule({.table = 5, .priority = 0, .match = any,
                 .actions = {OfAction::output(3)}});

    const auto res = of.xlate(udp_key(1));
    ASSERT_EQ(res.actions.size(), 2u);
    EXPECT_EQ(res.actions[0].type, kern::OdpAction::Type::PushVlan);
    EXPECT_EQ(res.actions[1].port, 3u);
    EXPECT_EQ(res.tables_visited, 2);
}

TEST(Ofproto, WildcardsCoverProbedMasks)
{
    Ofproto of;
    // Table 0 has two masks: in_port-only and in_port+dport.
    of.add_rule({.table = 0, .priority = 1, .match = match_in_port(1),
                 .actions = {OfAction::output(2)}});
    Match specific = match_in_port(1);
    specific.key.tp_dst = 443;
    specific.mask.bits.tp_dst = 0xffff;
    of.add_rule({.table = 0, .priority = 100, .match = specific,
                 .actions = {OfAction::drop()}});

    // A packet to dport 2000 matches the broad rule, but the cache entry
    // must still be specific on tp_dst (else a 443 packet would hit it).
    const auto res = of.xlate(udp_key(1, 2000));
    EXPECT_EQ(res.actions[0].port, 2u);
    EXPECT_EQ(res.wildcards.bits.tp_dst, 0xffff);
    EXPECT_EQ(res.wildcards.bits.in_port, 0xffffffffu);
}

TEST(Ofproto, CtRecirculationSplitsTranslation)
{
    Ofproto of;
    kern::CtSpec ct{.zone = 7, .commit = false};
    of.add_rule({.table = 0, .priority = 10, .match = match_in_port(1),
                 .actions = {OfAction::conntrack(ct, /*recirc_table=*/4)}});
    Match est;
    est.key.ct_state = net::kCtStateTracked | net::kCtStateEstablished;
    est.mask.bits.ct_state = 0xff;
    of.add_rule({.table = 4, .priority = 10, .match = est,
                 .actions = {OfAction::output(8)}});

    // First pass ends in ct+recirc.
    const auto pass1 = of.xlate(udp_key(1));
    ASSERT_EQ(pass1.actions.size(), 2u);
    EXPECT_EQ(pass1.actions[0].type, kern::OdpAction::Type::Ct);
    EXPECT_EQ(pass1.actions[1].type, kern::OdpAction::Type::Recirc);
    const std::uint32_t rid = pass1.actions[1].recirc_id;
    EXPECT_NE(rid, 0u);
    EXPECT_EQ(of.recirc_ids(), 1u);

    // Second pass resumes at table 4 with ct_state set.
    net::FlowKey key2 = udp_key(1);
    key2.recirc_id = rid;
    key2.ct_state = net::kCtStateTracked | net::kCtStateEstablished;
    const auto pass2 = of.xlate(key2);
    ASSERT_EQ(pass2.actions.size(), 1u);
    EXPECT_EQ(pass2.actions[0].port, 8u);

    // Unknown recirc id drops.
    net::FlowKey key3 = udp_key(1);
    key3.recirc_id = 0xdead;
    EXPECT_TRUE(of.xlate(key3).dropped);
}

TEST(Ofproto, RecircIdsAreReusedPerResumePoint)
{
    Ofproto of;
    kern::CtSpec ct{.zone = 7, .commit = false};
    of.add_rule({.table = 0, .priority = 10, .match = match_in_port(1),
                 .actions = {OfAction::conntrack(ct, 4)}});
    const auto a = of.xlate(udp_key(1, 1111));
    const auto b = of.xlate(udp_key(1, 2222));
    EXPECT_EQ(a.actions[1].recirc_id, b.actions[1].recirc_id);
    EXPECT_EQ(of.recirc_ids(), 1u);
}

TEST(Ofproto, SetFieldAffectsLaterTables)
{
    Ofproto of;
    net::FlowKey rewrite;
    rewrite.nw_dst = ipv4(99, 0, 0, 1);
    net::FlowMask rmask;
    rmask.bits.nw_dst = 0xffffffff;
    of.add_rule({.table = 0, .priority = 10, .match = match_in_port(1),
                 .actions = {OfAction::set_field(rewrite, rmask), OfAction::goto_table(1)}});
    Match rewritten;
    rewritten.key.nw_dst = ipv4(99, 0, 0, 1);
    rewritten.mask.bits.nw_dst = 0xffffffff;
    of.add_rule({.table = 1, .priority = 10, .match = rewritten,
                 .actions = {OfAction::output(5)}});

    const auto res = of.xlate(udp_key(1)); // original dst 10.0.0.2
    ASSERT_EQ(res.actions.size(), 2u);
    EXPECT_EQ(res.actions[1].port, 5u);
}

TEST(Ofproto, StatsAndInventory)
{
    Ofproto of;
    of.add_rule({.table = 0, .priority = 1, .match = match_in_port(1),
                 .actions = {OfAction::output(1)}});
    Match m2 = match_in_port(2);
    m2.key.nw_dst = ipv4(1, 2, 3, 4);
    m2.mask.bits.nw_dst = 0xffffffff;
    of.add_rule({.table = 3, .priority = 1, .match = m2, .actions = {OfAction::output(1)}});

    EXPECT_EQ(of.rule_count(), 2u);
    EXPECT_EQ(of.table_count(), 2u);
    EXPECT_EQ(of.distinct_match_fields(), 2); // in_port, nw_dst
    of.xlate(udp_key(1));
    EXPECT_EQ(of.xlate_count(), 1u);
    of.clear();
    EXPECT_EQ(of.rule_count(), 0u);
}

TEST(Ofproto, ControllerAndMeterTranslate)
{
    Ofproto of;
    of.add_rule({.table = 0, .priority = 10, .match = match_in_port(1),
                 .actions = {OfAction::meter(3), OfAction::controller()}});
    const auto res = of.xlate(udp_key(1));
    ASSERT_EQ(res.actions.size(), 2u);
    EXPECT_EQ(res.actions[0].type, kern::OdpAction::Type::Meter);
    EXPECT_EQ(res.actions[1].type, kern::OdpAction::Type::Userspace);
}

} // namespace
} // namespace ovsx::ovs
