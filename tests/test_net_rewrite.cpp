#include <gtest/gtest.h>

#include "net/builder.h"
#include "net/checksum.h"
#include "net/headers.h"
#include "net/rewrite.h"

namespace ovsx::net {
namespace {

Packet sample(std::uint8_t proto = 17)
{
    if (proto == 6) {
        TcpSpec spec;
        spec.src_mac = MacAddr::from_id(1);
        spec.dst_mac = MacAddr::from_id(2);
        spec.src_ip = ipv4(10, 0, 0, 1);
        spec.dst_ip = ipv4(10, 0, 0, 2);
        spec.src_port = 100;
        spec.dst_port = 200;
        spec.payload_len = 32;
        return build_tcp(spec);
    }
    UdpSpec spec;
    spec.src_mac = MacAddr::from_id(1);
    spec.dst_mac = MacAddr::from_id(2);
    spec.src_ip = ipv4(10, 0, 0, 1);
    spec.dst_ip = ipv4(10, 0, 0, 2);
    spec.src_port = 100;
    spec.dst_port = 200;
    return build_udp(spec);
}

TEST(Rewrite, MacRewrite)
{
    Packet p = sample();
    FlowKey v;
    v.dl_dst = MacAddr::from_id(99);
    FlowMask m;
    m.bits.dl_dst = MacAddr::broadcast();
    EXPECT_EQ(apply_rewrite(p, v, m), 1);
    EXPECT_EQ(parse_flow(p).dl_dst, MacAddr::from_id(99));
    EXPECT_EQ(parse_flow(p).dl_src, MacAddr::from_id(1)); // untouched
}

TEST(Rewrite, PartialMacMask)
{
    Packet p = sample();
    FlowKey v;
    v.dl_src = MacAddr(0xff, 0, 0, 0, 0, 0);
    FlowMask m;
    m.bits.dl_src = MacAddr(0xff, 0, 0, 0, 0, 0); // first byte only
    apply_rewrite(p, v, m);
    const auto src = parse_flow(p).dl_src;
    EXPECT_EQ(src.bytes[0], 0xff);
    EXPECT_EQ(src.bytes[5], MacAddr::from_id(1).bytes[5]);
}

TEST(Rewrite, Ipv4AddressesRepairBothChecksums)
{
    for (std::uint8_t proto : {std::uint8_t{17}, std::uint8_t{6}}) {
        Packet p = sample(proto);
        FlowKey v;
        v.nw_src = ipv4(99, 1, 1, 1);
        v.nw_dst = ipv4(99, 2, 2, 2);
        FlowMask m;
        m.bits.nw_src = 0xffffffff;
        m.bits.nw_dst = 0xffffffff;
        EXPECT_EQ(apply_rewrite(p, v, m), 2);
        const auto key = parse_flow(p);
        EXPECT_EQ(key.nw_src, ipv4(99, 1, 1, 1));
        EXPECT_EQ(key.nw_dst, ipv4(99, 2, 2, 2));
        EXPECT_EQ(internet_checksum({p.data() + 14, 20}), 0) << int(proto);
        EXPECT_TRUE(verify_l4_csum(p, 14)) << int(proto);
    }
}

TEST(Rewrite, PortsUdpAndTcp)
{
    for (std::uint8_t proto : {std::uint8_t{17}, std::uint8_t{6}}) {
        Packet p = sample(proto);
        FlowKey v;
        v.tp_src = 1111;
        v.tp_dst = 2222;
        FlowMask m;
        m.bits.tp_src = 0xffff;
        m.bits.tp_dst = 0xffff;
        EXPECT_EQ(apply_rewrite(p, v, m), 2);
        const auto key = parse_flow(p);
        EXPECT_EQ(key.tp_src, 1111);
        EXPECT_EQ(key.tp_dst, 2222);
        EXPECT_TRUE(verify_l4_csum(p, 14));
    }
}

TEST(Rewrite, TosAndTtl)
{
    Packet p = sample();
    FlowKey v;
    v.nw_tos = 0xb8;
    v.nw_ttl = 7;
    FlowMask m;
    m.bits.nw_tos = 0xff;
    m.bits.nw_ttl = 0xff;
    EXPECT_EQ(apply_rewrite(p, v, m), 2);
    const auto key = parse_flow(p);
    EXPECT_EQ(key.nw_tos, 0xb8);
    EXPECT_EQ(key.nw_ttl, 7);
    EXPECT_EQ(internet_checksum({p.data() + 14, 20}), 0);
}

TEST(Rewrite, EmptyMaskIsNoop)
{
    Packet p = sample();
    const std::vector<std::uint8_t> before(p.bytes().begin(), p.bytes().end());
    FlowKey v;
    v.nw_dst = ipv4(9, 9, 9, 9);
    EXPECT_EQ(apply_rewrite(p, v, FlowMask{}), 0);
    EXPECT_EQ(std::vector<std::uint8_t>(p.bytes().begin(), p.bytes().end()), before);
}

TEST(Rewrite, NonIpPacketOnlyL2Applies)
{
    Packet p = build_arp(true, MacAddr::from_id(1), ipv4(1, 1, 1, 1), MacAddr(),
                         ipv4(2, 2, 2, 2));
    FlowKey v;
    v.dl_dst = MacAddr::from_id(7);
    v.nw_dst = ipv4(9, 9, 9, 9);
    FlowMask m;
    m.bits.dl_dst = MacAddr::broadcast();
    m.bits.nw_dst = 0xffffffff;
    EXPECT_EQ(apply_rewrite(p, v, m), 1); // only the MAC field applied
    EXPECT_EQ(parse_flow(p).dl_dst, MacAddr::from_id(7));
}

TEST(Rewrite, RuntPacketIsSafe)
{
    Packet p(6);
    FlowKey v;
    v.nw_dst = ipv4(9, 9, 9, 9);
    FlowMask m;
    m.bits.nw_dst = 0xffffffff;
    EXPECT_EQ(apply_rewrite(p, v, m), 0);
}

TEST(Vlan, PushThenPopRestoresFrame)
{
    Packet p = sample();
    const std::vector<std::uint8_t> before(p.bytes().begin(), p.bytes().end());
    push_vlan(p, 123);
    EXPECT_EQ(p.size(), before.size() + 4);
    auto key = parse_flow(p);
    EXPECT_EQ(key.vlan_tci & 0xfff, 123);
    EXPECT_EQ(key.nw_dst, ipv4(10, 0, 0, 2)); // inner intact
    EXPECT_TRUE(pop_vlan(p));
    EXPECT_EQ(std::vector<std::uint8_t>(p.bytes().begin(), p.bytes().end()), before);
}

TEST(Vlan, PopUntaggedFails)
{
    Packet p = sample();
    EXPECT_FALSE(pop_vlan(p));
}

TEST(Vlan, DoubleTagging)
{
    Packet p = sample();
    push_vlan(p, 100);
    push_vlan(p, 200); // QinQ outer
    auto key = parse_flow(p);
    EXPECT_EQ(key.vlan_tci & 0xfff, 200); // outer tag visible
    EXPECT_TRUE(pop_vlan(p));
    key = parse_flow(p);
    EXPECT_EQ(key.vlan_tci & 0xfff, 100);
    EXPECT_TRUE(pop_vlan(p));
    EXPECT_EQ(parse_flow(p).vlan_tci, 0);
}

// Property sweep: rewriting any single maskable field preserves the
// packet's structural validity (parseable, checksums repaired).
struct FieldCase {
    const char* name;
    void (*set)(net::FlowKey&, net::FlowMask&);
};

class RewriteProperty : public ::testing::TestWithParam<FieldCase> {};

TEST_P(RewriteProperty, PreservesValidity)
{
    Packet p = sample(6);
    FlowKey v;
    FlowMask m;
    GetParam().set(v, m);
    apply_rewrite(p, v, m);
    const auto key = parse_flow(p);
    EXPECT_EQ(key.dl_type, 0x0800);
    EXPECT_EQ(key.nw_proto, 6);
    EXPECT_EQ(internet_checksum({p.data() + 14, 20}), 0);
    EXPECT_TRUE(verify_l4_csum(p, 14));
}

INSTANTIATE_TEST_SUITE_P(
    Fields, RewriteProperty,
    ::testing::Values(
        FieldCase{"nw_src", [](net::FlowKey& v, net::FlowMask& m) {
                      v.nw_src = ipv4(1, 2, 3, 4);
                      m.bits.nw_src = 0xffffffff;
                  }},
        FieldCase{"nw_dst_prefix", [](net::FlowKey& v, net::FlowMask& m) {
                      v.nw_dst = ipv4(77, 0, 0, 0);
                      m.bits.nw_dst = 0xff000000;
                  }},
        FieldCase{"tp_src", [](net::FlowKey& v, net::FlowMask& m) {
                      v.tp_src = 4242;
                      m.bits.tp_src = 0xffff;
                  }},
        FieldCase{"ttl", [](net::FlowKey& v, net::FlowMask& m) {
                      v.nw_ttl = 1;
                      m.bits.nw_ttl = 0xff;
                  }},
        FieldCase{"dl_both", [](net::FlowKey& v, net::FlowMask& m) {
                      v.dl_src = MacAddr::from_id(70);
                      v.dl_dst = MacAddr::from_id(71);
                      m.bits.dl_src = MacAddr::broadcast();
                      m.bits.dl_dst = MacAddr::broadcast();
                  }}),
    [](const auto& info) { return info.param.name; });

} // namespace
} // namespace ovsx::net
