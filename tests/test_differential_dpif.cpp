// Differential conformance: the three datapaths (dpif-netdev on AF_XDP,
// the kernel module, the eBPF prototype) must agree packet-for-packet on
// the same topology and ruleset, modulo an explicit allowlist of
// structural limitations. Divergences found (and fixed) by this harness
// are pinned here as regressions.
#include <gtest/gtest.h>

#include <set>

#include "gen/ct_corpus.h"
#include "gen/differential.h"
#include "gen/fuzz.h"
#include "kern/meter.h"
#include "net/builder.h"
#include "net/headers.h"
#include "net/tunnel.h"

namespace ovsx::gen {
namespace {

// The complete allowlist of intentional cross-datapath differences,
// taken from the harness itself so tests and budget cannot drift. A
// divergence explained by anything else (or nothing) is a conformance
// bug. "ct-nat" is retired: NAT now exists in both conntracks and is
// diffed, never allowlisted.
const std::set<std::string>& allowlist()
{
    static const std::set<std::string> tags(known_divergence_tags().begin(),
                                            known_divergence_tags().end());
    return tags;
}

void expect_explained_allowlisted(const DiffReport& report)
{
    for (const auto& d : report.explained) {
        EXPECT_TRUE(allowlist().contains(d.explanation))
            << "unknown explanation tag: " << d.explanation << " at step " << d.step;
    }
}

DiffRule rule(int priority, kern::OdpActions actions)
{
    DiffRule r;
    r.priority = priority;
    r.mask.bits.recirc_id = 0xffffffff; // first-pass rule
    r.actions = std::move(actions);
    return r;
}

net::Packet udp(std::uint16_t sport, std::uint16_t dport, std::uint16_t vlan_tci = 0)
{
    net::UdpSpec s;
    s.src_mac = net::MacAddr::from_id(1);
    s.dst_mac = net::MacAddr::from_id(2);
    s.src_ip = 0x0a000001;
    s.dst_ip = 0x0a000002;
    s.src_port = sport;
    s.dst_port = dport;
    s.vlan_tci = vlan_tci;
    return net::build_udp(s);
}

// ---- tentpole: seeded fuzz through all three datapaths -----------------

TEST(DifferentialFuzz, TenThousandPacketsZeroUnexplainedDivergences)
{
    FuzzConfig cfg; // all traffic classes on: ct, vlan, geneve, icmp, malformed
    const DiffReport report = fuzz_run(/*seed=*/0xA5F00D, cfg, 10000);
    EXPECT_EQ(report.packets_run, 10000u);
    EXPECT_TRUE(report.ok()) << report.summary();
    expect_explained_allowlisted(report);
}

TEST(DifferentialFuzz, SecondSeedAlsoClean)
{
    FuzzConfig cfg;
    cfg.use_meters = true;
    const DiffReport report = fuzz_run(/*seed=*/0xBEE5, cfg, 2000);
    EXPECT_TRUE(report.ok()) << report.summary();
    expect_explained_allowlisted(report);
}

// Seed 12345 found refresh_ipv4_csum summing a corrupt-IHL header past
// the frame end: the tailroom bytes it read differ between the umem-rx
// path (netdev) and direct injection (kernel), so the refreshed IP
// checksum diverged on malformed frames hitting a header-rewrite rule.
TEST(DifferentialFuzz, RegressionSeed12345MalformedIpChecksum)
{
    FuzzConfig cfg;
    const DiffReport report = fuzz_run(/*seed=*/12345, cfg, 2000);
    EXPECT_TRUE(report.ok()) << report.summary();
    expect_explained_allowlisted(report);
}

TEST(DifferentialFuzz, DeterministicAcrossRuns)
{
    FuzzConfig cfg;
    const DiffReport a = fuzz_run(7, cfg, 500);
    const DiffReport b = fuzz_run(7, cfg, 500);
    EXPECT_EQ(a.unexplained.size(), b.unexplained.size());
    EXPECT_EQ(a.explained.size(), b.explained.size());
}

// ---- fault injection: the harness must catch a mistranslated action ----

TEST(DifferentialFault, FlippedRewriteCaughtWithTinyReproducer)
{
    DiffRuleset rs;
    {
        net::FlowKey v;
        net::FlowMask m;
        v.nw_ttl = 7;
        m.bits.nw_ttl = 0xff;
        DiffRule r = rule(10, {kern::OdpAction::set_field(v, m), kern::OdpAction::output(2)});
        r.mask.bits.nw_proto = 0xff;
        r.match.nw_proto = 17;
        rs.rules.push_back(std::move(r));
    }

    DiffOptions opts;
    opts.seed = 42;
    DifferentialHarness harness(rs, opts);
    // The kernel translation writes the wrong TTL — a one-line action
    // encoding bug of the kind differential testing exists to catch.
    harness.set_fault(DpKind::Kernel, [](kern::OdpActions& actions) {
        for (auto& a : actions) {
            if (a.type == kern::OdpAction::Type::SetField) a.set_value.nw_ttl = 9;
        }
    });

    std::vector<DiffPacket> seq;
    for (std::uint16_t i = 0; i < 40; ++i) {
        seq.push_back({i % 4u, udp(static_cast<std::uint16_t>(1000 + i), 80)});
    }
    const DiffReport report = harness.run(seq);
    ASSERT_FALSE(report.ok());
    ASSERT_TRUE(report.reproducer.has_value());
    EXPECT_LE(report.reproducer->steps.size(), 5u);
    EXPECT_EQ(report.reproducer->seed, 42u);
}

TEST(DifferentialFault, FlippedOutputPortInEbpfCaught)
{
    DiffRuleset rs;
    DiffRule r = rule(10, {kern::OdpAction::output(2)});
    r.mask.bits.nw_proto = 0xff;
    r.match.nw_proto = 17;
    rs.rules.push_back(std::move(r));

    DifferentialHarness harness(rs);
    harness.set_fault(DpKind::Ebpf, [](kern::OdpActions& actions) {
        for (auto& a : actions) {
            if (a.type == kern::OdpAction::Type::Output) a.port = 3;
        }
    });

    std::vector<DiffPacket> seq;
    seq.push_back({0, udp(1000, 80)});
    seq.push_back({0, udp(1000, 80)});
    const DiffReport report = harness.run(seq);
    ASSERT_FALSE(report.ok());
    ASSERT_TRUE(report.reproducer.has_value());
    EXPECT_LE(report.reproducer->steps.size(), 5u);
}

// ---- pinned regressions from divergences this harness surfaced ---------

// The eBPF program used to accept any IPv4 frame and read the L4 ports at
// a fixed offset; IP options shifted real ports out of view and aliased
// option bytes (0x01 NOPs -> port 257) into the lookup key, so an
// options-bearing frame could hit another flow's map entry. IHL != 5 must
// take the slow path.
TEST(DifferentialRegression, IpOptionsFrameDoesNotAliasEbpfFlow)
{
    DiffRuleset rs;
    {
        DiffRule r = rule(20, {kern::OdpAction::output(2)});
        r.mask.bits.nw_proto = 0xff;
        r.match.nw_proto = 17;
        r.mask.bits.tp_src = 0xffff;
        r.match.tp_src = 257;
        r.mask.bits.tp_dst = 0xffff;
        r.match.tp_dst = 257;
        rs.rules.push_back(std::move(r));
    }
    {
        DiffRule r = rule(10, {kern::OdpAction::output(3)});
        r.mask.bits.nw_proto = 0xff;
        r.match.nw_proto = 17;
        rs.rules.push_back(std::move(r));
    }

    std::vector<DiffPacket> seq;
    // Installs the (proto 17, 257 -> 257) exact entry in the eBPF map.
    seq.push_back({0, udp(257, 257)});
    // IHL=7 frame whose NOP option bytes sit where the eBPF key loader
    // reads ports: pre-fix this hit the entry above and went out port 2.
    net::Packet opts_frame = net::with_ip_options(udp(1000, 2000), 8);
    ASSERT_GT(opts_frame.size(), 0u);
    seq.push_back({0, std::move(opts_frame)});

    DifferentialHarness harness(rs);
    const DiffReport report = harness.run(seq);
    EXPECT_TRUE(report.ok()) << report.summary();
}

// The kernel module used to treat Meter actions as a no-op while
// dpif-netdev policed, so rate-limited flows diverged. Both now share
// kern::MeterTable and must drop the same packets at the same virtual
// times.
TEST(DifferentialRegression, MeterDropsAgreeBetweenNetdevAndKernel)
{
    kern::MeterConfig mc;
    mc.rate_pps = 100;
    mc.burst = 1;

    // Sanity: this config actually polices at the harness's 1ms cadence —
    // otherwise the parity assertion below would be vacuous.
    {
        kern::MeterTable probe;
        probe.set(1, mc);
        std::size_t admitted = 0;
        for (int t = 1; t <= 20; ++t) {
            if (probe.admit(1, 64, static_cast<sim::Nanos>(t) * 1'000'000)) ++admitted;
        }
        ASSERT_GT(admitted, 0u);
        ASSERT_LT(admitted, 20u);
    }

    DiffRuleset rs;
    rs.meters.emplace_back(1, mc);
    rs.rules.push_back(rule(10, {kern::OdpAction::meter(1), kern::OdpAction::output(2)}));

    DiffOptions opts;
    opts.compare_ebpf = false; // meters are structurally eBPF-unsupported
    DifferentialHarness harness(rs, opts);

    std::vector<DiffPacket> seq;
    for (int i = 0; i < 20; ++i) seq.push_back({0, udp(1000, 80)});
    const DiffReport report = harness.run(seq);
    EXPECT_TRUE(report.ok()) << report.summary();
}

// Conntrack edge cases must classify identically in the userspace and
// kernel trackers, and leave identical tables behind (the end-state diff
// covers that part).
TEST(DifferentialRegression, ConntrackSequencesAgreeAcrossDatapaths)
{
    DiffRuleset rs;
    {
        kern::CtSpec spec;
        spec.zone = 0;
        spec.commit = true;
        rs.rules.push_back(
            rule(50, {kern::OdpAction::conntrack(spec), kern::OdpAction::recirc(0x100)}));
    }
    auto pass2 = [](std::uint8_t state_bit, kern::OdpActions actions) {
        DiffRule r;
        r.priority = 20;
        r.mask.bits.recirc_id = 0xffffffff;
        r.match.recirc_id = 0x100;
        r.mask.bits.ct_state = state_bit;
        r.match.ct_state = state_bit;
        r.actions = std::move(actions);
        return r;
    };
    rs.rules.push_back(pass2(net::kCtStateNew, {kern::OdpAction::output(2)}));
    rs.rules.push_back(pass2(net::kCtStateEstablished, {kern::OdpAction::output(3)}));
    {
        DiffRule r;
        r.priority = 10;
        r.mask.bits.recirc_id = 0xffffffff;
        r.match.recirc_id = 0x100;
        r.actions = {kern::OdpAction::drop()};
        rs.rules.push_back(std::move(r));
    }

    std::vector<DiffPacket> seq;
    auto feed = [&](std::vector<net::Packet> pkts) {
        for (auto& p : pkts) seq.push_back({0, std::move(p)});
    };
    feed(ct_handshake());
    feed(ct_rst_mid_handshake());
    feed(ct_icmp_related());
    seq.push_back({0, ct_icmp_unrelated()});

    DifferentialHarness harness(rs);
    const DiffReport report = harness.run(seq);
    EXPECT_TRUE(report.ok()) << report.summary();
    expect_explained_allowlisted(report);
}

// The retirement test for the "ct-nat" allowlist tag: a ruleset doing
// both SNAT and DNAT (no recirc, so it is eBPF-expressible) must run
// through all three datapaths with ZERO divergences of either kind —
// identical translated frames on the wire, identical de-NATed replies,
// and identical conntrack end state (the per-entry diff covers the NAT
// reply tuples and the deterministically allocated ports).
TEST(DifferentialRegression, SnatDnatRulesetAgreesAcrossAllThreeDatapaths)
{
    DiffRuleset rs;
    {
        // Outbound web traffic is source-NATed behind 10.0.9.1 with a
        // port range, forcing the allocator to run on every connection.
        kern::CtSpec spec;
        spec.commit = true;
        spec.nat = kern::NatSpec::src(0x0a000901, 40000, 40003);
        DiffRule r = rule(50, {kern::OdpAction::conntrack(spec), kern::OdpAction::output(1)});
        r.mask.bits.nw_proto = 0xff;
        r.match.nw_proto = 17;
        r.mask.bits.tp_dst = 0xffff;
        r.match.tp_dst = 80;
        rs.rules.push_back(std::move(r));
    }
    {
        // Inbound DNAT to a backend on another zone.
        kern::CtSpec spec;
        spec.zone = 7;
        spec.commit = true;
        spec.set_mark = true;
        spec.mark = 3;
        spec.nat = kern::NatSpec::dst(0x0a000402, 8080);
        DiffRule r = rule(40, {kern::OdpAction::conntrack(spec), kern::OdpAction::output(2)});
        r.mask.bits.nw_proto = 0xff;
        r.match.nw_proto = 17;
        r.mask.bits.tp_dst = 0xffff;
        r.match.tp_dst = 443;
        rs.rules.push_back(std::move(r));
    }
    {
        // Replies: plain ct (no nat spec needed — the tracker de-NATs
        // reply-direction packets from the stored binding).
        kern::CtSpec spec;
        DiffRule r = rule(30, {kern::OdpAction::conntrack(spec), kern::OdpAction::output(3)});
        r.mask.bits.nw_proto = 0xff;
        r.match.nw_proto = 17;
        rs.rules.push_back(std::move(r));
    }

    std::vector<DiffPacket> seq;
    // Four SNAT connections exercise ports 40000..40003; a fifth
    // exhausts the range on every datapath identically.
    for (std::uint16_t i = 0; i < 5; ++i) {
        seq.push_back({0, udp(static_cast<std::uint16_t>(5000 + i), 80)});
    }
    // A reply to the first translated connection must de-NAT the same
    // way everywhere (dst = the NAT ip and first allocated port).
    {
        net::UdpSpec s;
        s.src_mac = net::MacAddr::from_id(2);
        s.dst_mac = net::MacAddr::from_id(1);
        s.src_ip = 0x0a000002;
        s.dst_ip = 0x0a000901;
        s.src_port = 80;
        s.dst_port = 40000;
        seq.push_back({1, net::build_udp(s)});
    }
    // Two DNAT connections plus a re-hit of the first (established path).
    seq.push_back({0, udp(6000, 443)});
    seq.push_back({0, udp(6001, 443)});
    seq.push_back({0, udp(6000, 443)});

    DifferentialHarness harness(rs);
    const DiffReport report = harness.run(seq);
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_TRUE(report.explained.empty()) << report.summary();
}

// The satellite bug this PR's comparator exists to catch: the old
// CtSnapshotEntry omitted the mark (and NAT tuple), so a datapath that
// stored a wrong mark produced identical verdicts AND an identical
// snapshot — invisible. Now a fault that corrupts only the committed
// mark on one datapath must surface as exactly one unexplained
// end-state divergence naming the conntrack table.
TEST(DifferentialFault, CorruptedCtMarkCaughtByEndStateDiff)
{
    DiffRuleset rs;
    kern::CtSpec spec;
    spec.commit = true;
    spec.set_mark = true;
    spec.mark = 5;
    DiffRule r = rule(10, {kern::OdpAction::conntrack(spec), kern::OdpAction::output(2)});
    r.mask.bits.nw_proto = 0xff;
    r.match.nw_proto = 17;
    rs.rules.push_back(std::move(r));

    DiffOptions opts;
    opts.minimize = false; // end-state divergences have no packet step
    DifferentialHarness harness(rs, opts);
    harness.set_fault(DpKind::Ebpf, [](kern::OdpActions& actions) {
        for (auto& a : actions) {
            if (a.type == kern::OdpAction::Type::Ct) a.ct.mark = 6;
        }
    });

    std::vector<DiffPacket> seq;
    seq.push_back({0, udp(1000, 80)});
    const DiffReport report = harness.run(seq);
    // The verdict stream is identical — the mark never reaches the wire.
    ASSERT_EQ(report.unexplained.size(), 1u) << report.summary();
    EXPECT_TRUE(report.explained.empty()) << report.summary();
    EXPECT_NE(report.unexplained[0].detail.find("conntrack"), std::string::npos)
        << report.unexplained[0].detail;
    EXPECT_NE(report.unexplained[0].detail.find("mark=6"), std::string::npos)
        << report.unexplained[0].detail;
}

// Both lookup-based datapaths cap recirculation depth at 8; a
// self-recirculating ruleset must drop (not loop or diverge) everywhere.
TEST(DifferentialRegression, RecirculationDepthLimitAgrees)
{
    DiffRuleset rs;
    rs.rules.push_back(rule(50, {kern::OdpAction::recirc(0x200)}));
    {
        DiffRule r;
        r.priority = 40;
        r.mask.bits.recirc_id = 0xffffffff;
        r.match.recirc_id = 0x200;
        r.actions = {kern::OdpAction::recirc(0x200)};
        rs.rules.push_back(std::move(r));
    }

    DifferentialHarness harness(rs);
    std::vector<DiffPacket> seq;
    for (int i = 0; i < 3; ++i) seq.push_back({0, udp(1000, 80)});
    const DiffReport report = harness.run(seq);
    EXPECT_TRUE(report.ok()) << report.summary();
}

// dpif-ebpf used to leak action-shadow entries when the same exact key
// was re-put (every slow-path packet of a map-invisible flow re-puts).
// The end-state check walks the map and the shadow and requires them 1:1.
TEST(DifferentialRegression, EbpfFlowShadowStaysConsistentAcrossReputs)
{
    DiffRuleset rs;
    DiffRule r = rule(10, {kern::OdpAction::output(2)});
    r.mask.bits.nw_proto = 0xff;
    r.match.nw_proto = 17;
    rs.rules.push_back(std::move(r));

    DifferentialHarness harness(rs);
    std::vector<DiffPacket> seq;
    // IP-options frames (IHL != 5) never match the eBPF parser's
    // fixed-header fast path, so every one upcalls and re-puts the same
    // exact (5-tuple) key.
    for (int i = 0; i < 3; ++i) {
        seq.push_back({0, net::with_ip_options(udp(1000, 80), 8)});
    }
    const DiffReport report = harness.run(seq);
    EXPECT_TRUE(report.ok()) << report.summary();
}

// The eBPF map key now carries the VLAN TCI (and IP ToS), so rulesets
// matching vlan_tci are fully expressible: tagged and untagged twins of
// the same 5-tuple land in *different* map entries and every datapath
// agrees — with no "ebpf-key-dimensions" explanation needed.
TEST(DifferentialAllowlist, VlanRulesNowAgreeAcrossAllDatapaths)
{
    DiffRuleset rs;
    {
        DiffRule r = rule(50, {kern::OdpAction::output(2)});
        r.mask.bits.vlan_tci = 0xffff;
        r.match.vlan_tci = 0x1000 | 100;
        rs.rules.push_back(std::move(r));
    }
    rs.rules.push_back(rule(1, {kern::OdpAction::output(3)}));

    DifferentialHarness harness(rs);
    std::vector<DiffPacket> seq;
    seq.push_back({0, udp(1000, 80, /*vlan_tci=*/100)}); // tagged → port 2
    seq.push_back({0, udp(1000, 80)});                   // untagged → port 3
    seq.push_back({0, udp(1000, 80, /*vlan_tci=*/100)}); // map hit, still port 2
    const DiffReport report = harness.run(seq);
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_TRUE(report.explained.empty()) << report.summary();
}

// A ruleset matching dl_dst — a dimension still absent from the eBPF map
// key — makes eBPF alias microflows that differ only in destination MAC
// into one entry. That is an *explained* divergence: it must be reported
// under its allowlist tag, never silently dropped and never counted as
// unexplained.
TEST(DifferentialAllowlist, MacKeyDimensionDivergenceIsExplainedNotSilent)
{
    DiffRuleset rs;
    {
        DiffRule r = rule(50, {kern::OdpAction::output(2)});
        r.mask.bits.dl_dst = net::MacAddr(0xff, 0xff, 0xff, 0xff, 0xff, 0xff);
        r.match.dl_dst = net::MacAddr::from_id(2);
        rs.rules.push_back(std::move(r));
    }
    rs.rules.push_back(rule(1, {kern::OdpAction::output(3)}));

    DifferentialHarness harness(rs);
    std::vector<DiffPacket> seq;
    seq.push_back({0, udp(1000, 80)}); // dst MAC from_id(2): installs aliased entry
    {
        net::UdpSpec s;
        s.src_mac = net::MacAddr::from_id(1);
        s.dst_mac = net::MacAddr::from_id(3); // same 5-tuple, other MAC
        s.src_ip = 0x0a000001;
        s.dst_ip = 0x0a000002;
        s.src_port = 1000;
        s.dst_port = 80;
        seq.push_back({0, net::build_udp(s)});
    }
    const DiffReport report = harness.run(seq);
    EXPECT_TRUE(report.ok()) << report.summary();
    ASSERT_FALSE(report.explained.empty());
    for (const auto& d : report.explained) {
        EXPECT_EQ(d.explanation, "ebpf-key-dimensions") << d.detail;
    }
}

// Multi-queue RSS: with num_queues > 1 the PMD polls every queue of each
// NIC and the hash-spread frames must still produce identical verdicts
// and end state across all three datapaths.
TEST(DifferentialFuzz, MultiQueueRssSeedClean)
{
    FuzzConfig cfg;
    cfg.num_queues = 2;
    const DiffReport report = fuzz_run(/*seed=*/0xC0FFEE, cfg, 2000);
    EXPECT_EQ(report.packets_run, 2000u);
    EXPECT_TRUE(report.ok()) << report.summary();
    expect_explained_allowlisted(report);
}

// ---- batch-vs-scalar: the vector spine against its own scalar twin -----
//
// Unlike the cross-datapath comparisons above, both sides here run the
// SAME provider on the same ruleset, so there is no allowlist: any
// divergence — verdict, flow table, conntrack, semantic counters — is a
// bug in the batch path. Each corpus targets a batch hazard: ct+NAT
// (per-packet fallback + state carried between packets of one burst),
// fragments (malformed/partial headers in the middle of a burst), VLAN
// (push/pop rewrites), and tunnel encaps (decap changing the key mid-
// burst).

const DpKind kAllKinds[] = {DpKind::Netdev, DpKind::Kernel, DpKind::Ebpf};

TEST(BatchVsScalar, CtNatCorpusAgreesOnEveryProvider)
{
    DiffRuleset rs;
    {
        kern::CtSpec spec;
        spec.commit = true;
        spec.nat = kern::NatSpec::src(0x0a000901, 41000, 41003);
        DiffRule r = rule(50, {kern::OdpAction::conntrack(spec), kern::OdpAction::output(1)});
        r.mask.bits.nw_proto = 0xff;
        r.match.nw_proto = 17;
        r.mask.bits.tp_dst = 0xffff;
        r.match.tp_dst = 80;
        rs.rules.push_back(std::move(r));
    }
    {
        kern::CtSpec spec;
        DiffRule r = rule(30, {kern::OdpAction::conntrack(spec), kern::OdpAction::output(3)});
        r.mask.bits.nw_proto = 0xff;
        r.match.nw_proto = 17;
        rs.rules.push_back(std::move(r));
    }

    std::vector<DiffPacket> seq;
    // Three NATed connections, a reply that must de-NAT through the
    // binding the *batch* created, then established re-hits — all close
    // enough together to land in one burst.
    for (std::uint16_t i = 0; i < 3; ++i) {
        seq.push_back({0, udp(static_cast<std::uint16_t>(7000 + i), 80)});
    }
    {
        net::UdpSpec s;
        s.src_mac = net::MacAddr::from_id(2);
        s.dst_mac = net::MacAddr::from_id(1);
        s.src_ip = 0x0a000002;
        s.dst_ip = 0x0a000901;
        s.src_port = 80;
        s.dst_port = 41000;
        seq.push_back({1, net::build_udp(s)});
    }
    for (std::uint16_t i = 0; i < 3; ++i) {
        seq.push_back({0, udp(static_cast<std::uint16_t>(7000 + i), 80)});
    }

    for (const DpKind kind : kAllKinds) {
        DifferentialHarness harness(rs);
        const DiffReport report = harness.run_batch_vs_scalar(seq, kind, 8);
        EXPECT_TRUE(report.ok()) << to_string(kind) << ": " << report.summary();
        EXPECT_TRUE(report.explained.empty()) << to_string(kind);
    }
}

TEST(BatchVsScalar, FragmentCorpusAgreesOnEveryProvider)
{
    // Wildcard forward plus an L4-match rule the non-first fragments
    // cannot hit (their transport header is missing): fragment handling
    // must classify identically whether the frags arrive mid-burst or
    // one at a time.
    DiffRuleset rs;
    {
        DiffRule r = rule(40, {kern::OdpAction::output(2)});
        r.mask.bits.nw_proto = 0xff;
        r.match.nw_proto = 17;
        r.mask.bits.tp_dst = 0xffff;
        r.match.tp_dst = 9999;
        rs.rules.push_back(std::move(r));
    }
    rs.rules.push_back(rule(10, {kern::OdpAction::output(1)}));

    std::vector<DiffPacket> seq;
    for (std::uint16_t i = 0; i < 4; ++i) {
        net::Packet whole = udp(static_cast<std::uint16_t>(8000 + i), 9999);
        seq.push_back({0, net::as_fragment(whole, 0, true)});   // first frag, MF set
        seq.push_back({0, net::as_fragment(whole, 185, false)}); // tail frag, no L4
        seq.push_back({0, std::move(whole)});                    // unfragmented control
    }

    for (const DpKind kind : kAllKinds) {
        DifferentialHarness harness(rs);
        const DiffReport report = harness.run_batch_vs_scalar(seq, kind, 8);
        EXPECT_TRUE(report.ok()) << to_string(kind) << ": " << report.summary();
        EXPECT_TRUE(report.explained.empty()) << to_string(kind);
    }
}

TEST(BatchVsScalar, VlanCorpusAgreesOnEveryProvider)
{
    DiffRuleset rs;
    {
        // Tagged traffic on vlan 100: pop and forward.
        DiffRule r = rule(50, {kern::OdpAction::pop_vlan(), kern::OdpAction::output(2)});
        r.mask.bits.vlan_tci = 0xffff;
        r.match.vlan_tci = 0x1064; // present bit | vid 100
        rs.rules.push_back(std::move(r));
    }
    // Untagged: push vlan 200 and forward.
    rs.rules.push_back(
        rule(20, {kern::OdpAction::push_vlan(0x10c8), kern::OdpAction::output(3)}));

    std::vector<DiffPacket> seq;
    for (std::uint16_t i = 0; i < 6; ++i) {
        // Interleave tagged and untagged so one burst holds both and
        // the batch path must keep the rewrites per-slot.
        seq.push_back({0, udp(static_cast<std::uint16_t>(8100 + i), 53,
                              (i % 2) ? std::uint16_t{0x1064} : std::uint16_t{0})});
    }

    for (const DpKind kind : kAllKinds) {
        DifferentialHarness harness(rs);
        const DiffReport report = harness.run_batch_vs_scalar(seq, kind, 8);
        EXPECT_TRUE(report.ok()) << to_string(kind) << ": " << report.summary();
        EXPECT_TRUE(report.explained.empty()) << to_string(kind);
    }
}

TEST(BatchVsScalar, TunnelEncapCorpusAgreesOnEveryProvider)
{
    // Pre-encapsulated Geneve/VXLAN frames mixed with plain traffic:
    // decap rewrites the flow key mid-burst, the exact case where a
    // stale batched key would misclassify.
    DiffRuleset rs;
    rs.rules.push_back(rule(10, {kern::OdpAction::output(1)}));

    const auto encapped = [](net::TunnelType type, std::uint64_t vni, std::uint16_t sport) {
        net::UdpSpec inner;
        inner.src_mac = net::MacAddr::from_id(50);
        inner.dst_mac = net::MacAddr::from_id(51);
        inner.src_ip = 0xc0a80001;
        inner.dst_ip = 0xc0a80101;
        inner.src_port = sport;
        inner.dst_port = 3000;
        net::Packet pkt = net::build_udp(inner);
        net::TunnelKey key;
        key.tun_id = vni;
        key.ip_src = 0x0a000001;
        key.ip_dst = 0x0a000002;
        net::EncapParams params;
        params.outer_src_mac = net::MacAddr::from_id(1);
        params.outer_dst_mac = net::MacAddr::from_id(2);
        params.udp_src_port = static_cast<std::uint16_t>(20000 + sport);
        net::encapsulate(pkt, type, key, params);
        return pkt;
    };

    std::vector<DiffPacket> seq;
    for (std::uint16_t i = 0; i < 4; ++i) {
        seq.push_back({0, encapped(net::TunnelType::Geneve, 1 + i, 2000 + i)});
        seq.push_back({0, udp(static_cast<std::uint16_t>(8200 + i), 53)});
        seq.push_back({0, encapped(net::TunnelType::Vxlan, 5 + i, 2100 + i)});
    }

    for (const DpKind kind : kAllKinds) {
        DifferentialHarness harness(rs);
        const DiffReport report = harness.run_batch_vs_scalar(seq, kind, 8);
        EXPECT_TRUE(report.ok()) << to_string(kind) << ": " << report.summary();
        EXPECT_TRUE(report.explained.empty()) << to_string(kind);
    }
}

TEST(BatchVsScalar, DegeneratePartialAndFullBurstsAllAgree)
{
    // batch_size 1 (every burst degenerate), 5 (never aligns with the
    // sequence length), and 32 (full vector) must all be equivalent to
    // the scalar spine on the same traffic.
    DiffRuleset rs;
    rs.rules.push_back(rule(10, {kern::OdpAction::output(1)}));
    std::vector<DiffPacket> seq;
    for (std::uint16_t i = 0; i < 37; ++i) {
        seq.push_back({i % 2, udp(static_cast<std::uint16_t>(9000 + i), 53)});
    }
    for (const std::size_t batch_size : {1u, 5u, 32u}) {
        DifferentialHarness harness(rs);
        const DiffReport report = harness.run_batch_vs_scalar(seq, DpKind::Netdev, batch_size);
        EXPECT_TRUE(report.ok()) << "b=" << batch_size << ": " << report.summary();
    }
}

} // namespace
} // namespace ovsx::gen
