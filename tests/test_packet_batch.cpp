// net::PacketBatch — the fixed-capacity vector the VPP-style spine
// carries packets in. Covers the boundary sizes (empty, single,
// exactly-full, capacity+1 spilling into a second cycle), sparse
// drop/punt masking, the reorder-freedom guarantee (indices are stable,
// live slots visit in arrival order no matter which slots died), and
// san packet-ledger accounting across kill/take/clear and batch reuse.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "net/packet_batch.h"
#include "san/packet_ledger.h"
#include "san/report.h"

namespace ovsx {
namespace {

using net::Packet;
using net::PacketBatch;
using san::ScopedCollect;
using san::ScopedHardened;

// A small distinct payload so a slot's packet is identifiable by value.
Packet tagged_packet(std::uint8_t tag)
{
    Packet p(4);
    p.data()[0] = tag;
    p.meta().in_port = tag;
    return p;
}

// Ledger-tracked variant: the batch owns a live skb record until the
// slot is killed, taken, or cleared.
Packet tracked_packet(std::uint8_t tag)
{
    Packet p = tagged_packet(tag);
    p.set_san_id(san::skb_acquire("batch-test", san::SkbState::Datapath, OVSX_SITE));
    return p;
}

TEST(PacketBatch, EmptyBatchHasNoSlots)
{
    PacketBatch b;
    EXPECT_TRUE(b.empty());
    EXPECT_FALSE(b.full());
    EXPECT_EQ(b.size(), 0u);
    EXPECT_EQ(b.alive_count(), 0u);
    EXPECT_EQ(b.alive_mask(), 0u);
    EXPECT_FALSE(b.alive(0));

    std::size_t visited = 0;
    b.for_each_alive([&](std::size_t, Packet&) { ++visited; });
    EXPECT_EQ(visited, 0u);
}

TEST(PacketBatch, SinglePacket)
{
    PacketBatch b;
    ASSERT_TRUE(b.add(tagged_packet(7)));
    EXPECT_EQ(b.size(), 1u);
    EXPECT_EQ(b.alive_count(), 1u);
    EXPECT_TRUE(b.alive(0));
    EXPECT_FALSE(b.alive(1));
    EXPECT_EQ(b.pkt(0).data()[0], 7);
}

TEST(PacketBatch, FillsToCapacityThenRejects)
{
    PacketBatch b;
    for (std::size_t i = 0; i < PacketBatch::kCapacity; ++i) {
        ASSERT_TRUE(b.add(tagged_packet(static_cast<std::uint8_t>(i))));
    }
    EXPECT_TRUE(b.full());
    EXPECT_EQ(b.size(), PacketBatch::kCapacity);
    EXPECT_EQ(b.alive_count(), PacketBatch::kCapacity);
    EXPECT_EQ(b.alive_mask(), 0xffffffffu);

    // Packet capacity+1 must be rejected with the packet left intact —
    // the spine flushes the full batch and starts a second cycle.
    Packet overflow = tagged_packet(0xee);
    EXPECT_FALSE(b.add(std::move(overflow)));
    EXPECT_EQ(overflow.data()[0], 0xee); // untouched on rejection
    EXPECT_EQ(b.size(), PacketBatch::kCapacity);
}

TEST(PacketBatch, CapacityPlusOneSplitsAcrossTwoCycles)
{
    // The caller-side pattern dpif uses: add until full, process, clear,
    // continue. capacity+1 packets => cycles of size {capacity, 1}.
    PacketBatch b;
    std::vector<std::uint8_t> seen;
    std::size_t cycles = 0;

    std::vector<Packet> input;
    for (std::size_t i = 0; i < PacketBatch::kCapacity + 1; ++i) {
        input.push_back(tagged_packet(static_cast<std::uint8_t>(i)));
    }
    const auto flush = [&] {
        b.for_each_alive([&](std::size_t, Packet& p) { seen.push_back(p.data()[0]); });
        b.clear();
        ++cycles;
    };
    for (auto& p : input) {
        if (!b.add(std::move(p))) {
            flush();
            ASSERT_TRUE(b.add(std::move(p)));
        }
    }
    if (!b.empty()) flush();

    EXPECT_EQ(cycles, 2u);
    ASSERT_EQ(seen.size(), PacketBatch::kCapacity + 1);
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_EQ(seen[i], static_cast<std::uint8_t>(i)); // arrival order
    }
}

TEST(PacketBatch, SparseKillMasksSlotsWithoutCompacting)
{
    PacketBatch b;
    for (std::size_t i = 0; i < 8; ++i) {
        ASSERT_TRUE(b.add(tagged_packet(static_cast<std::uint8_t>(i))));
    }
    // Kill a sparse pattern: 0 (head), 3 (middle), 7 (tail).
    b.kill(0);
    b.kill(3);
    b.kill(7);
    EXPECT_EQ(b.size(), 8u);        // slots are never compacted
    EXPECT_EQ(b.alive_count(), 5u);
    EXPECT_EQ(b.alive_mask(), 0b01110110u);

    // Survivors keep their original indices and payloads.
    for (const std::size_t i : {1u, 2u, 4u, 5u, 6u}) {
        EXPECT_TRUE(b.alive(i));
        EXPECT_EQ(b.pkt(i).data()[0], static_cast<std::uint8_t>(i));
    }
    // Killing a dead slot is a no-op, not a fault.
    b.kill(3);
    EXPECT_EQ(b.alive_count(), 5u);
}

TEST(PacketBatch, ForEachAliveVisitsArrivalOrderAroundHoles)
{
    PacketBatch b;
    for (std::size_t i = 0; i < 10; ++i) {
        ASSERT_TRUE(b.add(tagged_packet(static_cast<std::uint8_t>(i))));
    }
    for (const std::size_t i : {1u, 2u, 5u, 8u}) b.kill(i);

    std::vector<std::size_t> order;
    b.for_each_alive([&](std::size_t i, Packet& p) {
        EXPECT_EQ(p.data()[0], static_cast<std::uint8_t>(i));
        order.push_back(i);
    });
    // Reorder freedom: the visit is exactly the surviving indices,
    // ascending — no hole shifts a later packet forward.
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 3, 4, 6, 7, 9}));
}

TEST(PacketBatch, TakeMovesPacketOutAndMasksSlot)
{
    PacketBatch b;
    ASSERT_TRUE(b.add(tagged_packet(1)));
    ASSERT_TRUE(b.add(tagged_packet(2)));

    Packet p = b.take(1); // per-packet fallback path (recirc/upcall/ct)
    EXPECT_EQ(p.data()[0], 2);
    EXPECT_FALSE(b.alive(1));
    EXPECT_TRUE(b.alive(0));
    EXPECT_EQ(b.size(), 2u); // index space unchanged
}

TEST(PacketBatch, SidebandSlotsTrackIndices)
{
    PacketBatch b;
    ASSERT_TRUE(b.add(tagged_packet(1)));
    ASSERT_TRUE(b.add(tagged_packet(2)));
    b.key(0).in_port = 11;
    b.key(1).in_port = 22;
    b.hash(0) = 0xaaa;
    b.hash(1) = 0xbbb;

    b.kill(0); // killing the packet does not disturb the sideband
    EXPECT_EQ(b.key(1).in_port, 22u);
    EXPECT_EQ(b.hash(1), 0xbbbu);
}

// ---- san packet-ledger accounting --------------------------------------

TEST(PacketBatchSan, KillRetiresTheSkbAtTheDropPoint)
{
    ScopedHardened hardened;
    ScopedCollect collect;
    const std::uint64_t first = san::skb_next_id();

    PacketBatch b;
    ASSERT_TRUE(b.add(tracked_packet(1)));
    ASSERT_TRUE(b.add(tracked_packet(2)));
    EXPECT_EQ(san::skb_live_count(), 2u);

    // kill() destroys the slot's packet immediately — the ledger must
    // see the retire now, not at batch clear/recycle.
    b.kill(0);
    EXPECT_EQ(san::skb_live_count(), 1u);

    b.clear();
    EXPECT_EQ(san::skb_live_count(), 0u);
    EXPECT_EQ(san::skb_leak_check_since(first, OVSX_SITE), 0u);
    EXPECT_TRUE(collect.violations().empty());
}

TEST(PacketBatchSan, TakeTransfersOwnershipOutOfTheBatch)
{
    ScopedHardened hardened;
    ScopedCollect collect;
    const std::uint64_t first = san::skb_next_id();

    PacketBatch b;
    ASSERT_TRUE(b.add(tracked_packet(1)));
    {
        Packet p = b.take(0);
        EXPECT_EQ(san::skb_live_count(), 1u); // alive, owned by `p`
        b.clear();                            // must not retire p's record
        EXPECT_EQ(san::skb_live_count(), 1u);
    }
    EXPECT_EQ(san::skb_live_count(), 0u);
    EXPECT_EQ(san::skb_leak_check_since(first, OVSX_SITE), 0u);
    EXPECT_TRUE(collect.violations().empty());
}

TEST(PacketBatchSan, RecyclingTheSameBatchLeaksNothing)
{
    ScopedHardened hardened;
    ScopedCollect collect;
    const std::uint64_t first = san::skb_next_id();

    // The dpif spine reuses one scratch batch across every burst; cycle
    // it several times with mixed kill/take/clear outcomes and audit
    // the ledger after each recycle.
    PacketBatch b;
    for (int cycle = 0; cycle < 4; ++cycle) {
        for (std::size_t i = 0; i < PacketBatch::kCapacity; ++i) {
            ASSERT_TRUE(b.add(tracked_packet(static_cast<std::uint8_t>(i))));
        }
        b.kill(0);
        b.kill(PacketBatch::kCapacity - 1);
        { Packet fallback = b.take(5); } // destroyed at scope exit
        b.clear();
        EXPECT_TRUE(b.empty());
        EXPECT_EQ(san::skb_live_count(), 0u) << "cycle " << cycle;
        EXPECT_EQ(san::skb_leak_check_since(first, OVSX_SITE), 0u) << "cycle " << cycle;
    }
    EXPECT_TRUE(collect.violations().empty());
}

TEST(PacketBatchSan, AbandonedBatchRetiresPacketsOnDestruction)
{
    ScopedHardened hardened;
    ScopedCollect collect;
    const std::uint64_t first = san::skb_next_id();
    {
        PacketBatch b;
        ASSERT_TRUE(b.add(tracked_packet(1)));
        ASSERT_TRUE(b.add(tracked_packet(2)));
        // No clear(): destruction of the batch destroys the slots.
    }
    EXPECT_EQ(san::skb_live_count(), 0u);
    EXPECT_EQ(san::skb_leak_check_since(first, OVSX_SITE), 0u);
    EXPECT_TRUE(collect.violations().empty());
}

} // namespace
} // namespace ovsx
