#include <gtest/gtest.h>

#include "kern/kernel.h"
#include "kern/nic.h"
#include "kern/stack.h"
#include "kern/veth.h"
#include "net/builder.h"
#include "net/checksum.h"
#include "net/headers.h"

namespace ovsx::kern {
namespace {

using net::ipv4;

class StackTest : public ::testing::Test {
protected:
    Kernel kernel{"host"};
    sim::ExecContext ctx{"softirq", sim::CpuClass::Softirq};
};

TEST_F(StackTest, AddressAddsConnectedRoute)
{
    auto& nic = kernel.add_device<PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    kernel.stack().add_address(nic.ifindex(), ipv4(10, 0, 0, 1), 24);
    const auto route = kernel.stack().route_lookup(ipv4(10, 0, 0, 200));
    ASSERT_TRUE(route.has_value());
    EXPECT_EQ(route->ifindex, nic.ifindex());
    EXPECT_EQ(route->gateway, 0u);
    EXPECT_FALSE(kernel.stack().route_lookup(ipv4(10, 0, 1, 1)).has_value());
}

TEST_F(StackTest, LongestPrefixMatchWins)
{
    auto& nic0 = kernel.add_device<PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    auto& nic1 = kernel.add_device<PhysicalDevice>("eth1", net::MacAddr::from_id(2));
    kernel.stack().add_route(ipv4(10, 0, 0, 0), 8, ipv4(10, 255, 255, 254), nic0.ifindex());
    kernel.stack().add_route(ipv4(10, 1, 0, 0), 16, ipv4(10, 1, 255, 254), nic1.ifindex());
    auto r = kernel.stack().route_lookup(ipv4(10, 1, 2, 3));
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->ifindex, nic1.ifindex());
    r = kernel.stack().route_lookup(ipv4(10, 2, 2, 3));
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->ifindex, nic0.ifindex());
}

TEST_F(StackTest, DefaultRoute)
{
    auto& nic = kernel.add_device<PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    kernel.stack().add_route(0, 0, ipv4(10, 0, 0, 254), nic.ifindex());
    EXPECT_TRUE(kernel.stack().route_lookup(ipv4(8, 8, 8, 8)).has_value());
}

TEST_F(StackTest, ArpRequestGetsReply)
{
    auto& nic = kernel.add_device<PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    kernel.stack().add_address(nic.ifindex(), ipv4(10, 0, 0, 1), 24);

    net::Packet reply_out;
    bool got_reply = false;
    nic.connect_wire([&](net::Packet&& p) {
        reply_out = std::move(p);
        got_reply = true;
    });

    net::Packet req = net::build_arp(true, net::MacAddr::from_id(99), ipv4(10, 0, 0, 99),
                                     net::MacAddr(), ipv4(10, 0, 0, 1));
    nic.rx_from_wire(std::move(req));

    ASSERT_TRUE(got_reply);
    const auto* arp = reply_out.header_at<net::ArpHeader>(14);
    EXPECT_EQ(arp->oper(), 2);
    EXPECT_EQ(arp->spa(), ipv4(10, 0, 0, 1));
    EXPECT_EQ(arp->sha, nic.mac());
    // And the requester was learned.
    const auto learned = kernel.stack().neighbor_lookup(ipv4(10, 0, 0, 99));
    ASSERT_TRUE(learned.has_value());
    EXPECT_EQ(*learned, net::MacAddr::from_id(99));
}

TEST_F(StackTest, LocalDeliveryToBoundSocket)
{
    auto& nic = kernel.add_device<PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    kernel.stack().add_address(nic.ifindex(), ipv4(10, 0, 0, 1), 24);

    int delivered = 0;
    kernel.stack().bind(17, 7777,
                        [&](net::Packet&&, const net::FlowKey& key, sim::ExecContext&) {
                            ++delivered;
                            EXPECT_EQ(key.tp_dst, 7777);
                        });

    net::UdpSpec spec;
    spec.src_mac = net::MacAddr::from_id(9);
    spec.dst_mac = nic.mac();
    spec.src_ip = ipv4(10, 0, 0, 9);
    spec.dst_ip = ipv4(10, 0, 0, 1);
    spec.dst_port = 7777;
    nic.rx_from_wire(net::build_udp(spec));
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(kernel.stack().rx_delivered(), 1u);

    // Unbound port counts as a drop.
    spec.dst_port = 8888;
    nic.rx_from_wire(net::build_udp(spec));
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(kernel.stack().rx_dropped(), 1u);
}

TEST_F(StackTest, ForwardingDecrementsTtlAndRewritesMacs)
{
    auto& nic0 = kernel.add_device<PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    auto& nic1 = kernel.add_device<PhysicalDevice>("eth1", net::MacAddr::from_id(2));
    kernel.stack().add_address(nic0.ifindex(), ipv4(10, 0, 0, 1), 24);
    kernel.stack().add_address(nic1.ifindex(), ipv4(10, 0, 1, 1), 24);
    kernel.stack().add_neighbor(ipv4(10, 0, 1, 50), net::MacAddr::from_id(50), nic1.ifindex());
    kernel.stack().set_forwarding(true);

    net::Packet forwarded;
    bool got = false;
    nic1.connect_wire([&](net::Packet&& p) {
        forwarded = std::move(p);
        got = true;
    });

    net::UdpSpec spec;
    spec.src_mac = net::MacAddr::from_id(9);
    spec.dst_mac = nic0.mac();
    spec.src_ip = ipv4(10, 0, 0, 9);
    spec.dst_ip = ipv4(10, 0, 1, 50);
    spec.ttl = 10;
    nic0.rx_from_wire(net::build_udp(spec));

    ASSERT_TRUE(got);
    const auto* ip = forwarded.header_at<net::Ipv4Header>(14);
    EXPECT_EQ(ip->ttl, 9);
    EXPECT_EQ(net::internet_checksum({forwarded.data() + 14, 20}), 0);
    const auto* eth = forwarded.header_at<net::EthernetHeader>(0);
    EXPECT_EQ(eth->src, nic1.mac());
    EXPECT_EQ(eth->dst, net::MacAddr::from_id(50));
    EXPECT_EQ(kernel.stack().rx_forwarded(), 1u);
}

TEST_F(StackTest, TtlExpiryDrops)
{
    auto& nic0 = kernel.add_device<PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    auto& nic1 = kernel.add_device<PhysicalDevice>("eth1", net::MacAddr::from_id(2));
    kernel.stack().add_address(nic0.ifindex(), ipv4(10, 0, 0, 1), 24);
    kernel.stack().add_address(nic1.ifindex(), ipv4(10, 0, 1, 1), 24);
    kernel.stack().add_neighbor(ipv4(10, 0, 1, 50), net::MacAddr::from_id(50), nic1.ifindex());
    kernel.stack().set_forwarding(true);

    net::UdpSpec spec;
    spec.dst_mac = nic0.mac();
    spec.src_ip = ipv4(10, 0, 0, 9);
    spec.dst_ip = ipv4(10, 0, 1, 50);
    spec.ttl = 1;
    nic0.rx_from_wire(net::build_udp(spec));
    EXPECT_EQ(kernel.stack().rx_forwarded(), 0u);
    EXPECT_EQ(kernel.stack().rx_dropped(), 1u);
}

TEST_F(StackTest, SendUdpRoutesAndResolves)
{
    auto& nic = kernel.add_device<PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    kernel.stack().add_address(nic.ifindex(), ipv4(10, 0, 0, 1), 24);
    kernel.stack().add_neighbor(ipv4(10, 0, 0, 2), net::MacAddr::from_id(2), nic.ifindex());

    net::Packet out;
    bool got = false;
    nic.connect_wire([&](net::Packet&& p) {
        out = std::move(p);
        got = true;
    });
    ASSERT_TRUE(kernel.stack().send_udp(ipv4(10, 0, 0, 2), 1234, 80, 100, ctx));
    ASSERT_TRUE(got);
    const auto key = net::parse_flow(out);
    EXPECT_EQ(key.nw_src, ipv4(10, 0, 0, 1));
    EXPECT_EQ(key.nw_dst, ipv4(10, 0, 0, 2));
    EXPECT_EQ(key.tp_dst, 80);
    EXPECT_EQ(key.dl_dst, net::MacAddr::from_id(2));
}

TEST_F(StackTest, SendToUnresolvedNeighborTriggersArp)
{
    auto& nic = kernel.add_device<PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    kernel.stack().add_address(nic.ifindex(), ipv4(10, 0, 0, 1), 24);

    net::Packet out;
    bool got = false;
    nic.connect_wire([&](net::Packet&& p) {
        out = std::move(p);
        got = true;
    });
    EXPECT_FALSE(kernel.stack().send_udp(ipv4(10, 0, 0, 2), 1234, 80, 100, ctx));
    ASSERT_TRUE(got); // the ARP request went out instead
    const auto key = net::parse_flow(out);
    EXPECT_EQ(key.dl_type, static_cast<std::uint16_t>(net::EtherType::Arp));
}

TEST_F(StackTest, NamespacesAreIsolated)
{
    const int ns = kernel.create_namespace("container0");
    auto [host_end, ct_end] = VethDevice::create_pair(kernel, "veth-h", "veth-c", 0, ns);
    kernel.stack(0).add_address(host_end->ifindex(), ipv4(172, 17, 0, 1), 24);
    kernel.stack(ns).add_address(ct_end->ifindex(), ipv4(172, 17, 0, 2), 24);

    // The container address is not local in the root namespace.
    EXPECT_FALSE(kernel.stack(0).is_local_address(ipv4(172, 17, 0, 2)));
    EXPECT_TRUE(kernel.stack(ns).is_local_address(ipv4(172, 17, 0, 2)));

    int delivered = 0;
    kernel.stack(ns).bind(17, 9000, [&](net::Packet&&, const net::FlowKey&, sim::ExecContext&) {
        ++delivered;
    });
    kernel.stack(0).add_neighbor(ipv4(172, 17, 0, 2), ct_end->mac(), host_end->ifindex());
    ASSERT_TRUE(kernel.stack(0).send_udp(ipv4(172, 17, 0, 2), 1111, 9000, 64, ctx));
    EXPECT_EQ(delivered, 1);
}

TEST_F(StackTest, ChangeListenersFire)
{
    auto& nic = kernel.add_device<PhysicalDevice>("eth0", net::MacAddr::from_id(1));
    int route_changes = 0, neigh_changes = 0;
    kernel.stack().add_change_listener([&](const char* table) {
        if (std::string(table) == "route") ++route_changes;
        if (std::string(table) == "neighbor") ++neigh_changes;
    });
    kernel.stack().add_address(nic.ifindex(), ipv4(10, 0, 0, 1), 24);
    kernel.stack().add_route(0, 0, ipv4(10, 0, 0, 254), nic.ifindex());
    kernel.stack().add_neighbor(ipv4(10, 0, 0, 254), net::MacAddr::from_id(3), nic.ifindex());
    EXPECT_EQ(route_changes, 2); // connected + default
    EXPECT_EQ(neigh_changes, 1);
}

} // namespace
} // namespace ovsx::kern
