#include <gtest/gtest.h>

#include "ebpf/map.h"

namespace ovsx::ebpf {
namespace {

TEST(Map, HashBasics)
{
    Map m(MapType::Hash, "h", 4, 8, 4);
    const std::uint32_t k1 = 1, k2 = 2;
    EXPECT_TRUE(m.update_kv(k1, std::uint64_t{100}));
    EXPECT_TRUE(m.update_kv(k2, std::uint64_t{200}));
    EXPECT_EQ(m.lookup_kv<std::uint64_t>(k1).value(), 100u);
    EXPECT_EQ(m.lookup_kv<std::uint64_t>(k2).value(), 200u);
    EXPECT_EQ(m.size(), 2u);
    EXPECT_FALSE(m.lookup_kv<std::uint64_t>(std::uint32_t{3}).has_value());
}

TEST(Map, HashUpdateReplaces)
{
    Map m(MapType::Hash, "h", 4, 8, 4);
    const std::uint32_t k = 7;
    m.update_kv(k, std::uint64_t{1});
    m.update_kv(k, std::uint64_t{2});
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(m.lookup_kv<std::uint64_t>(k).value(), 2u);
}

TEST(Map, HashCapacityEnforced)
{
    Map m(MapType::Hash, "h", 4, 4, 2);
    const std::uint32_t a = 1, b = 2, c = 3;
    EXPECT_TRUE(m.update_kv(a, std::uint32_t{1}));
    EXPECT_TRUE(m.update_kv(b, std::uint32_t{2}));
    EXPECT_FALSE(m.update_kv(c, std::uint32_t{3})); // full
    // Replacing an existing key still works at capacity.
    EXPECT_TRUE(m.update_kv(a, std::uint32_t{9}));
}

TEST(Map, HashErase)
{
    Map m(MapType::Hash, "h", 4, 4, 4);
    const std::uint32_t k = 5;
    m.update_kv(k, std::uint32_t{1});
    EXPECT_TRUE(m.erase({reinterpret_cast<const std::uint8_t*>(&k), 4}));
    EXPECT_FALSE(m.erase({reinterpret_cast<const std::uint8_t*>(&k), 4}));
    EXPECT_FALSE(m.lookup_kv<std::uint32_t>(k).has_value());
}

TEST(Map, ValuePointerStableAcrossInserts)
{
    // Hash values are boxed: pointers stay valid while other keys churn
    // (eBPF programs hold value pointers across helper calls).
    Map m(MapType::Hash, "h", 4, 4, 1024);
    const std::uint32_t k = 42;
    m.update_kv(k, std::uint32_t{7});
    auto* p = m.lookup({reinterpret_cast<const std::uint8_t*>(&k), 4});
    ASSERT_NE(p, nullptr);
    for (std::uint32_t i = 100; i < 600; ++i) m.update_kv(i, i);
    auto* p2 = m.lookup({reinterpret_cast<const std::uint8_t*>(&k), 4});
    EXPECT_EQ(p, p2);
}

TEST(Map, ArraySemantics)
{
    Map m(MapType::Array, "a", 4, 4, 8);
    // Arrays are pre-populated with zeroes; every slot "exists".
    const std::uint32_t k0 = 0, k7 = 7, k8 = 8;
    EXPECT_NE(m.lookup({reinterpret_cast<const std::uint8_t*>(&k0), 4}), nullptr);
    EXPECT_EQ(m.lookup_kv<std::uint32_t>(k0).value(), 0u);
    EXPECT_TRUE(m.update_kv(k7, std::uint32_t{70}));
    EXPECT_EQ(m.lookup_kv<std::uint32_t>(k7).value(), 70u);
    // Out of range is a miss, not a crash.
    EXPECT_EQ(m.lookup({reinterpret_cast<const std::uint8_t*>(&k8), 4}), nullptr);
    EXPECT_FALSE(m.update_kv(k8, std::uint32_t{1}));
}

TEST(Map, ArrayEraseZeroes)
{
    Map m(MapType::DevMap, "d", 4, 4, 4);
    const std::uint32_t k = 2;
    m.update_kv(k, std::uint32_t{42});
    EXPECT_TRUE(m.erase({reinterpret_cast<const std::uint8_t*>(&k), 4}));
    EXPECT_EQ(m.lookup_kv<std::uint32_t>(k).value(), 0u); // zeroed, still present
}

TEST(Map, KeySizeMismatchRejected)
{
    Map m(MapType::Hash, "h", 8, 4, 4);
    const std::uint32_t small = 1;
    EXPECT_EQ(m.lookup({reinterpret_cast<const std::uint8_t*>(&small), 4}), nullptr);
    EXPECT_FALSE(m.update({reinterpret_cast<const std::uint8_t*>(&small), 4},
                          {reinterpret_cast<const std::uint8_t*>(&small), 4}));
}

TEST(Map, ArrayFamilyRequiresU32Keys)
{
    EXPECT_THROW(Map(MapType::Array, "a", 8, 4, 4), std::invalid_argument);
    EXPECT_THROW(Map(MapType::XskMap, "x", 2, 4, 4), std::invalid_argument);
    EXPECT_NO_THROW(Map(MapType::Hash, "h", 20, 4, 4));
}

TEST(Map, ZeroGeometryRejected)
{
    EXPECT_THROW(Map(MapType::Hash, "h", 0, 4, 4), std::invalid_argument);
    EXPECT_THROW(Map(MapType::Hash, "h", 4, 0, 4), std::invalid_argument);
    EXPECT_THROW(Map(MapType::Hash, "h", 4, 4, 0), std::invalid_argument);
}

// Property sweep: hash map behaves like a std::map reference model
// across a few hundred mixed operations, for several key widths.
class MapModelProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MapModelProperty, MatchesReferenceModel)
{
    const std::uint32_t key_size = GetParam();
    Map m(MapType::Hash, "h", key_size, 8, 256);
    std::map<std::vector<std::uint8_t>, std::uint64_t> model;
    std::uint64_t seed = 0x1234;
    auto next = [&] {
        seed = seed * 6364136223846793005ULL + 1;
        return seed >> 33;
    };
    for (int op = 0; op < 500; ++op) {
        std::vector<std::uint8_t> key(key_size);
        for (auto& b : key) b = static_cast<std::uint8_t>(next() % 7); // collisions likely
        const std::uint64_t val = next();
        switch (next() % 3) {
        case 0: { // update
            const bool ok =
                m.update(key, {reinterpret_cast<const std::uint8_t*>(&val), 8});
            if (ok) model[key] = val;
            break;
        }
        case 1: { // erase
            const bool ours = m.erase(key);
            const bool theirs = model.erase(key) > 0;
            ASSERT_EQ(ours, theirs);
            break;
        }
        default: { // lookup
            auto* p = m.lookup(key);
            auto it = model.find(key);
            ASSERT_EQ(p != nullptr, it != model.end());
            if (p) {
                std::uint64_t got;
                std::memcpy(&got, p, 8);
                ASSERT_EQ(got, it->second);
            }
        }
        }
        ASSERT_EQ(m.size(), model.size());
    }
}

INSTANTIATE_TEST_SUITE_P(KeyWidths, MapModelProperty, ::testing::Values(1u, 4u, 8u, 20u),
                         [](const auto& info) {
                             return "key" + std::to_string(info.param);
                         });

} // namespace
} // namespace ovsx::ebpf
