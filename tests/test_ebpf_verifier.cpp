#include <gtest/gtest.h>

#include "ebpf/programs.h"
#include "ebpf/verifier.h"

namespace ovsx::ebpf {
namespace {

TEST(Verifier, AcceptsTrivialPrograms)
{
    EXPECT_TRUE(verify(xdp_pass_all()));
    EXPECT_TRUE(verify(xdp_drop_all()));
}

TEST(Verifier, AcceptsAllCannedPrograms)
{
    auto l2 = std::make_shared<Map>(MapType::Hash, "l2", 8, 4, 128);
    auto xsk = std::make_shared<Map>(MapType::XskMap, "xsk", 4, 4, 16);
    auto dev = std::make_shared<Map>(MapType::DevMap, "dev", 4, 4, 16);
    auto ip = std::make_shared<Map>(MapType::Hash, "ip", 4, 4, 128);
    auto backends = std::make_shared<Map>(MapType::Array, "be", 4, 4, 8);

    for (const auto& [name, prog] : {
             std::pair{"parse_drop", xdp_parse_drop()},
             std::pair{"parse_lookup_drop", xdp_parse_lookup_drop(l2)},
             std::pair{"swap_macs_tx", xdp_swap_macs_tx()},
             std::pair{"redirect_to_xsk", xdp_redirect_to_xsk(xsk)},
             std::pair{"container_bypass", xdp_container_bypass(ip, dev, xsk)},
             std::pair{"l4_lb", xdp_l4_lb(80, backends, xsk)},
             std::pair{"steer_mgmt", xdp_steer_mgmt_to_stack(22, xsk)},
         }) {
        const auto res = verify(prog);
        EXPECT_TRUE(res.ok) << name << ": " << res.error;
    }
}

TEST(Verifier, RejectsEmptyProgram)
{
    Program p;
    EXPECT_FALSE(verify(p));
}

TEST(Verifier, RejectsOversizedProgram)
{
    ProgramBuilder b;
    for (int i = 0; i < kMaxInsns + 1; ++i) b.mov_imm(R0, 0);
    b.exit();
    const auto res = verify(b.build());
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("too large"), std::string::npos);
}

TEST(Verifier, RejectsBackEdges)
{
    // A loop: the defining restriction that killed the eBPF datapath's
    // megaflow cache (§2.2.2).
    ProgramBuilder b;
    b.mov_imm(R0, 1);
    Program p = b.build();
    p.insns.push_back({Op::Ja, 0, 0, -2, 0});
    p.insns.push_back({Op::Exit, 0, 0, 0, 0});
    const auto res = verify(p);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("back-edge"), std::string::npos);
}

TEST(Verifier, RejectsJumpOutOfBounds)
{
    Program p;
    p.insns.push_back({Op::Ja, 0, 0, 100, 0});
    p.insns.push_back({Op::Exit, 0, 0, 0, 0});
    EXPECT_FALSE(verify(p).ok);
}

TEST(Verifier, RejectsReadOfUninitializedRegister)
{
    ProgramBuilder b;
    b.mov_reg(R0, R5).exit();
    const auto res = verify(b.build());
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("uninitialized"), std::string::npos);
}

TEST(Verifier, RejectsWriteToFramePointer)
{
    ProgramBuilder b;
    b.mov_imm(R10, 0).mov_imm(R0, 1).exit();
    const auto res = verify(b.build());
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("r10"), std::string::npos);
}

TEST(Verifier, RejectsExitWithoutR0)
{
    ProgramBuilder b;
    b.exit();
    EXPECT_FALSE(verify(b.build()).ok);
}

TEST(Verifier, RejectsPacketAccessWithoutBoundsCheck)
{
    ProgramBuilder b;
    b.mov_reg(R6, R1)
        .ldxdw(R2, R6, 0) // data
        .ldxb(R0, R2, 0)  // no proof that even 1 byte exists
        .exit();
    const auto res = verify(b.build());
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("bounds"), std::string::npos);
}

TEST(Verifier, AcceptsPacketAccessAfterBoundsCheck)
{
    ProgramBuilder b;
    b.mov_reg(R6, R1)
        .ldxdw(R2, R6, 0)
        .ldxdw(R3, R6, 8)
        .mov_reg(R4, R2)
        .add_imm(R4, 14)
        .jgt_reg(R4, R3, "out")
        .ldxh(R0, R2, 12)
        .exit()
        .label("out")
        .mov_imm(R0, 1)
        .exit();
    const auto res = verify(b.build());
    EXPECT_TRUE(res.ok) << res.error;
}

TEST(Verifier, BoundsProofDoesNotLeakToTakenBranch)
{
    // On the *taken* branch of `if (p+14 > end) goto`, no bytes are proven.
    ProgramBuilder b;
    b.mov_reg(R6, R1)
        .ldxdw(R2, R6, 0)
        .ldxdw(R3, R6, 8)
        .mov_reg(R4, R2)
        .add_imm(R4, 14)
        .jgt_reg(R4, R3, "short")
        .mov_imm(R0, 1)
        .exit()
        .label("short")
        .ldxb(R0, R2, 0) // illegal: packet may be empty here
        .exit();
    EXPECT_FALSE(verify(b.build()).ok);
}

TEST(Verifier, RejectsAccessBeyondProvenBounds)
{
    ProgramBuilder b;
    b.mov_reg(R6, R1)
        .ldxdw(R2, R6, 0)
        .ldxdw(R3, R6, 8)
        .mov_reg(R4, R2)
        .add_imm(R4, 14)
        .jgt_reg(R4, R3, "out")
        .ldxw(R0, R2, 12) // needs bytes 12..16 but only 14 proven
        .exit()
        .label("out")
        .mov_imm(R0, 1)
        .exit();
    EXPECT_FALSE(verify(b.build()).ok);
}

TEST(Verifier, RejectsMapValueDerefWithoutNullCheck)
{
    auto map = std::make_shared<Map>(MapType::Hash, "m", 4, 8, 8);
    ProgramBuilder b;
    const int fd = b.add_map(map);
    b.stw(R10, -4, 1)
        .load_map_fd(R1, fd)
        .mov_reg(R2, R10)
        .add_imm(R2, -4)
        .call(HelperId::MapLookup)
        .ldxdw(R0, R0, 0) // missing null check
        .exit();
    const auto res = verify(b.build());
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("null"), std::string::npos);
}

TEST(Verifier, AcceptsMapValueDerefAfterNullCheck)
{
    auto map = std::make_shared<Map>(MapType::Hash, "m", 4, 8, 8);
    ProgramBuilder b;
    const int fd = b.add_map(map);
    b.stw(R10, -4, 1)
        .load_map_fd(R1, fd)
        .mov_reg(R2, R10)
        .add_imm(R2, -4)
        .call(HelperId::MapLookup)
        .jeq_imm(R0, 0, "miss")
        .ldxdw(R0, R0, 0)
        .exit()
        .label("miss")
        .mov_imm(R0, 0)
        .exit();
    const auto res = verify(b.build());
    EXPECT_TRUE(res.ok) << res.error;
}

TEST(Verifier, RejectsMapValueAccessOutOfBounds)
{
    auto map = std::make_shared<Map>(MapType::Hash, "m", 4, 8, 8);
    ProgramBuilder b;
    const int fd = b.add_map(map);
    b.stw(R10, -4, 1)
        .load_map_fd(R1, fd)
        .mov_reg(R2, R10)
        .add_imm(R2, -4)
        .call(HelperId::MapLookup)
        .jeq_imm(R0, 0, "miss")
        .ldxdw(R0, R0, 8) // value is 8 bytes; offset 8 reads past it
        .exit()
        .label("miss")
        .mov_imm(R0, 0)
        .exit();
    EXPECT_FALSE(verify(b.build()).ok);
}

TEST(Verifier, RejectsUninitializedStackRead)
{
    ProgramBuilder b;
    b.ldxdw(R0, R10, -8).exit();
    const auto res = verify(b.build());
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("stack"), std::string::npos);
}

TEST(Verifier, RejectsMapLookupWithNonStackKey)
{
    auto map = std::make_shared<Map>(MapType::Hash, "m", 4, 8, 8);
    ProgramBuilder b;
    const int fd = b.add_map(map);
    b.load_map_fd(R1, fd)
        .mov_imm(R2, 0x1000) // scalar, not a stack pointer
        .call(HelperId::MapLookup)
        .mov_imm(R0, 0)
        .exit();
    EXPECT_FALSE(verify(b.build()).ok);
}

TEST(Verifier, RejectsRedirectOnNonRedirectMap)
{
    auto map = std::make_shared<Map>(MapType::Hash, "m", 4, 4, 8);
    ProgramBuilder b;
    const int fd = b.add_map(map);
    b.load_map_fd(R1, fd).mov_imm(R2, 0).mov_imm(R3, 0).call(HelperId::RedirectMap).exit();
    const auto res = verify(b.build());
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("devmap"), std::string::npos);
}

TEST(Verifier, CallsClobberCallerSavedRegisters)
{
    // r2 must be unreadable after a call.
    auto xsk = std::make_shared<Map>(MapType::XskMap, "x", 4, 4, 4);
    ProgramBuilder b;
    const int fd = b.add_map(xsk);
    b.load_map_fd(R1, fd)
        .mov_imm(R2, 0)
        .mov_imm(R3, 0)
        .call(HelperId::RedirectMap)
        .mov_reg(R0, R2) // r2 was clobbered
        .exit();
    const auto res = verify(b.build());
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("uninitialized"), std::string::npos);
}

TEST(Verifier, AdjustHeadInvalidatesPacketPointers)
{
    ProgramBuilder b;
    b.mov_reg(R6, R1)
        .ldxdw(R7, R6, 0)
        .ldxdw(R3, R6, 8)
        .mov_reg(R4, R7)
        .add_imm(R4, 14)
        .jgt_reg(R4, R3, "out")
        .mov_reg(R1, R6)
        .mov_imm(R2, -16)
        .call(HelperId::XdpAdjustHead)
        .ldxb(R0, R7, 0) // stale packet pointer
        .exit()
        .label("out")
        .mov_imm(R0, 1)
        .exit();
    EXPECT_FALSE(verify(b.build()).ok);
}

TEST(Verifier, RejectsFallOffEnd)
{
    ProgramBuilder b;
    b.mov_imm(R0, 1); // no exit
    EXPECT_FALSE(verify(b.build()).ok);
}

TEST(Verifier, RejectsUnknownMapFd)
{
    ProgramBuilder b;
    b.load_map_fd(R1, 3).mov_imm(R0, 0).exit();
    EXPECT_FALSE(verify(b.build()).ok);
}

TEST(Verifier, MergesStatesAtJoinPoints)
{
    // Two paths assign different types to r5; reading it after the join
    // must be rejected, but r0 set on both paths is fine.
    ProgramBuilder b;
    b.mov_reg(R6, R1)
        .ldxdw(R2, R6, 0)
        .mov_imm(R4, 1)
        .jeq_imm(R4, 1, "a")
        .mov_reg(R5, R2) // r5 = packet pointer
        .mov_imm(R0, 1)
        .ja("join")
        .label("a")
        .mov_imm(R5, 7) // r5 = scalar
        .mov_imm(R0, 2)
        .label("join")
        .mov_reg(R0, R5) // incompatible merge -> unreadable
        .exit();
    const auto res = verify(b.build());
    EXPECT_FALSE(res.ok);
}

} // namespace
} // namespace ovsx::ebpf
