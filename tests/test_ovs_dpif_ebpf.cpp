#include <gtest/gtest.h>

#include "kern/kernel.h"
#include "kern/nic.h"
#include "net/builder.h"
#include "net/headers.h"
#include "ovs/dpif_ebpf.h"

namespace ovsx::ovs {
namespace {

using net::ipv4;

net::Packet udp64(std::uint16_t sport = 1000, std::uint32_t dst = ipv4(10, 0, 0, 2))
{
    net::UdpSpec spec;
    spec.src_mac = net::MacAddr::from_id(1);
    spec.dst_mac = net::MacAddr::from_id(2);
    spec.src_ip = ipv4(10, 0, 0, 1);
    spec.dst_ip = dst;
    spec.src_port = sport;
    spec.dst_port = 2000;
    return net::build_udp(spec);
}

class DpifEbpfTest : public ::testing::Test {
protected:
    void SetUp() override
    {
        nic0 = &kernel.add_device<kern::PhysicalDevice>("eth0", net::MacAddr::from_id(1));
        nic1 = &kernel.add_device<kern::PhysicalDevice>("eth1", net::MacAddr::from_id(2));
        nic1->connect_wire([this](net::Packet&& p) { out1.push_back(std::move(p)); });
        dpif = std::make_unique<DpifEbpf>(kernel);
        p0 = dpif->add_port(*nic0);
        p1 = dpif->add_port(*nic1);
    }

    net::FlowKey key_for(net::Packet pkt)
    {
        pkt.meta().in_port = p0;
        return net::parse_flow(pkt);
    }

    kern::Kernel kernel;
    kern::PhysicalDevice* nic0 = nullptr;
    kern::PhysicalDevice* nic1 = nullptr;
    std::unique_ptr<DpifEbpf> dpif;
    std::uint32_t p0 = 0, p1 = 0;
    std::vector<net::Packet> out1;
};

TEST_F(DpifEbpfTest, ExactMatchFlowForwards)
{
    dpif->flow_put(key_for(udp64()), DpifEbpf::required_mask(),
                   {kern::OdpAction::output(p1)});
    nic0->rx_from_wire(udp64());
    EXPECT_EQ(dpif->hits(), 1u);
    ASSERT_EQ(out1.size(), 1u);
    EXPECT_EQ(net::parse_flow(out1[0]).tp_src, 1000);
}

TEST_F(DpifEbpfTest, MicroflowsNeedIndividualEntries)
{
    // The defining limitation: no wildcarding. Installing one flow only
    // covers one exact 5-tuple.
    dpif->flow_put(key_for(udp64(1000)), DpifEbpf::required_mask(),
                   {kern::OdpAction::output(p1)});
    nic0->rx_from_wire(udp64(1000));
    nic0->rx_from_wire(udp64(1001)); // same "logical" flow, different tuple
    EXPECT_EQ(dpif->hits(), 1u);
    EXPECT_EQ(dpif->misses(), 1u);
    EXPECT_EQ(out1.size(), 1u);
}

TEST_F(DpifEbpfTest, WildcardMasksRejected)
{
    net::FlowMask wild;
    wild.bits.in_port = 0xffffffff; // a megaflow-style mask
    EXPECT_THROW(dpif->flow_put(key_for(udp64()), wild, {kern::OdpAction::output(p1)}),
                 std::invalid_argument);
    // Even a slightly wider mask (missing tp_src) is inexpressible.
    net::FlowMask almost = DpifEbpf::required_mask();
    almost.bits.tp_src = 0;
    EXPECT_THROW(dpif->flow_put(key_for(udp64()), almost, {kern::OdpAction::output(p1)}),
                 std::invalid_argument);
}

TEST_F(DpifEbpfTest, MissesUpcall)
{
    int upcalls = 0;
    dpif->set_upcall_handler([&](std::uint32_t in_port, net::Packet&& pkt,
                                 const net::FlowKey& key, sim::ExecContext& ctx) {
        ++upcalls;
        EXPECT_EQ(in_port, p0);
        dpif->flow_put(key, DpifEbpf::required_mask(), {kern::OdpAction::output(p1)});
        dpif->execute(std::move(pkt), {kern::OdpAction::output(p1)}, ctx);
    });
    nic0->rx_from_wire(udp64());
    nic0->rx_from_wire(udp64());
    EXPECT_EQ(upcalls, 1);
    EXPECT_EQ(out1.size(), 2u);
}

TEST_F(DpifEbpfTest, NonIpv4AlwaysMissesTheMap)
{
    dpif->flow_put(key_for(udp64()), DpifEbpf::required_mask(),
                   {kern::OdpAction::output(p1)});
    int upcalls = 0;
    dpif->set_upcall_handler(
        [&](std::uint32_t, net::Packet&&, const net::FlowKey&, sim::ExecContext&) {
            ++upcalls;
        });
    nic0->rx_from_wire(net::build_arp(true, net::MacAddr::from_id(1), ipv4(1, 1, 1, 1),
                                      net::MacAddr(), ipv4(2, 2, 2, 2)));
    EXPECT_EQ(upcalls, 1); // ARP cannot be keyed -> slow path
}

TEST_F(DpifEbpfTest, SandboxCostIsCharged)
{
    dpif->flow_put(key_for(udp64()), DpifEbpf::required_mask(),
                   {kern::OdpAction::output(p1)});
    nic0->rx_from_wire(udp64());
    // The TC program runs as interpreted bytecode: softirq time well
    // above the bare kernel-module cost.
    EXPECT_GT(nic0->softirq_ctx(0).total_busy(), 300);
}

TEST_F(DpifEbpfTest, FlushClearsFlows)
{
    dpif->flow_put(key_for(udp64()), DpifEbpf::required_mask(),
                   {kern::OdpAction::output(p1)});
    EXPECT_EQ(dpif->flow_count(), 1u);
    dpif->flow_flush();
    EXPECT_EQ(dpif->flow_count(), 0u);
    nic0->rx_from_wire(udp64());
    EXPECT_EQ(dpif->misses(), 1u);
    EXPECT_TRUE(out1.empty());
}

TEST_F(DpifEbpfTest, ManyMicroflowsScale)
{
    // 1000 exact-match entries, all resolvable through the eBPF map.
    for (std::uint16_t s = 0; s < 1000; ++s) {
        dpif->flow_put(key_for(udp64(s)), DpifEbpf::required_mask(),
                       {kern::OdpAction::output(p1)});
    }
    EXPECT_EQ(dpif->flow_count(), 1000u);
    for (std::uint16_t s = 0; s < 1000; ++s) nic0->rx_from_wire(udp64(s));
    EXPECT_EQ(dpif->hits(), 1000u);
    EXPECT_EQ(out1.size(), 1000u);
}

TEST_F(DpifEbpfTest, UnsupportedActionsDrop)
{
    // Recirc / tunnels are not expressible in this datapath (§2.2.2).
    dpif->flow_put(key_for(udp64()), DpifEbpf::required_mask(),
                   {kern::OdpAction::recirc(1), kern::OdpAction::output(p1)});
    nic0->rx_from_wire(udp64());
    EXPECT_TRUE(out1.empty());
}

} // namespace
} // namespace ovsx::ovs
