#include <gtest/gtest.h>

#include "gen/testbed.h"
#include "net/builder.h"
#include "net/headers.h"
#include "kern/nic.h"
#include "nsx/nsx.h"
#include "ovs/dpif_netdev.h"
#include "ovs/netdev_afxdp.h"
#include "ovs/netdev_vhost.h"

namespace ovsx::nsx {
namespace {

using net::ipv4;

// Small-scale NSX deployment (fewer ACL rules for test speed) with two
// local vhost VMs and a Geneve uplink.
class NsxTest : public ::testing::Test {
protected:
    void SetUp() override
    {
        uplink = &host.add_device<kern::PhysicalDevice>("uplink0", net::MacAddr::from_id(1));
        host.stack().add_address(uplink->ifindex(), ipv4(172, 16, 0, 1), 16);
        host.stack().add_neighbor(ipv4(172, 16, 1, 1), net::MacAddr::from_id(0xb0),
                                  uplink->ifindex());
        uplink->connect_wire([this](net::Packet&& p) { wire_out.push_back(std::move(p)); });

        auto dpif = std::make_unique<ovs::DpifNetdev>(host);
        dpif_raw = dpif.get();
        uplink_port = dpif->add_port(std::make_unique<ovs::NetdevAfxdp>(*uplink));
        tunnel_port = dpif->add_tunnel_port("geneve0", net::TunnelType::Geneve,
                                            ipv4(172, 16, 0, 1));

        vm_a = std::make_unique<gen::VhostVm>(host.costs(), "vmA",
                                              net::MacAddr::from_id(0x5000), ipv4(10, 1, 0, 10));
        vm_b = std::make_unique<gen::VhostVm>(host.costs(), "vmB",
                                              net::MacAddr::from_id(0x5001), ipv4(10, 1, 0, 11));
        port_a = dpif->add_port(std::make_unique<ovs::NetdevVhost>("vhost-a", vm_a->channel()));
        port_b = dpif->add_port(std::make_unique<ovs::NetdevVhost>("vhost-b", vm_b->channel()));
        pmd = dpif->add_pmd("pmd0");
        dpif->pmd_assign(pmd, uplink_port, 0);
        dpif->pmd_assign(pmd, port_a, 0);
        dpif->pmd_assign(pmd, port_b, 0);

        vswitch = std::make_unique<ovs::VSwitch>(std::move(dpif));

        cfg = make_production_config(ipv4(172, 16, 0, 1), tunnel_port, {port_a, port_b},
                                     /*local_vm_count=*/1, /*total_vms=*/15, /*tunnels=*/291);
        cfg.target_rules = 4000; // keep the unit test quick; the bench uses 103302
        // Align the first two interface specs with the actual VMs.
        cfg.vms[0].mac = vm_a->vnic().mac();
        cfg.vms[0].ip = vm_a->ip();
        cfg.vms[1].mac = vm_b->vnic().mac();
        cfg.vms[1].ip = vm_b->ip();
        agent = std::make_unique<NsxAgent>(*vswitch, cfg);
        agent->deploy();

        // Guest ARP entries so VMs can address each other directly.
        vm_a->kernel().stack().add_neighbor(vm_b->ip(), vm_b->vnic().mac(), 1);
        vm_b->kernel().stack().add_neighbor(vm_a->ip(), vm_a->vnic().mac(), 1);
    }

    kern::Kernel host{"hostA"};
    kern::PhysicalDevice* uplink = nullptr;
    ovs::DpifNetdev* dpif_raw = nullptr;
    std::unique_ptr<ovs::VSwitch> vswitch;
    std::unique_ptr<gen::VhostVm> vm_a, vm_b;
    std::unique_ptr<NsxAgent> agent;
    NsxConfig cfg;
    std::uint32_t uplink_port = 0, tunnel_port = 0, port_a = 0, port_b = 0;
    int pmd = 0;
    std::vector<net::Packet> wire_out;
};

TEST_F(NsxTest, RulesetShapeMatchesConfig)
{
    const auto stats = agent->stats();
    EXPECT_EQ(stats.tunnels, 291u);
    EXPECT_EQ(stats.vms, 15u);
    EXPECT_EQ(stats.rules, 4000u);
    EXPECT_GE(stats.matching_fields, 18);
    EXPECT_GE(stats.tables, 15u);
}

TEST_F(NsxTest, ProductionScaleRuleCount)
{
    // Full Table 3 scale (only built once here; the bench reuses it).
    cfg.target_rules = 103302;
    NsxAgent big(*vswitch, cfg);
    big.deploy();
    const auto stats = big.stats();
    EXPECT_EQ(stats.rules, 103302u);
    EXPECT_GE(stats.tables, 15u);
}

TEST_F(NsxTest, IntraHostVmToVmPassesFirewall)
{
    // VM A sends a UDP datagram to VM B through the full NSX pipeline.
    gen::Sink sink;
    gen::bind_udp_sink(vm_b->kernel().stack(), 7777, sink);

    ASSERT_TRUE(vm_a->kernel().stack().send_udp(vm_b->ip(), 1234, 7777, 64, vm_a->vcpu()));
    // The frame sits in the vhost ring; poll the PMD to run the pipeline.
    dpif_raw->pmd_poll_once(pmd);
    EXPECT_EQ(sink.packets, 1u);
    // Connection tracked in the VNI's zone.
    EXPECT_GE(dpif_raw->ct().size(), 1u);
    // The pipeline recirculated: at least one upcall per pass.
    EXPECT_GE(vswitch->upcalls_handled(), 2u);
}

TEST_F(NsxTest, SecondPacketUsesMegaflows)
{
    gen::Sink sink;
    gen::bind_udp_sink(vm_b->kernel().stack(), 7777, sink);
    vm_a->kernel().stack().send_udp(vm_b->ip(), 1234, 7777, 64, vm_a->vcpu());
    dpif_raw->pmd_poll_once(pmd);
    const auto upcalls_first = vswitch->upcalls_handled();
    ASSERT_EQ(sink.packets, 1u);

    vm_a->kernel().stack().send_udp(vm_b->ip(), 1234, 7777, 64, vm_a->vcpu());
    dpif_raw->pmd_poll_once(pmd);
    EXPECT_EQ(sink.packets, 2u);
    // Established path still upcalls once (new ct_state -> new megaflow),
    // then the third packet is pure fast path.
    vm_a->kernel().stack().send_udp(vm_b->ip(), 1234, 7777, 64, vm_a->vcpu());
    const auto upcalls_second = vswitch->upcalls_handled();
    dpif_raw->pmd_poll_once(pmd);
    EXPECT_EQ(sink.packets, 3u);
    EXPECT_EQ(vswitch->upcalls_handled(), upcalls_second);
    EXPECT_GE(upcalls_second, upcalls_first);
}

TEST_F(NsxTest, CrossHostTrafficIsGeneveEncapsulated)
{
    // Send to a remote VM (vm2's first interface lives behind a VTEP).
    const VmSpec* remote = nullptr;
    for (const auto& vm : cfg.vms) {
        if (vm.of_port == 0) {
            remote = &vm;
            break;
        }
    }
    ASSERT_NE(remote, nullptr);

    // Resolve the remote VTEP in the host kernel (the netlink replica
    // cache picks it up via the change listener).
    host.stack().add_neighbor(remote->remote_vtep, net::MacAddr::from_id(0xb0),
                              uplink->ifindex());
    // Address the remote VM's MAC directly; the guest needs an on-link
    // route to the other logical segment.
    vm_a->kernel().stack().add_route(ipv4(10, 0, 0, 0), 8, 0, 1);
    vm_a->kernel().stack().add_neighbor(remote->ip, remote->mac, 1);
    ASSERT_TRUE(vm_a->kernel().stack().send_udp(remote->ip, 999, 53, 64, vm_a->vcpu()));
    dpif_raw->pmd_poll_once(pmd);

    ASSERT_EQ(wire_out.size(), 1u);
    const auto outer = net::parse_flow(wire_out[0]);
    EXPECT_EQ(outer.tp_dst, net::kGenevePort);
    EXPECT_EQ(outer.nw_src, ipv4(172, 16, 0, 1));
    EXPECT_EQ(outer.nw_dst, remote->remote_vtep);
}

TEST_F(NsxTest, DisallowedTrafficIsDropped)
{
    // Source prefix outside every allow rule: firewall drops it.
    gen::Sink sink;
    gen::bind_udp_sink(vm_b->kernel().stack(), 7777, sink);
    net::UdpSpec spec;
    spec.src_mac = vm_a->vnic().mac();
    spec.dst_mac = vm_b->vnic().mac();
    spec.src_ip = ipv4(203, 0, 113, 9); // not in any allow prefix
    spec.dst_ip = vm_b->ip();
    spec.src_port = 1;
    spec.dst_port = 7777;
    net::Packet pkt = net::build_udp(spec);
    vm_a->vnic().transmit(std::move(pkt), vm_a->vcpu());
    dpif_raw->pmd_poll_once(pmd);
    EXPECT_EQ(sink.packets, 0u);
}

} // namespace
} // namespace ovsx::nsx
