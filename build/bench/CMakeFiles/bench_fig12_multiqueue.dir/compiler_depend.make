# Empty compiler generated dependencies file for bench_fig12_multiqueue.
# This may be replaced when dependencies are built.
