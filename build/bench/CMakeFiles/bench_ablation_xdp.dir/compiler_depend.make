# Empty compiler generated dependencies file for bench_ablation_xdp.
# This may be replaced when dependencies are built.
