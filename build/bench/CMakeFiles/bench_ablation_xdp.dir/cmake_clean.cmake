file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_xdp.dir/bench_ablation_xdp.cpp.o"
  "CMakeFiles/bench_ablation_xdp.dir/bench_ablation_xdp.cpp.o.d"
  "bench_ablation_xdp"
  "bench_ablation_xdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_xdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
