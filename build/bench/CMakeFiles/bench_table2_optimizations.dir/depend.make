# Empty dependencies file for bench_table2_optimizations.
# This may be replaced when dependencies are built.
