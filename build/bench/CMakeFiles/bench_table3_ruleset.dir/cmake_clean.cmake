file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_ruleset.dir/bench_table3_ruleset.cpp.o"
  "CMakeFiles/bench_table3_ruleset.dir/bench_table3_ruleset.cpp.o.d"
  "bench_table3_ruleset"
  "bench_table3_ruleset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_ruleset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
