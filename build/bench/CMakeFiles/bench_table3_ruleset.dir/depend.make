# Empty dependencies file for bench_table3_ruleset.
# This may be replaced when dependencies are built.
