# Empty dependencies file for bench_fig1_loc_churn.
# This may be replaced when dependencies are built.
