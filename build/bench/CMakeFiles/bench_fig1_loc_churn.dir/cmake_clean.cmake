file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_loc_churn.dir/bench_fig1_loc_churn.cpp.o"
  "CMakeFiles/bench_fig1_loc_churn.dir/bench_fig1_loc_churn.cpp.o.d"
  "bench_fig1_loc_churn"
  "bench_fig1_loc_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_loc_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
