# Empty compiler generated dependencies file for bench_ablation_caches.
# This may be replaced when dependencies are built.
