# Empty dependencies file for bench_table5_xdp_cost.
# This may be replaced when dependencies are built.
