# Empty compiler generated dependencies file for bench_fig9_forwarding_rate.
# This may be replaced when dependencies are built.
