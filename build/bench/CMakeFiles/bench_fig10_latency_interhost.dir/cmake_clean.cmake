file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_latency_interhost.dir/bench_fig10_latency_interhost.cpp.o"
  "CMakeFiles/bench_fig10_latency_interhost.dir/bench_fig10_latency_interhost.cpp.o.d"
  "bench_fig10_latency_interhost"
  "bench_fig10_latency_interhost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_latency_interhost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
