# Empty dependencies file for bench_fig8_tcp_throughput.
# This may be replaced when dependencies are built.
