file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_latency_container.dir/bench_fig11_latency_container.cpp.o"
  "CMakeFiles/bench_fig11_latency_container.dir/bench_fig11_latency_container.cpp.o.d"
  "bench_fig11_latency_container"
  "bench_fig11_latency_container.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_latency_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
