file(REMOVE_RECURSE
  "CMakeFiles/bench_sec33_virtual_devices.dir/bench_sec33_virtual_devices.cpp.o"
  "CMakeFiles/bench_sec33_virtual_devices.dir/bench_sec33_virtual_devices.cpp.o.d"
  "bench_sec33_virtual_devices"
  "bench_sec33_virtual_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec33_virtual_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
