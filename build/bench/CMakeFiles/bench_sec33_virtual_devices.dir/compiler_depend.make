# Empty compiler generated dependencies file for bench_sec33_virtual_devices.
# This may be replaced when dependencies are built.
