file(REMOVE_RECURSE
  "CMakeFiles/test_kern_conntrack.dir/test_kern_conntrack.cpp.o"
  "CMakeFiles/test_kern_conntrack.dir/test_kern_conntrack.cpp.o.d"
  "test_kern_conntrack"
  "test_kern_conntrack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kern_conntrack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
