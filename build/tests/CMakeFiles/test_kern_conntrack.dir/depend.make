# Empty dependencies file for test_kern_conntrack.
# This may be replaced when dependencies are built.
