file(REMOVE_RECURSE
  "CMakeFiles/test_ebpf_verifier.dir/test_ebpf_verifier.cpp.o"
  "CMakeFiles/test_ebpf_verifier.dir/test_ebpf_verifier.cpp.o.d"
  "test_ebpf_verifier"
  "test_ebpf_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ebpf_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
