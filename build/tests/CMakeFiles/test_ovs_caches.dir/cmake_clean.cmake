file(REMOVE_RECURSE
  "CMakeFiles/test_ovs_caches.dir/test_ovs_caches.cpp.o"
  "CMakeFiles/test_ovs_caches.dir/test_ovs_caches.cpp.o.d"
  "test_ovs_caches"
  "test_ovs_caches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ovs_caches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
