file(REMOVE_RECURSE
  "CMakeFiles/test_ovs_dpif_ebpf.dir/test_ovs_dpif_ebpf.cpp.o"
  "CMakeFiles/test_ovs_dpif_ebpf.dir/test_ovs_dpif_ebpf.cpp.o.d"
  "test_ovs_dpif_ebpf"
  "test_ovs_dpif_ebpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ovs_dpif_ebpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
