# Empty dependencies file for test_ovs_dpif_ebpf.
# This may be replaced when dependencies are built.
