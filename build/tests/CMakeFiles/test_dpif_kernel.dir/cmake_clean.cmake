file(REMOVE_RECURSE
  "CMakeFiles/test_dpif_kernel.dir/test_dpif_kernel.cpp.o"
  "CMakeFiles/test_dpif_kernel.dir/test_dpif_kernel.cpp.o.d"
  "test_dpif_kernel"
  "test_dpif_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpif_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
