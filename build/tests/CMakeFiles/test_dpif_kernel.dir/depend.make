# Empty dependencies file for test_dpif_kernel.
# This may be replaced when dependencies are built.
