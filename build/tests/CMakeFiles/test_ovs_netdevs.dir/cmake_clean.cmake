file(REMOVE_RECURSE
  "CMakeFiles/test_ovs_netdevs.dir/test_ovs_netdevs.cpp.o"
  "CMakeFiles/test_ovs_netdevs.dir/test_ovs_netdevs.cpp.o.d"
  "test_ovs_netdevs"
  "test_ovs_netdevs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ovs_netdevs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
