# Empty compiler generated dependencies file for test_ovs_netdevs.
# This may be replaced when dependencies are built.
