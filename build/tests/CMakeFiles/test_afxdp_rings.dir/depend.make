# Empty dependencies file for test_afxdp_rings.
# This may be replaced when dependencies are built.
