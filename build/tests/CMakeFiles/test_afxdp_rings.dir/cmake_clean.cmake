file(REMOVE_RECURSE
  "CMakeFiles/test_afxdp_rings.dir/test_afxdp_rings.cpp.o"
  "CMakeFiles/test_afxdp_rings.dir/test_afxdp_rings.cpp.o.d"
  "test_afxdp_rings"
  "test_afxdp_rings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_afxdp_rings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
