# Empty dependencies file for test_net_rewrite.
# This may be replaced when dependencies are built.
