file(REMOVE_RECURSE
  "CMakeFiles/test_net_rewrite.dir/test_net_rewrite.cpp.o"
  "CMakeFiles/test_net_rewrite.dir/test_net_rewrite.cpp.o.d"
  "test_net_rewrite"
  "test_net_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
