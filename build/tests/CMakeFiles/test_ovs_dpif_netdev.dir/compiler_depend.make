# Empty compiler generated dependencies file for test_ovs_dpif_netdev.
# This may be replaced when dependencies are built.
