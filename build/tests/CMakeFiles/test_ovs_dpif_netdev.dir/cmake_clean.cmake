file(REMOVE_RECURSE
  "CMakeFiles/test_ovs_dpif_netdev.dir/test_ovs_dpif_netdev.cpp.o"
  "CMakeFiles/test_ovs_dpif_netdev.dir/test_ovs_dpif_netdev.cpp.o.d"
  "test_ovs_dpif_netdev"
  "test_ovs_dpif_netdev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ovs_dpif_netdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
