file(REMOVE_RECURSE
  "CMakeFiles/test_kern_ovs_kmod.dir/test_kern_ovs_kmod.cpp.o"
  "CMakeFiles/test_kern_ovs_kmod.dir/test_kern_ovs_kmod.cpp.o.d"
  "test_kern_ovs_kmod"
  "test_kern_ovs_kmod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kern_ovs_kmod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
