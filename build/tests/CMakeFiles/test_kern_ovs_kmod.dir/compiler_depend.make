# Empty compiler generated dependencies file for test_kern_ovs_kmod.
# This may be replaced when dependencies are built.
