file(REMOVE_RECURSE
  "CMakeFiles/test_ovs_netlink_cache.dir/test_ovs_netlink_cache.cpp.o"
  "CMakeFiles/test_ovs_netlink_cache.dir/test_ovs_netlink_cache.cpp.o.d"
  "test_ovs_netlink_cache"
  "test_ovs_netlink_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ovs_netlink_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
