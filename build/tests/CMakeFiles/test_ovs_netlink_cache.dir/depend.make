# Empty dependencies file for test_ovs_netlink_cache.
# This may be replaced when dependencies are built.
