file(REMOVE_RECURSE
  "CMakeFiles/test_ovs_ct.dir/test_ovs_ct.cpp.o"
  "CMakeFiles/test_ovs_ct.dir/test_ovs_ct.cpp.o.d"
  "test_ovs_ct"
  "test_ovs_ct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ovs_ct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
