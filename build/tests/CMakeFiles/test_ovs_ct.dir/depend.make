# Empty dependencies file for test_ovs_ct.
# This may be replaced when dependencies are built.
