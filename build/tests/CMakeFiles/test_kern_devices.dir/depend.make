# Empty dependencies file for test_kern_devices.
# This may be replaced when dependencies are built.
