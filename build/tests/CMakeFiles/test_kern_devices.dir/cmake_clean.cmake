file(REMOVE_RECURSE
  "CMakeFiles/test_kern_devices.dir/test_kern_devices.cpp.o"
  "CMakeFiles/test_kern_devices.dir/test_kern_devices.cpp.o.d"
  "test_kern_devices"
  "test_kern_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kern_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
