file(REMOVE_RECURSE
  "CMakeFiles/test_ebpf_programs.dir/test_ebpf_programs.cpp.o"
  "CMakeFiles/test_ebpf_programs.dir/test_ebpf_programs.cpp.o.d"
  "test_ebpf_programs"
  "test_ebpf_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ebpf_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
