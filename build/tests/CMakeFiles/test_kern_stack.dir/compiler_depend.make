# Empty compiler generated dependencies file for test_kern_stack.
# This may be replaced when dependencies are built.
