file(REMOVE_RECURSE
  "CMakeFiles/test_kern_stack.dir/test_kern_stack.cpp.o"
  "CMakeFiles/test_kern_stack.dir/test_kern_stack.cpp.o.d"
  "test_kern_stack"
  "test_kern_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kern_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
