file(REMOVE_RECURSE
  "CMakeFiles/test_ebpf_maps.dir/test_ebpf_maps.cpp.o"
  "CMakeFiles/test_ebpf_maps.dir/test_ebpf_maps.cpp.o.d"
  "test_ebpf_maps"
  "test_ebpf_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ebpf_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
