# Empty compiler generated dependencies file for test_net_flow.
# This may be replaced when dependencies are built.
