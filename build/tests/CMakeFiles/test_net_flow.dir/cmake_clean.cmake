file(REMOVE_RECURSE
  "CMakeFiles/test_net_flow.dir/test_net_flow.cpp.o"
  "CMakeFiles/test_net_flow.dir/test_net_flow.cpp.o.d"
  "test_net_flow"
  "test_net_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
