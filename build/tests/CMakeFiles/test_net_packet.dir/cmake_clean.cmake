file(REMOVE_RECURSE
  "CMakeFiles/test_net_packet.dir/test_net_packet.cpp.o"
  "CMakeFiles/test_net_packet.dir/test_net_packet.cpp.o.d"
  "test_net_packet"
  "test_net_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
