file(REMOVE_RECURSE
  "CMakeFiles/test_net_tunnel.dir/test_net_tunnel.cpp.o"
  "CMakeFiles/test_net_tunnel.dir/test_net_tunnel.cpp.o.d"
  "test_net_tunnel"
  "test_net_tunnel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_tunnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
