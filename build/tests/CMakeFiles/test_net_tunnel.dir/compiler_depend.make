# Empty compiler generated dependencies file for test_net_tunnel.
# This may be replaced when dependencies are built.
