file(REMOVE_RECURSE
  "CMakeFiles/test_ebpf_vm.dir/test_ebpf_vm.cpp.o"
  "CMakeFiles/test_ebpf_vm.dir/test_ebpf_vm.cpp.o.d"
  "test_ebpf_vm"
  "test_ebpf_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ebpf_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
