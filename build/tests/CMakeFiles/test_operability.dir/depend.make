# Empty dependencies file for test_operability.
# This may be replaced when dependencies are built.
