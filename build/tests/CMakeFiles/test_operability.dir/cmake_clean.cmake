file(REMOVE_RECURSE
  "CMakeFiles/test_operability.dir/test_operability.cpp.o"
  "CMakeFiles/test_operability.dir/test_operability.cpp.o.d"
  "test_operability"
  "test_operability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_operability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
