file(REMOVE_RECURSE
  "CMakeFiles/test_nsx.dir/test_nsx.cpp.o"
  "CMakeFiles/test_nsx.dir/test_nsx.cpp.o.d"
  "test_nsx"
  "test_nsx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nsx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
