# Empty dependencies file for test_nsx.
# This may be replaced when dependencies are built.
