file(REMOVE_RECURSE
  "CMakeFiles/test_ovs_ofproto.dir/test_ovs_ofproto.cpp.o"
  "CMakeFiles/test_ovs_ofproto.dir/test_ovs_ofproto.cpp.o.d"
  "test_ovs_ofproto"
  "test_ovs_ofproto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ovs_ofproto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
