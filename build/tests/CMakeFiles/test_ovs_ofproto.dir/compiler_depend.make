# Empty compiler generated dependencies file for test_ovs_ofproto.
# This may be replaced when dependencies are built.
