file(REMOVE_RECURSE
  "CMakeFiles/xdp_loadbalancer.dir/xdp_loadbalancer.cpp.o"
  "CMakeFiles/xdp_loadbalancer.dir/xdp_loadbalancer.cpp.o.d"
  "xdp_loadbalancer"
  "xdp_loadbalancer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdp_loadbalancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
