# Empty dependencies file for xdp_loadbalancer.
# This may be replaced when dependencies are built.
