file(REMOVE_RECURSE
  "CMakeFiles/nsx_deployment.dir/nsx_deployment.cpp.o"
  "CMakeFiles/nsx_deployment.dir/nsx_deployment.cpp.o.d"
  "nsx_deployment"
  "nsx_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsx_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
