# Empty compiler generated dependencies file for nsx_deployment.
# This may be replaced when dependencies are built.
