
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gen/CMakeFiles/ovsx_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/nsx/CMakeFiles/ovsx_nsx.dir/DependInfo.cmake"
  "/root/repo/build/src/ovs/CMakeFiles/ovsx_ovs.dir/DependInfo.cmake"
  "/root/repo/build/src/dpdk/CMakeFiles/ovsx_dpdk.dir/DependInfo.cmake"
  "/root/repo/build/src/kern/CMakeFiles/ovsx_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/ebpf/CMakeFiles/ovsx_ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/afxdp/CMakeFiles/ovsx_afxdp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ovsx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ovsx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
