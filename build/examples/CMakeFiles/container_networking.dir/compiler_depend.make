# Empty compiler generated dependencies file for container_networking.
# This may be replaced when dependencies are built.
