file(REMOVE_RECURSE
  "CMakeFiles/container_networking.dir/container_networking.cpp.o"
  "CMakeFiles/container_networking.dir/container_networking.cpp.o.d"
  "container_networking"
  "container_networking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/container_networking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
