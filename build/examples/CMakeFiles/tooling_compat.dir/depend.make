# Empty dependencies file for tooling_compat.
# This may be replaced when dependencies are built.
