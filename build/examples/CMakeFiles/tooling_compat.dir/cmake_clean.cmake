file(REMOVE_RECURSE
  "CMakeFiles/tooling_compat.dir/tooling_compat.cpp.o"
  "CMakeFiles/tooling_compat.dir/tooling_compat.cpp.o.d"
  "tooling_compat"
  "tooling_compat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tooling_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
