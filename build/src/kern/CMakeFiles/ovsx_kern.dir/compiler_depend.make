# Empty compiler generated dependencies file for ovsx_kern.
# This may be replaced when dependencies are built.
