file(REMOVE_RECURSE
  "libovsx_kern.a"
)
