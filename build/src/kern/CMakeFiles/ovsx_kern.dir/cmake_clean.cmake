file(REMOVE_RECURSE
  "CMakeFiles/ovsx_kern.dir/conntrack.cpp.o"
  "CMakeFiles/ovsx_kern.dir/conntrack.cpp.o.d"
  "CMakeFiles/ovsx_kern.dir/device.cpp.o"
  "CMakeFiles/ovsx_kern.dir/device.cpp.o.d"
  "CMakeFiles/ovsx_kern.dir/kernel.cpp.o"
  "CMakeFiles/ovsx_kern.dir/kernel.cpp.o.d"
  "CMakeFiles/ovsx_kern.dir/nic.cpp.o"
  "CMakeFiles/ovsx_kern.dir/nic.cpp.o.d"
  "CMakeFiles/ovsx_kern.dir/odp.cpp.o"
  "CMakeFiles/ovsx_kern.dir/odp.cpp.o.d"
  "CMakeFiles/ovsx_kern.dir/ovs_kmod.cpp.o"
  "CMakeFiles/ovsx_kern.dir/ovs_kmod.cpp.o.d"
  "CMakeFiles/ovsx_kern.dir/rtnetlink.cpp.o"
  "CMakeFiles/ovsx_kern.dir/rtnetlink.cpp.o.d"
  "CMakeFiles/ovsx_kern.dir/stack.cpp.o"
  "CMakeFiles/ovsx_kern.dir/stack.cpp.o.d"
  "CMakeFiles/ovsx_kern.dir/tap.cpp.o"
  "CMakeFiles/ovsx_kern.dir/tap.cpp.o.d"
  "CMakeFiles/ovsx_kern.dir/veth.cpp.o"
  "CMakeFiles/ovsx_kern.dir/veth.cpp.o.d"
  "CMakeFiles/ovsx_kern.dir/virtio.cpp.o"
  "CMakeFiles/ovsx_kern.dir/virtio.cpp.o.d"
  "libovsx_kern.a"
  "libovsx_kern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ovsx_kern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
