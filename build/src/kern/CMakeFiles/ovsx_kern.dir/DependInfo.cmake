
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kern/conntrack.cpp" "src/kern/CMakeFiles/ovsx_kern.dir/conntrack.cpp.o" "gcc" "src/kern/CMakeFiles/ovsx_kern.dir/conntrack.cpp.o.d"
  "/root/repo/src/kern/device.cpp" "src/kern/CMakeFiles/ovsx_kern.dir/device.cpp.o" "gcc" "src/kern/CMakeFiles/ovsx_kern.dir/device.cpp.o.d"
  "/root/repo/src/kern/kernel.cpp" "src/kern/CMakeFiles/ovsx_kern.dir/kernel.cpp.o" "gcc" "src/kern/CMakeFiles/ovsx_kern.dir/kernel.cpp.o.d"
  "/root/repo/src/kern/nic.cpp" "src/kern/CMakeFiles/ovsx_kern.dir/nic.cpp.o" "gcc" "src/kern/CMakeFiles/ovsx_kern.dir/nic.cpp.o.d"
  "/root/repo/src/kern/odp.cpp" "src/kern/CMakeFiles/ovsx_kern.dir/odp.cpp.o" "gcc" "src/kern/CMakeFiles/ovsx_kern.dir/odp.cpp.o.d"
  "/root/repo/src/kern/ovs_kmod.cpp" "src/kern/CMakeFiles/ovsx_kern.dir/ovs_kmod.cpp.o" "gcc" "src/kern/CMakeFiles/ovsx_kern.dir/ovs_kmod.cpp.o.d"
  "/root/repo/src/kern/rtnetlink.cpp" "src/kern/CMakeFiles/ovsx_kern.dir/rtnetlink.cpp.o" "gcc" "src/kern/CMakeFiles/ovsx_kern.dir/rtnetlink.cpp.o.d"
  "/root/repo/src/kern/stack.cpp" "src/kern/CMakeFiles/ovsx_kern.dir/stack.cpp.o" "gcc" "src/kern/CMakeFiles/ovsx_kern.dir/stack.cpp.o.d"
  "/root/repo/src/kern/tap.cpp" "src/kern/CMakeFiles/ovsx_kern.dir/tap.cpp.o" "gcc" "src/kern/CMakeFiles/ovsx_kern.dir/tap.cpp.o.d"
  "/root/repo/src/kern/veth.cpp" "src/kern/CMakeFiles/ovsx_kern.dir/veth.cpp.o" "gcc" "src/kern/CMakeFiles/ovsx_kern.dir/veth.cpp.o.d"
  "/root/repo/src/kern/virtio.cpp" "src/kern/CMakeFiles/ovsx_kern.dir/virtio.cpp.o" "gcc" "src/kern/CMakeFiles/ovsx_kern.dir/virtio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ovsx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ovsx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ebpf/CMakeFiles/ovsx_ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/afxdp/CMakeFiles/ovsx_afxdp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
