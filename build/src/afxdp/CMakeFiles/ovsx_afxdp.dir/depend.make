# Empty dependencies file for ovsx_afxdp.
# This may be replaced when dependencies are built.
