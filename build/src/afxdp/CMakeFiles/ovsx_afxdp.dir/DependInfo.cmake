
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/afxdp/umem.cpp" "src/afxdp/CMakeFiles/ovsx_afxdp.dir/umem.cpp.o" "gcc" "src/afxdp/CMakeFiles/ovsx_afxdp.dir/umem.cpp.o.d"
  "/root/repo/src/afxdp/xsk.cpp" "src/afxdp/CMakeFiles/ovsx_afxdp.dir/xsk.cpp.o" "gcc" "src/afxdp/CMakeFiles/ovsx_afxdp.dir/xsk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ovsx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ovsx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
