file(REMOVE_RECURSE
  "CMakeFiles/ovsx_afxdp.dir/umem.cpp.o"
  "CMakeFiles/ovsx_afxdp.dir/umem.cpp.o.d"
  "CMakeFiles/ovsx_afxdp.dir/xsk.cpp.o"
  "CMakeFiles/ovsx_afxdp.dir/xsk.cpp.o.d"
  "libovsx_afxdp.a"
  "libovsx_afxdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ovsx_afxdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
