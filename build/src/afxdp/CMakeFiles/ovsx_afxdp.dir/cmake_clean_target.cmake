file(REMOVE_RECURSE
  "libovsx_afxdp.a"
)
