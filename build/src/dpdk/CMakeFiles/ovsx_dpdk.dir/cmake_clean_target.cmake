file(REMOVE_RECURSE
  "libovsx_dpdk.a"
)
