file(REMOVE_RECURSE
  "CMakeFiles/ovsx_dpdk.dir/ethdev.cpp.o"
  "CMakeFiles/ovsx_dpdk.dir/ethdev.cpp.o.d"
  "libovsx_dpdk.a"
  "libovsx_dpdk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ovsx_dpdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
