# Empty dependencies file for ovsx_dpdk.
# This may be replaced when dependencies are built.
