# Empty compiler generated dependencies file for ovsx_nsx.
# This may be replaced when dependencies are built.
