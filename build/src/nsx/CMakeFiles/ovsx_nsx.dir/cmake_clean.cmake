file(REMOVE_RECURSE
  "CMakeFiles/ovsx_nsx.dir/nsx.cpp.o"
  "CMakeFiles/ovsx_nsx.dir/nsx.cpp.o.d"
  "libovsx_nsx.a"
  "libovsx_nsx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ovsx_nsx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
