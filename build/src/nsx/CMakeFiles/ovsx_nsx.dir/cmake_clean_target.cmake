file(REMOVE_RECURSE
  "libovsx_nsx.a"
)
