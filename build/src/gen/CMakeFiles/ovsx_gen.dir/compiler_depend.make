# Empty compiler generated dependencies file for ovsx_gen.
# This may be replaced when dependencies are built.
