file(REMOVE_RECURSE
  "CMakeFiles/ovsx_gen.dir/harness.cpp.o"
  "CMakeFiles/ovsx_gen.dir/harness.cpp.o.d"
  "CMakeFiles/ovsx_gen.dir/latency.cpp.o"
  "CMakeFiles/ovsx_gen.dir/latency.cpp.o.d"
  "CMakeFiles/ovsx_gen.dir/testbed.cpp.o"
  "CMakeFiles/ovsx_gen.dir/testbed.cpp.o.d"
  "libovsx_gen.a"
  "libovsx_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ovsx_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
