file(REMOVE_RECURSE
  "libovsx_gen.a"
)
