file(REMOVE_RECURSE
  "CMakeFiles/ovsx_ebpf.dir/insn.cpp.o"
  "CMakeFiles/ovsx_ebpf.dir/insn.cpp.o.d"
  "CMakeFiles/ovsx_ebpf.dir/map.cpp.o"
  "CMakeFiles/ovsx_ebpf.dir/map.cpp.o.d"
  "CMakeFiles/ovsx_ebpf.dir/program.cpp.o"
  "CMakeFiles/ovsx_ebpf.dir/program.cpp.o.d"
  "CMakeFiles/ovsx_ebpf.dir/programs.cpp.o"
  "CMakeFiles/ovsx_ebpf.dir/programs.cpp.o.d"
  "CMakeFiles/ovsx_ebpf.dir/verifier.cpp.o"
  "CMakeFiles/ovsx_ebpf.dir/verifier.cpp.o.d"
  "CMakeFiles/ovsx_ebpf.dir/vm.cpp.o"
  "CMakeFiles/ovsx_ebpf.dir/vm.cpp.o.d"
  "libovsx_ebpf.a"
  "libovsx_ebpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ovsx_ebpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
