file(REMOVE_RECURSE
  "libovsx_ebpf.a"
)
