
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ebpf/insn.cpp" "src/ebpf/CMakeFiles/ovsx_ebpf.dir/insn.cpp.o" "gcc" "src/ebpf/CMakeFiles/ovsx_ebpf.dir/insn.cpp.o.d"
  "/root/repo/src/ebpf/map.cpp" "src/ebpf/CMakeFiles/ovsx_ebpf.dir/map.cpp.o" "gcc" "src/ebpf/CMakeFiles/ovsx_ebpf.dir/map.cpp.o.d"
  "/root/repo/src/ebpf/program.cpp" "src/ebpf/CMakeFiles/ovsx_ebpf.dir/program.cpp.o" "gcc" "src/ebpf/CMakeFiles/ovsx_ebpf.dir/program.cpp.o.d"
  "/root/repo/src/ebpf/programs.cpp" "src/ebpf/CMakeFiles/ovsx_ebpf.dir/programs.cpp.o" "gcc" "src/ebpf/CMakeFiles/ovsx_ebpf.dir/programs.cpp.o.d"
  "/root/repo/src/ebpf/verifier.cpp" "src/ebpf/CMakeFiles/ovsx_ebpf.dir/verifier.cpp.o" "gcc" "src/ebpf/CMakeFiles/ovsx_ebpf.dir/verifier.cpp.o.d"
  "/root/repo/src/ebpf/vm.cpp" "src/ebpf/CMakeFiles/ovsx_ebpf.dir/vm.cpp.o" "gcc" "src/ebpf/CMakeFiles/ovsx_ebpf.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ovsx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ovsx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
