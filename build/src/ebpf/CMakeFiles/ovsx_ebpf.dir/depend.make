# Empty dependencies file for ovsx_ebpf.
# This may be replaced when dependencies are built.
