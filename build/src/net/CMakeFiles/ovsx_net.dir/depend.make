# Empty dependencies file for ovsx_net.
# This may be replaced when dependencies are built.
