file(REMOVE_RECURSE
  "libovsx_net.a"
)
