file(REMOVE_RECURSE
  "CMakeFiles/ovsx_net.dir/addr.cpp.o"
  "CMakeFiles/ovsx_net.dir/addr.cpp.o.d"
  "CMakeFiles/ovsx_net.dir/builder.cpp.o"
  "CMakeFiles/ovsx_net.dir/builder.cpp.o.d"
  "CMakeFiles/ovsx_net.dir/checksum.cpp.o"
  "CMakeFiles/ovsx_net.dir/checksum.cpp.o.d"
  "CMakeFiles/ovsx_net.dir/flow.cpp.o"
  "CMakeFiles/ovsx_net.dir/flow.cpp.o.d"
  "CMakeFiles/ovsx_net.dir/rewrite.cpp.o"
  "CMakeFiles/ovsx_net.dir/rewrite.cpp.o.d"
  "CMakeFiles/ovsx_net.dir/tunnel.cpp.o"
  "CMakeFiles/ovsx_net.dir/tunnel.cpp.o.d"
  "libovsx_net.a"
  "libovsx_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ovsx_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
