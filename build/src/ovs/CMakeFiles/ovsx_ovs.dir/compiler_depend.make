# Empty compiler generated dependencies file for ovsx_ovs.
# This may be replaced when dependencies are built.
