file(REMOVE_RECURSE
  "libovsx_ovs.a"
)
