file(REMOVE_RECURSE
  "CMakeFiles/ovsx_ovs.dir/ct.cpp.o"
  "CMakeFiles/ovsx_ovs.dir/ct.cpp.o.d"
  "CMakeFiles/ovsx_ovs.dir/dpif_ebpf.cpp.o"
  "CMakeFiles/ovsx_ovs.dir/dpif_ebpf.cpp.o.d"
  "CMakeFiles/ovsx_ovs.dir/dpif_netdev.cpp.o"
  "CMakeFiles/ovsx_ovs.dir/dpif_netdev.cpp.o.d"
  "CMakeFiles/ovsx_ovs.dir/emc.cpp.o"
  "CMakeFiles/ovsx_ovs.dir/emc.cpp.o.d"
  "CMakeFiles/ovsx_ovs.dir/megaflow.cpp.o"
  "CMakeFiles/ovsx_ovs.dir/megaflow.cpp.o.d"
  "CMakeFiles/ovsx_ovs.dir/meter.cpp.o"
  "CMakeFiles/ovsx_ovs.dir/meter.cpp.o.d"
  "CMakeFiles/ovsx_ovs.dir/netdev_afxdp.cpp.o"
  "CMakeFiles/ovsx_ovs.dir/netdev_afxdp.cpp.o.d"
  "CMakeFiles/ovsx_ovs.dir/netdev_linux.cpp.o"
  "CMakeFiles/ovsx_ovs.dir/netdev_linux.cpp.o.d"
  "CMakeFiles/ovsx_ovs.dir/netlink_cache.cpp.o"
  "CMakeFiles/ovsx_ovs.dir/netlink_cache.cpp.o.d"
  "CMakeFiles/ovsx_ovs.dir/ofproto.cpp.o"
  "CMakeFiles/ovsx_ovs.dir/ofproto.cpp.o.d"
  "CMakeFiles/ovsx_ovs.dir/vswitch.cpp.o"
  "CMakeFiles/ovsx_ovs.dir/vswitch.cpp.o.d"
  "libovsx_ovs.a"
  "libovsx_ovs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ovsx_ovs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
