
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ovs/ct.cpp" "src/ovs/CMakeFiles/ovsx_ovs.dir/ct.cpp.o" "gcc" "src/ovs/CMakeFiles/ovsx_ovs.dir/ct.cpp.o.d"
  "/root/repo/src/ovs/dpif_ebpf.cpp" "src/ovs/CMakeFiles/ovsx_ovs.dir/dpif_ebpf.cpp.o" "gcc" "src/ovs/CMakeFiles/ovsx_ovs.dir/dpif_ebpf.cpp.o.d"
  "/root/repo/src/ovs/dpif_netdev.cpp" "src/ovs/CMakeFiles/ovsx_ovs.dir/dpif_netdev.cpp.o" "gcc" "src/ovs/CMakeFiles/ovsx_ovs.dir/dpif_netdev.cpp.o.d"
  "/root/repo/src/ovs/emc.cpp" "src/ovs/CMakeFiles/ovsx_ovs.dir/emc.cpp.o" "gcc" "src/ovs/CMakeFiles/ovsx_ovs.dir/emc.cpp.o.d"
  "/root/repo/src/ovs/megaflow.cpp" "src/ovs/CMakeFiles/ovsx_ovs.dir/megaflow.cpp.o" "gcc" "src/ovs/CMakeFiles/ovsx_ovs.dir/megaflow.cpp.o.d"
  "/root/repo/src/ovs/meter.cpp" "src/ovs/CMakeFiles/ovsx_ovs.dir/meter.cpp.o" "gcc" "src/ovs/CMakeFiles/ovsx_ovs.dir/meter.cpp.o.d"
  "/root/repo/src/ovs/netdev_afxdp.cpp" "src/ovs/CMakeFiles/ovsx_ovs.dir/netdev_afxdp.cpp.o" "gcc" "src/ovs/CMakeFiles/ovsx_ovs.dir/netdev_afxdp.cpp.o.d"
  "/root/repo/src/ovs/netdev_linux.cpp" "src/ovs/CMakeFiles/ovsx_ovs.dir/netdev_linux.cpp.o" "gcc" "src/ovs/CMakeFiles/ovsx_ovs.dir/netdev_linux.cpp.o.d"
  "/root/repo/src/ovs/netlink_cache.cpp" "src/ovs/CMakeFiles/ovsx_ovs.dir/netlink_cache.cpp.o" "gcc" "src/ovs/CMakeFiles/ovsx_ovs.dir/netlink_cache.cpp.o.d"
  "/root/repo/src/ovs/ofproto.cpp" "src/ovs/CMakeFiles/ovsx_ovs.dir/ofproto.cpp.o" "gcc" "src/ovs/CMakeFiles/ovsx_ovs.dir/ofproto.cpp.o.d"
  "/root/repo/src/ovs/vswitch.cpp" "src/ovs/CMakeFiles/ovsx_ovs.dir/vswitch.cpp.o" "gcc" "src/ovs/CMakeFiles/ovsx_ovs.dir/vswitch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kern/CMakeFiles/ovsx_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/dpdk/CMakeFiles/ovsx_dpdk.dir/DependInfo.cmake"
  "/root/repo/build/src/afxdp/CMakeFiles/ovsx_afxdp.dir/DependInfo.cmake"
  "/root/repo/build/src/ebpf/CMakeFiles/ovsx_ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ovsx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ovsx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
