file(REMOVE_RECURSE
  "libovsx_sim.a"
)
