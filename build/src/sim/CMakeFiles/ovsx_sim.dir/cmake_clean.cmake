file(REMOVE_RECURSE
  "CMakeFiles/ovsx_sim.dir/context.cpp.o"
  "CMakeFiles/ovsx_sim.dir/context.cpp.o.d"
  "CMakeFiles/ovsx_sim.dir/costs.cpp.o"
  "CMakeFiles/ovsx_sim.dir/costs.cpp.o.d"
  "CMakeFiles/ovsx_sim.dir/histogram.cpp.o"
  "CMakeFiles/ovsx_sim.dir/histogram.cpp.o.d"
  "libovsx_sim.a"
  "libovsx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ovsx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
