# Empty compiler generated dependencies file for ovsx_sim.
# This may be replaced when dependencies are built.
